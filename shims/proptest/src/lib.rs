//! Offline shim of `proptest`: deterministic property testing with
//! minimal shrinking. Supports the subset used in this workspace: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! integer/float range strategies, `proptest::collection::vec`,
//! `Just`, `any`, and the `prop_assert*` macros.
//!
//! Each test function replays a fixed set of seeds, so failures are
//! reproducible run-to-run. When a case fails (assertion or panic),
//! the inputs are greedily shrunk — integers toward the lower bound of
//! their range, vectors toward fewer and smaller elements — and the
//! near-minimal failing inputs are reported.

/// Strategy trait: how to generate one value from an RNG, and how to
/// simplify a failing value.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, most
        /// aggressive first. The default is no shrinking.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    /// Greedily minimizes a failing input: repeatedly adopts the first
    /// shrink candidate that still fails, until no candidate fails or
    /// `max_attempts` candidate evaluations have been spent. Returns the
    /// minimal value found and the number of successful shrink steps.
    pub fn minimize<S: Strategy>(
        strategy: &S,
        initial: S::Value,
        mut fails: impl FnMut(&S::Value) -> bool,
        max_attempts: usize,
    ) -> (S::Value, usize) {
        let mut current = initial;
        let mut steps = 0usize;
        let mut attempts = 0usize;
        'outer: while attempts < max_attempts {
            for candidate in strategy.shrink(&current) {
                if attempts >= max_attempts {
                    break 'outer;
                }
                attempts += 1;
                if fails(&candidate) {
                    current = candidate;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (current, steps)
    }

    /// Shrink candidates for an integer `v` bounded below by `lo`
    /// (both widened to `i128`): the bound itself, the midpoint, and
    /// one step down — ascending, so the most aggressive comes first.
    fn int_candidates(lo: i128, v: i128) -> Vec<i128> {
        if v <= lo {
            return Vec::new();
        }
        let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
        out.dedup();
        out
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_candidates(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_candidates(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Float ranges generate but do not shrink (no natural minimal step).
    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }
    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Uniform choice between several strategies with a common value
    /// type (the shim behind `prop_oneof!`; no per-arm weights, no
    /// shrinking — the chosen arm is not recorded).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> OneOf<V> {
        /// Creates the strategy from pre-boxed arms.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.arms.len());
            (self.arms[idx])(rng)
        }
    }

    impl Strategy for () {
        type Value = ();
        fn generate(&self, _rng: &mut TestRng) {}
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut v = value.clone();
                            v.$idx = candidate;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// Full-domain strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Shrink candidates for a full-domain integer: toward zero.
    fn any_candidates(v: i128) -> Vec<i128> {
        if v == 0 {
            return Vec::new();
        }
        let mut out = vec![0, v / 2, v - v.signum()];
        out.dedup();
        out.retain(|&c| c != v);
        out
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_raw() as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    any_candidates(*value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_raw() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Shrinks the length first (truncate to the minimum, halve,
        /// drop single elements), then each element via the element
        /// strategy — most aggressive first.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            let n = value.len();
            if n > lo {
                out.push(value[..lo].to_vec());
                let half = lo.max(n / 2);
                if half > lo && half < n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 >= lo {
                    for i in 0..n {
                        let mut v = value.clone();
                        v.remove(i);
                        out.push(v);
                    }
                }
            }
            for i in 0..n {
                for candidate in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = candidate;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Test execution machinery.
pub mod test_runner {
    use rand::{RngCore, SeedableRng, SmallRng};
    use std::fmt;

    /// Deterministic RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds a generation stream.
        pub fn new(seed: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(seed))
        }

        /// Raw 64 bits (used by `any`).
        pub fn next_raw(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Failure signal raised by `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Best-effort string form of a `catch_unwind` payload.
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panic: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panic: {s}")
        } else {
            "panic (non-string payload)".to_string()
        }
    }

    /// Per-test configuration (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Like the real crate: the PROPTEST_CASES environment
            // variable overrides the built-in default, so CI can run
            // dedicated high-case fuzz jobs without code changes.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Drives the per-case loop of one property.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Number of cases to execute.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for case number `case`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(P_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }

    /// Candidate evaluations spent shrinking one failing case.
    pub const MAX_SHRINK_ATTEMPTS: usize = 512;

    /// Serializes panic-hook swapping across concurrently-failing
    /// properties (the hook is process-global state).
    static SHRINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    const P_SEED: u64 = 0x5EED_0F1E_57CA_5E00;

    /// A failing property case, already shrunk to a near-minimal input.
    #[derive(Debug)]
    pub struct CaseFailure<V> {
        /// Zero-based index of the failing case.
        pub case: u32,
        /// Total cases the runner would execute.
        pub cases: u32,
        /// The minimal failing input found.
        pub minimal: V,
        /// Successful shrink steps taken to reach it.
        pub shrink_steps: usize,
        /// The failure of the minimal input.
        pub error: TestCaseError,
    }

    /// Executes every case of one property; on the first failure, shrinks
    /// the input via [`crate::strategy::minimize`] and returns the
    /// near-minimal reproduction. The `proptest!` macro expands to a call
    /// of this function.
    pub fn run_cases<S: crate::strategy::Strategy>(
        runner: &TestRunner,
        strategy: &S,
        run: impl Fn(&S::Value) -> Result<(), TestCaseError>,
    ) -> Option<CaseFailure<S::Value>> {
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for(case);
            let value = strategy.generate(&mut rng);
            if let Err(first) = run(&value) {
                // Silence the panic hook while candidates replay — every
                // failing candidate panics again, and hundreds of traces
                // would bury the minimal-input report. The initial
                // failure above already printed one full trace. The hook
                // is process-global, so hold SHRINK_LOCK across the whole
                // swap/restore window: two concurrently-shrinking
                // properties must not interleave their take/set pairs (an
                // unrelated test failing inside the window still loses
                // its trace — the window is short and only open while a
                // property is already failing).
                let _guard = SHRINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                let hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let (minimal, shrink_steps) = crate::strategy::minimize(
                    strategy,
                    value,
                    |v| run(v).is_err(),
                    MAX_SHRINK_ATTEMPTS,
                );
                // Re-run once for the minimal input's own message (a
                // deterministic body always fails again; fall back to the
                // original error otherwise).
                let error = run(&minimal).err();
                std::panic::set_hook(hook);
                return Some(CaseFailure {
                    case,
                    cases: runner.cases(),
                    minimal,
                    shrink_steps,
                    error: error.unwrap_or(first),
                });
            }
        }
        None
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Strategy over the full domain of `T`.
    pub fn any<T>() -> crate::strategy::Any<T>
    where
        crate::strategy::Any<T>: crate::strategy::Strategy,
    {
        crate::strategy::Any::new()
    }
}

/// Runs properties: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays `cases` deterministic inputs and
/// shrinks failing cases to near-minimal inputs before reporting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident (
        $( $arg:ident in $strat:expr ),* $(,)?
    ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __runner = $crate::test_runner::TestRunner::new(__config);
            let __strategy = ( $( $strat, )* );
            // One case is a pure function of the input tuple: Ok, a
            // prop_assert failure, or a caught panic — re-runnable, so
            // `run_cases` can replay shrink candidates.
            let __failure = $crate::test_runner::run_cases(
                &__runner,
                &__strategy,
                |__value| {
                    let ( $( $arg, )* ) = ::std::clone::Clone::clone(__value);
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    )) {
                        ::std::result::Result::Ok(outcome) => outcome,
                        ::std::result::Result::Err(payload) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::fail(
                                $crate::test_runner::panic_message(payload.as_ref()),
                            ),
                        ),
                    }
                },
            );
            if let ::std::option::Option::Some(__f) = __failure {
                let ( $( $arg, )* ) = __f.minimal;
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                panic!(
                    "proptest case {}/{} failed: {}\n  minimal inputs ({} shrink steps): {}",
                    __f.case + 1,
                    __f.cases,
                    __f.error,
                    __f.shrink_steps,
                    __inputs
                );
            }
        }
    )*};
}

/// Uniform choice between strategies sharing a value type.
///
/// Unlike real proptest, per-arm `weight =>` prefixes are not
/// supported; all arms are equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                let __s = $strat;
                ::std::boxed::Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, __rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            },)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::strategy::{minimize, Any, Strategy};
    use crate::test_runner::TestRng;

    #[test]
    fn int_range_shrinks_to_smallest_failing() {
        let (minimal, steps) = minimize(&(0u64..1000), 700, |v| *v >= 7, 256);
        assert_eq!(minimal, 7);
        assert!(steps > 0);
    }

    #[test]
    fn shrink_respects_range_bounds() {
        let strat = 3usize..25;
        let candidates = strat.shrink(&20);
        assert!(!candidates.is_empty());
        for c in candidates {
            assert!((3..20).contains(&c), "candidate {c} escapes [3, 20)");
        }
        assert!(
            strat.shrink(&3).is_empty(),
            "the bound itself cannot shrink"
        );
    }

    #[test]
    fn inclusive_range_shrinks() {
        let (minimal, _) = minimize(&(5u32..=50), 50, |v| *v > 9, 256);
        assert_eq!(minimal, 10);
    }

    #[test]
    fn signed_any_shrinks_toward_zero() {
        let (minimal, _) = minimize(&Any::<i64>::new(), -900, |v| *v <= -5, 256);
        assert_eq!(minimal, -5);
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        let strat = vec(0u32..100, 0..10);
        let initial = std::vec![3, 42, 17, 99];
        let (minimal, _) = minimize(&strat, initial, |v| v.iter().any(|&x| x >= 40), 1024);
        assert_eq!(minimal, std::vec![40]);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let strat = vec(0u32..10, 2..6);
        let (minimal, _) = minimize(&strat, std::vec![9, 9, 9, 9], |_| true, 1024);
        assert_eq!(
            minimal,
            std::vec![0, 0],
            "stops at min length, min elements"
        );
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let strat = (0u32..50, 0u64..50);
        let (minimal, _) = minimize(&strat, (30, 40), |(a, b)| *a >= 10 && *b >= 4, 512);
        assert_eq!(minimal, (10, 4));
    }

    #[test]
    fn minimize_respects_attempt_budget() {
        let (unchanged, steps) = minimize(&(0u64..1000), 999, |_| true, 0);
        assert_eq!((unchanged, steps), (999, 0));
        let (one_step, steps) = minimize(&(0u64..1000), 999, |_| true, 1);
        assert_eq!((one_step, steps), (0, 1), "first candidate is the bound");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = vec((0u32..9, 1u64..7), 0..12);
        let a = strat.generate(&mut TestRng::new(42));
        let b = strat.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    // End-to-end through the macro: a failing case is shrunk to the
    // smallest failing input before the report panics, and panicking
    // bodies are caught and shrunk the same way.
    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(16))]

        #[test]
        #[should_panic(expected = "x = 3")]
        fn macro_shrinks_assertion_failures(x in 0u64..1000) {
            crate::prop_assert!(x < 3, "x too big: {x}");
        }

        #[test]
        #[should_panic(expected = "panic: boom")]
        fn macro_catches_and_shrinks_panics(x in 0u64..1000) {
            if x >= 1 {
                panic!("boom");
            }
        }
    }
}
