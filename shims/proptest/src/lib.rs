//! Offline shim of `proptest`: deterministic property testing without
//! shrinking. Supports the subset used in this workspace: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! integer/float range strategies, `proptest::collection::vec`,
//! `Just`, `any`, and the `prop_assert*` macros.
//!
//! Each test function replays a fixed set of seeds, so failures are
//! reproducible run-to-run; there is no shrinking, the failing inputs
//! are printed instead.

/// Strategy trait: how to generate one value from an RNG.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Uniform choice between several strategies with a common value
    /// type (the shim behind `prop_oneof!`; no per-arm weights).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> OneOf<V> {
        /// Creates the strategy from pre-boxed arms.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.arms.len());
            (self.arms[idx])(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-domain strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_raw() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_raw() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution machinery.
pub mod test_runner {
    use rand::{RngCore, SeedableRng, SmallRng};
    use std::fmt;

    /// Deterministic RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds a generation stream.
        pub fn new(seed: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(seed))
        }

        /// Raw 64 bits (used by `any`).
        pub fn next_raw(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Failure signal raised by `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-test configuration (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives the per-case loop of one property.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Number of cases to execute.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for case number `case`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(P_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }

    const P_SEED: u64 = 0x5EED_0F1E_57CA_5E00;
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Strategy over the full domain of `T`.
    pub fn any<T>() -> crate::strategy::Any<T>
    where
        crate::strategy::Any<T>: crate::strategy::Strategy,
    {
        crate::strategy::Any::new()
    }
}

/// Runs properties: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident (
        $( $arg:ident in $strat:expr ),* $(,)?
    ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __runner = $crate::test_runner::TestRunner::new(__config);
            for __case in 0..__runner.cases() {
                let mut __rng = __runner.rng_for(__case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __inputs = format!(concat!($(stringify!($arg), " = {:?}, "),*), $(&$arg),*);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __runner.cases(),
                        e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies sharing a value type.
///
/// Unlike real proptest, per-arm `weight =>` prefixes are not
/// supported; all arms are equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                let __s = $strat;
                ::std::boxed::Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, __rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            },)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
