//! The concrete data model shared by the serde shim and `serde_json`,
//! plus the helpers the derive macro expands against.

use crate::de::Deserializer;
use crate::ser::{Serialize, Serializer};
use std::fmt;

/// Self-describing serialized form. JSON maps onto this losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Ordered sequences.
    Seq(Vec<Value>),
    /// Ordered string-keyed maps (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when converting to or from a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// The canonical [`Serializer`]: serializes into a [`Value`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// The canonical [`Deserializer`]: deserializes out of a [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl ValueDeserializer {
    /// Wraps a value for deserialization.
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes `value` into the shared data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes a `T` out of the shared data model.
pub fn from_value<T: crate::de::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Missing-field error helper used by derived code.
pub fn missing_field(ty: &str, field: &str) -> ValueError {
    ValueError(format!("missing field `{field}` while deserializing {ty}"))
}
