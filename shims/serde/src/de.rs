//! Deserialization half of the shim.

use crate::export::{Value, ValueError};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error constraint for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of the shim data model.
///
/// Self-describing: the whole input is surfaced as a [`Value`] tree via
/// [`Deserializer::into_value`], and types pick themselves out of it.
pub trait Deserializer<'de>: Sized {
    /// Error type of the deserializer.
    type Error: Error;

    /// Consumes the deserializer, yielding the value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
///
/// Everything in this shim is owned, so this is a blanket alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn unexpected<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

/// Deserializes one sub-value for a given deserializer lifetime.
///
/// Unlike [`from_value`], this only requires `Deserialize<'de>` for the
/// caller's `'de`, which keeps `with`-style helper modules that bind a
/// single lifetime (like the seed's `pairs`) usable.
fn de_one<'de, T: Deserialize<'de>>(v: Value) -> Result<T, ValueError> {
    T::deserialize(crate::export::ValueDeserializer::new(v))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::UInt(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("integer {n} out of range"))),
                    other => Err(unexpected("unsigned integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::UInt(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("integer {n} out of range"))),
                    other => Err(unexpected("integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    other => Err(unexpected("number", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(unexpected("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-character string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(()),
            other => Err(unexpected("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            v => de_one(v).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<[T]> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Into::into)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| de_one(v).map_err(D::Error::custom))
                .collect(),
            other => Err(unexpected("sequence", &other)),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(
                deserializer: __D,
            ) -> Result<Self, __D::Error> {
                match deserializer.into_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok((
                            $(
                                de_one::<$name>(it.next().unwrap())
                                    .map_err(__D::Error::custom)?,
                            )+
                        ))
                    }
                    other => Err(unexpected(
                        concat!("sequence of length ", $len),
                        &other,
                    )),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1; T0)
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
}

/// Recovers a map key that was rendered as a string.
///
/// Tries the key as a string first, then as an integer, mirroring how
/// [`crate::ser::key_to_string`] flattened it.
fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, ValueError> {
    if let Ok(k) = de_one::<K>(Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = de_one::<K>(Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = de_one::<K>(Value::Int(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = de_one::<K>(Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(ValueError(format!(
        "cannot reconstruct map key from `{key}`"
    )))
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string(&k).map_err(D::Error::custom)?,
                        de_one(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string(&k).map_err(D::Error::custom)?,
                        de_one(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        let (secs, nanos) = match (&v, v.get("secs"), v.get("nanos")) {
            (_, Some(Value::UInt(s)), Some(Value::UInt(n))) => (*s, *n),
            (Value::UInt(s), _, _) => (*s, 0),
            _ => return Err(unexpected("duration map {secs, nanos}", &v)),
        };
        let nanos =
            u32::try_from(nanos).map_err(|_| D::Error::custom("duration nanos out of range"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}
