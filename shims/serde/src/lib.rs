//! Offline shim of the `serde` crate.
//!
//! The build container has no access to a crates registry, so the
//! workspace vendors a minimal, API-compatible subset of serde: enough
//! for `#[derive(Serialize, Deserialize)]` (including the
//! `#[serde(transparent)]`, `#[serde(default)]` and
//! `#[serde(with = "module")]` attributes used in this repository),
//! custom `with`-style modules written against generic
//! `Serializer`/`Deserializer` bounds, and JSON round-trips through the
//! sibling `serde_json` shim.
//!
//! Unlike real serde, the data model is a concrete self-describing
//! [`export::Value`] tree rather than a visitor protocol. Serializers
//! and deserializers exchange `Value`s; this is dramatically simpler
//! and fully sufficient for JSON.

pub mod de;
pub mod export;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
