//! Serialization half of the shim.

use crate::export::{to_value, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error constraint for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for the shim data model.
///
/// Unlike real serde there is a single entry point,
/// [`Serializer::serialize_value`]; convenience methods such as
/// [`Serializer::collect_seq`] build a [`Value`] first.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the serializer.
    type Error: Error;

    /// Consumes an already-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes the items of `iter` as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let mut items = Vec::new();
        for item in iter {
            items.push(to_value(&item).map_err(Error::custom)?);
        }
        self.serialize_value(Value::Seq(items))
    }

    /// Serializes `(key, value)` pairs as a string-keyed map.
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut entries = Vec::new();
        for (k, v) in iter {
            let key =
                key_to_string(&to_value(&k).map_err(Error::custom)?).map_err(Error::custom)?;
            entries.push((key, to_value(&v).map_err(Error::custom)?));
        }
        self.serialize_value(Value::Map(entries))
    }
}

/// Renders a serialized key as a map key. JSON object keys must be
/// strings, so only strings and integers are accepted (integers are
/// rendered in decimal, exactly like real `serde_json`).
pub(crate) fn key_to_string(v: &Value) -> Result<String, crate::export::ValueError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(crate::export::ValueError(format!(
            "map key must be a string or integer, got {}",
            other.kind()
        ))),
    }
}

/// A type that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let value = if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) };
                serializer.serialize_value(value)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Float(*self as f64))
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(Error::custom)?),+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ]))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}
