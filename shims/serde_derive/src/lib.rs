//! Derive macros for the serde shim.
//!
//! The container has no registry access, so `syn`/`quote` are not
//! available; the type definition is parsed directly from the
//! `proc_macro` token stream. Supported shapes cover everything this
//! workspace derives on:
//!
//! * named-field structs, tuple structs (newtypes serialize as their
//!   inner value, like real serde), unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * simple generic parameters without bounds (`Dag<N, E>`);
//! * `#[serde(transparent)]` on containers, `#[serde(default)]` and
//!   `#[serde(with = "module")]` on named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    params: Vec<String>,
    lifetimes: Vec<String>,
    body: Body,
    transparent: bool,
}

/// Serde attributes found on one item (container, field, or variant).
#[derive(Debug, Default)]
struct SerdeAttrs {
    transparent: bool,
    default: bool,
    with: Option<String>,
}

fn parse_serde_attr_group(group: &proc_macro::Group, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "transparent" => attrs.transparent = true,
                    "default" => attrs.default = true,
                    "with" => {
                        // with = "path"
                        i += 1; // '='
                        i += 1; // literal
                        if let Some(TokenTree::Literal(lit)) = toks.get(i) {
                            let s = lit.to_string();
                            attrs.with = Some(s.trim_matches('"').to_string());
                        } else {
                            panic!("serde shim derive: malformed `with` attribute");
                        }
                    }
                    other => panic!(
                        "serde shim derive: unsupported serde attribute `{other}` \
                         (supported: transparent, default, with)"
                    ),
                }
            }
            TokenTree::Punct(_) => {}
            other => panic!("serde shim derive: unexpected token in serde attribute: {other}"),
        }
        i += 1;
    }
}

/// Consumes leading `#[...]` attributes starting at `*i`, collecting
/// serde attributes and skipping everything else (docs, derives, ...).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                let Some(TokenTree::Group(g)) = toks.get(*i) else {
                    panic!("serde shim derive: `#` not followed by attribute group");
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(sg)) = inner.get(1) {
                            parse_serde_attr_group(sg, &mut attrs);
                        }
                    }
                }
                *i += 1;
            }
            _ => return attrs,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses `<...>` generics, returning lifetime and type parameter names.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut lifetimes = Vec::new();
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = toks.get(*i) else {
        return (lifetimes, params);
    };
    if p.as_char() != '<' {
        return (lifetimes, params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut pending_lifetime = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return (lifetimes, params);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expecting_param => {
                pending_lifetime = true;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                panic!(
                    "serde shim derive: generic parameter bounds in the type \
                     definition are not supported; move them to a where clause-free \
                     inherent impl"
                );
            }
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                if pending_lifetime {
                    lifetimes.push(format!("'{id}"));
                    pending_lifetime = false;
                } else {
                    params.push(id.to_string());
                }
                expecting_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    panic!("serde shim derive: unterminated generics");
}

/// Parses named fields from the tokens inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            panic!(
                "serde shim derive: expected field name, got {:?}",
                toks.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        // ':'
        i += 1;
        // Skip the type: tokens until a top-level ','.
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default: attrs.default,
            with: attrs.with,
        });
    }
    fields
}

/// Counts tuple fields inside a paren group (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            panic!(
                "serde shim derive: expected variant name, got {:?}",
                toks.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantBody::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantBody::Named(fields)
            }
            _ => VariantBody::Unit,
        };
        // Skip an optional discriminant `= expr` and the trailing comma.
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let Some(TokenTree::Ident(kw)) = toks.get(i) else {
        panic!("serde shim derive: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = toks.get(i) else {
        panic!("serde shim derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    let (lifetimes, params) = parse_generics(&toks, &mut i);
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "where" {
            panic!("serde shim derive: where clauses are not supported");
        }
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde shim derive: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        params,
        lifetimes,
        body,
        transparent: container_attrs.transparent,
    }
}

/// `<'a, N, E>` as used after the type name, or the empty string.
fn type_args(input: &Input) -> String {
    if input.params.is_empty() && input.lifetimes.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = input.lifetimes.clone();
    parts.extend(input.params.iter().cloned());
    format!("<{}>", parts.join(", "))
}

/// Impl-generics with the given bound attached to every type parameter.
fn impl_generics(input: &Input, extra_lifetime: Option<&str>, bound: &str) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        parts.push(lt.to_string());
    }
    parts.extend(input.lifetimes.iter().cloned());
    for p in &input.params {
        parts.push(format!("{p}: {bound}"));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("<{}>", parts.join(", "))
    }
}

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let generics = impl_generics(input, None, "::serde::Serialize");
    let args = type_args(input);
    let mut body = String::new();
    match &input.body {
        Body::Named(fields) => {
            if input.transparent {
                assert!(
                    fields.len() == 1,
                    "serde shim derive: #[serde(transparent)] requires exactly one field, \
                     `{}` has {}",
                    name,
                    fields.len()
                );
                let f = &fields[0].name;
                body.push_str(&format!("::serde::Serialize::serialize(&self.{f}, __s)"));
            } else {
                body.push_str(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, \
                     ::serde::export::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let fname = &f.name;
                    let expr = match &f.with {
                        Some(path) => format!(
                            "match {path}::serialize(&self.{fname}, \
                             ::serde::export::ValueSerializer) {{ \
                             ::std::result::Result::Ok(v) => v, \
                             ::std::result::Result::Err(e) => \
                             return ::std::result::Result::Err({SER_ERR}(e)) }}"
                        ),
                        None => format!(
                            "match ::serde::export::to_value(&self.{fname}) {{ \
                             ::std::result::Result::Ok(v) => v, \
                             ::std::result::Result::Err(e) => \
                             return ::std::result::Result::Err({SER_ERR}(e)) }}"
                        ),
                    };
                    body.push_str(&format!(
                        "__m.push((::std::string::String::from(\"{fname}\"), {expr}));\n"
                    ));
                }
                body.push_str("__s.serialize_value(::serde::export::Value::Map(__m))");
            }
        }
        Body::Tuple(1) => {
            body.push_str("::serde::Serialize::serialize(&self.0, __s)");
        }
        Body::Tuple(n) => {
            body.push_str(
                "let mut __items: ::std::vec::Vec<::serde::export::Value> = \
                 ::std::vec::Vec::new();\n",
            );
            for idx in 0..*n {
                body.push_str(&format!(
                    "__items.push(match ::serde::export::to_value(&self.{idx}) {{ \
                     ::std::result::Result::Ok(v) => v, \
                     ::std::result::Result::Err(e) => \
                     return ::std::result::Result::Err({SER_ERR}(e)) }});\n"
                ));
            }
            body.push_str("__s.serialize_value(::serde::export::Value::Seq(__items))");
        }
        Body::Unit => {
            body.push_str(&format!(
                "__s.serialize_value(::serde::export::Value::Str(\
                 ::std::string::String::from(\"{name}\")))"
            ));
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit => body.push_str(&format!(
                        "{name}::{vname} => __s.serialize_value(\
                         ::serde::export::Value::Str(\
                         ::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    VariantBody::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(__f0) => {{ \
                         let __inner = match ::serde::export::to_value(__f0) {{ \
                         ::std::result::Result::Ok(v) => v, \
                         ::std::result::Result::Err(e) => \
                         return ::std::result::Result::Err({SER_ERR}(e)) }}; \
                         __s.serialize_value(::serde::export::Value::Map(vec![(\
                         ::std::string::String::from(\"{vname}\"), __inner)])) }}\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ \
                             let mut __items: ::std::vec::Vec<::serde::export::Value> \
                             = ::std::vec::Vec::new();\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "__items.push(match ::serde::export::to_value({b}) {{ \
                                 ::std::result::Result::Ok(v) => v, \
                                 ::std::result::Result::Err(e) => \
                                 return ::std::result::Result::Err({SER_ERR}(e)) }});\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "__s.serialize_value(::serde::export::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::export::Value::Seq(__items))])) }}\n"
                        ));
                        body.push_str(&arm);
                    }
                    VariantBody::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ \
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::export::Value)> = ::std::vec::Vec::new();\n",
                            binders.join(", ")
                        );
                        for f in fields {
                            let fname = &f.name;
                            arm.push_str(&format!(
                                "__m.push((::std::string::String::from(\"{fname}\"), \
                                 match ::serde::export::to_value({fname}) {{ \
                                 ::std::result::Result::Ok(v) => v, \
                                 ::std::result::Result::Err(e) => \
                                 return ::std::result::Result::Err({SER_ERR}(e)) }}));\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "__s.serialize_value(::serde::export::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::export::Value::Map(__m))])) }}\n"
                        ));
                        body.push_str(&arm);
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {name}{args} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_field_reads(ty_label: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let found = match &f.with {
            Some(path) => format!(
                "match {path}::deserialize(::serde::export::ValueDeserializer::new(\
                 __kv.1.clone())) {{ \
                 ::std::result::Result::Ok(v) => v, \
                 ::std::result::Result::Err(e) => \
                 return ::std::result::Result::Err({DE_ERR}(e)) }}"
            ),
            None => format!(
                "match ::serde::export::from_value(__kv.1.clone()) {{ \
                 ::std::result::Result::Ok(v) => v, \
                 ::std::result::Result::Err(e) => \
                 return ::std::result::Result::Err({DE_ERR}(e)) }}"
            ),
        };
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err({DE_ERR}(\
                 ::serde::export::missing_field(\"{ty_label}\", \"{fname}\")))"
            )
        };
        out.push_str(&format!(
            "{fname}: match __m.iter().find(|__kv| __kv.0 == \"{fname}\") {{ \
             ::std::option::Option::Some(__kv) => {found}, \
             ::std::option::Option::None => {missing} }},\n"
        ));
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let generics = impl_generics(input, Some("'de"), "::serde::de::DeserializeOwned");
    let args = type_args(input);
    let expect_map = format!(
        "let __m = match __v {{ ::serde::export::Value::Map(m) => m, \
         other => return ::std::result::Result::Err({DE_ERR}(\
         ::std::format!(\"expected map for {name}, got {{}}\", other.kind()))) }};\n"
    );
    let mut body = String::from("let __v = __d.into_value()?;\n");
    match &input.body {
        Body::Named(fields) => {
            if input.transparent {
                assert!(
                    fields.len() == 1,
                    "serde shim derive: #[serde(transparent)] requires exactly one field, \
                     `{}` has {}",
                    name,
                    fields.len()
                );
                let f = &fields[0].name;
                body = format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::deserialize(__d)? }})"
                );
            } else {
                body.push_str(&expect_map);
                body.push_str(&format!(
                    "::std::result::Result::Ok({name} {{\n{}\n}})",
                    gen_named_field_reads(name, fields)
                ));
            }
        }
        Body::Tuple(1) => {
            body = format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize(__d)?))"
            );
        }
        Body::Tuple(n) => {
            body.push_str(&format!(
                "let __items = match __v {{ ::serde::export::Value::Seq(s) if s.len() == {n} \
                 => s, other => return ::std::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"expected sequence of {n} for {name}, got {{}}\", \
                 other.kind()))) }};\n\
                 let mut __it = __items.into_iter();\n"
            ));
            let reads: Vec<String> = (0..*n)
                .map(|_| {
                    format!(
                        "match ::serde::export::from_value(__it.next().unwrap()) {{ \
                         ::std::result::Result::Ok(v) => v, \
                         ::std::result::Result::Err(e) => \
                         return ::std::result::Result::Err({DE_ERR}(e)) }}"
                    )
                })
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                reads.join(", ")
            ));
        }
        Body::Unit => {
            body.push_str(&format!(
                "match __v {{ \
                 ::serde::export::Value::Str(s) if s == \"{name}\" => \
                 ::std::result::Result::Ok({name}), \
                 ::serde::export::Value::Null => ::std::result::Result::Ok({name}), \
                 other => ::std::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"expected unit struct {name}, got {{}}\", other.kind()))) }}"
            ));
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Also accept the {"V": null} form.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantBody::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match ::serde::export::from_value(\
                             __payload.clone()) {{ \
                             ::std::result::Result::Ok(v) => \
                             ::std::result::Result::Ok({name}::{vname}(v)), \
                             ::std::result::Result::Err(e) => \
                             ::std::result::Result::Err({DE_ERR}(e)) }},\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "match ::serde::export::from_value(\
                                     __it.next().unwrap()) {{ \
                                     ::std::result::Result::Ok(v) => v, \
                                     ::std::result::Result::Err(e) => \
                                     return ::std::result::Result::Err({DE_ERR}(e)) }}"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ \
                             let __items = match __payload {{ \
                             ::serde::export::Value::Seq(s) if s.len() == {n} => s.clone(), \
                             other => return ::std::result::Result::Err({DE_ERR}(\
                             ::std::format!(\"expected sequence of {n} for variant \
                             {vname}, got {{}}\", other.kind()))) }}; \
                             let mut __it = __items.into_iter(); \
                             ::std::result::Result::Ok({name}::{vname}({})) }},\n",
                            reads.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ \
                             let __m = match __payload {{ \
                             ::serde::export::Value::Map(m) => m.clone(), \
                             other => return ::std::result::Result::Err({DE_ERR}(\
                             ::std::format!(\"expected map for variant {vname}, \
                             got {{}}\", other.kind()))) }}; \
                             ::std::result::Result::Ok({name}::{vname} {{\n{}\n}}) }},\n",
                            gen_named_field_reads(vname, fields)
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "match &__v {{\n\
                 ::serde::export::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::export::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"expected enum {name}, got {{}}\", other.kind()))),\n\
                 }}"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize<'de> for {name}{args} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n#[allow(unused_variables)]\n{body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
