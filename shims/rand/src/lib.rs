//! Offline shim of the `rand` crate: the subset of the API this
//! workspace uses (`Rng::gen_range`/`gen_bool`, `SeedableRng`,
//! `seq::SliceRandom`), with deterministic, seedable generators.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Deterministically seeds the generator.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range type (simplified `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A uniform f64 draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Types drawable from the standard distribution (simplified
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// User-facing extension methods (simplified `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draw from the standard distribution of `T` (`[0, 1)` for
    /// floats, full domain for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related helpers (simplified `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A small, fast, deterministic default generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SmallRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..15);
            assert!((3..15).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.gen_range(0u64..=0);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
