//! Offline shim of `serde_json`: a complete JSON emitter and parser
//! over the serde shim's [`Value`](serde::export::Value) data model.
//!
//! Supports the subset of the real crate's API used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`], and
//! a [`Value`] re-export.

use serde::de::Error as _;
use serde::export::{from_value, to_value, ValueDeserializer};
use serde::{DeserializeOwned, Serialize};
use std::fmt;

pub use serde::export::Value;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Convenience alias matching real `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&v, None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&v, Some("  "), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value_tree<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    to_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value_tree<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize(ValueDeserializer::new(value)).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<&str>, depth: usize, out: &mut String) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_value(v: &Value, indent: Option<&str>, depth: usize, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Keep integral floats recognizable as numbers either way; the
            // shim deserializer accepts both integer and float tokens for
            // float targets.
            let s = format!("{f}");
            out.push_str(&s);
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                    let hex2 = std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    self.pos += 4;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::new(
                                            "high surrogate not followed by low surrogate",
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone surrogate in string"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

/// Suppresses an unused-import warning when no caller needs it; also a
/// tiny internal sanity hook used by unit tests.
#[allow(dead_code)]
fn _assert_error_is_de_error() {
    fn _take<E: serde::de::Error>() {}
    _take::<Error>();
    let _ = Error::custom("x");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
    }

    #[test]
    fn round_trip_containers() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,\"a\"],[2,\"b\"]]");
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_with_integer_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"3\":\"x\"}");
        let back: BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \u{1F600} \u{8}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn rejects_malformed_surrogates() {
        // High surrogate followed by a non-low-surrogate escape must be
        // an Err, not a panic or a mangled code point.
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        // Lone high surrogate at end of string.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }
}
