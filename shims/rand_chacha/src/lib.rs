//! Offline shim of `rand_chacha`: a real ChaCha8 keystream generator
//! behind the `ChaCha8Rng` name, seedable from a `u64` like the real
//! crate. Deterministic across platforms and runs.

use rand::{RngCore, SeedableRng};

/// Re-export matching `rand_chacha::rand_core` in the real crate.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha-8 based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Two rounds per iteration: column then diagonal.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64,
        // like rand's default seed expansion.
        let mut key = [0u32; 8];
        let mut s = state;
        for pair in key.chunks_mut(2) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            if pair.len() > 1 {
                pair[1] = (z >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
        }
        let p = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(p > 350 && p < 650, "gen_bool(0.5) badly skewed: {p}/1000");
    }
}
