//! Offline shim of `criterion`: enough of the API to compile and run
//! this workspace's benches (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Measurement: a single-iteration calibration pass sizes the number of
//! iterations per sample so one sample takes roughly
//! [`TARGET_SAMPLE_TIME`]; each of the `sample_size` samples then times
//! that many iterations and records the mean per-iteration time. The
//! report shows the median, a Tukey-fence outlier-trimmed mean, min and
//! max. There is still no HTML report or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for `criterion::black_box` users (the std one).
pub use std::hint::black_box;

/// How long one sample should take; the calibration pass picks an
/// iteration count aiming at this (clamped to `[1, 10_000]` iterations,
/// so slow routines degrade to one iteration per sample).
pub const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Overrides the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.default_sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named group sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark, e.g. `mh/20`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id forms into a display label.
pub trait IntoBenchmarkId {
    /// The label to print.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            samples: Vec::new(),
            iters: 1,
        }
    }
}

impl Bencher {
    fn with_iters(iters: u64) -> Self {
        Bencher {
            samples: Vec::new(),
            iters: iters.max(1),
        }
    }

    /// Times `routine` over the calibrated number of iterations (one
    /// warm-up call, untimed) and records the mean per-iteration time as
    /// one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters as u32);
    }
}

/// Summary statistics of one benchmark's per-iteration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean after dropping samples outside the Tukey fences
    /// (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`).
    pub trimmed_mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Total samples measured.
    pub samples: usize,
    /// Samples discarded as outliers.
    pub outliers: usize,
}

impl Stats {
    /// Computes the summary of a set of samples (`None` when empty).
    pub fn from_samples(samples: &[Duration]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        };
        let q1 = sorted[n / 4];
        let q3 = sorted[(3 * n / 4).min(n - 1)];
        let fence = (q3.saturating_sub(q1)) * 3 / 2;
        let lo = q1.saturating_sub(fence);
        let hi = q3 + fence;
        let kept: Vec<Duration> = sorted
            .iter()
            .copied()
            .filter(|d| *d >= lo && *d <= hi)
            .collect();
        let trimmed_mean = kept.iter().sum::<Duration>() / kept.len() as u32;
        Some(Stats {
            median,
            trimmed_mean,
            min: sorted[0],
            max: sorted[n - 1],
            samples: n,
            outliers: n - kept.len(),
        })
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration: one single-iteration pass sizes the per-sample
    // iteration count so fast routines are timed over many iterations.
    let mut calibration = Bencher::with_iters(1);
    f(&mut calibration);
    let Some(&probe) = calibration.samples.iter().min() else {
        println!("{label:<40} (no samples)");
        return;
    };
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / probe.as_nanos().max(1)).clamp(1, 10_000) as u64;
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::with_iters(iters);
        f(&mut bencher);
        samples.extend(bencher.samples);
    }
    let Some(stats) = Stats::from_samples(&samples) else {
        println!("{label:<40} (no samples)");
        return;
    };
    println!(
        "{label:<40} median {:>11?}   mean* {:>11?}   min {:>11?}   max {:>11?}   \
         ({} samples × {iters} iters, {} outliers trimmed)",
        stats.median, stats.trimmed_mean, stats.min, stats.max, stats.samples, stats.outliers,
    );
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn stats_median_odd_and_even() {
        let s = Stats::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        assert_eq!(s.median, ms(2));
        let s = Stats::from_samples(&[ms(1), ms(2), ms(3), ms(4)]).unwrap();
        assert_eq!(s.median, ms(2) + Duration::from_micros(500));
        assert_eq!((s.min, s.max), (ms(1), ms(4)));
    }

    #[test]
    fn stats_trims_outliers() {
        // Nine tight samples and one wild outlier: the trimmed mean
        // ignores the outlier, min/max still report it.
        let mut samples = vec![ms(10); 9];
        samples.push(ms(1000));
        let s = Stats::from_samples(&samples).unwrap();
        assert_eq!(s.outliers, 1);
        assert_eq!(s.trimmed_mean, ms(10));
        assert_eq!(s.max, ms(1000));
        assert_eq!(s.median, ms(10));
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(Stats::from_samples(&[]).is_none());
    }

    #[test]
    fn bencher_records_per_iteration_mean() {
        let mut b = Bencher::with_iters(64);
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 1);
    }
}
