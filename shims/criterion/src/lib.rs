//! Offline shim of `criterion`: enough of the API to compile and run
//! this workspace's benches (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Measurement is deliberately simple: each benchmark runs
//! `sample_size` timed samples after one warm-up call and reports
//! mean / min / max wall-clock time per iteration on stdout. There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for `criterion::black_box` users (the std one).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Overrides the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.default_sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named group sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark, e.g. `mh/20`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id forms into a display label.
pub trait IntoBenchmarkId {
    /// The label to print.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        samples.extend(bencher.samples);
    }
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        samples.len()
    );
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
