//! Weight-sensitivity sweep of the objective function, as a scenario
//! campaign.
//!
//! The objective `C = w1P·C1P + w1m·C1m + w2P·max(0, tneed−C2P) +
//! w2m·max(0, bneed−C2m)` mixes a percentage scale (C1) with a time scale
//! (C2); the weights calibrate them. This example maps the same current
//! application under different weight settings and shows how the chosen
//! design trades packing failure against periodic-slack deficit — the
//! ablation called out in `DESIGN.md`.
//!
//! The sweep is one `incdes::explore` campaign: the weight settings are
//! a grid axis, every scenario replays the same lifecycle script (five
//! existing applications, then the current one with MH) from the same
//! seed, and the scenarios run in parallel without affecting the
//! numbers.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use incdes::explore::{run_campaign, BaseSpec, CampaignSpec, Count, ScriptStep, WeightSetting};
use incdes::mapping::Strategy;
use incdes::prelude::*;
use incdes::synth::paper::dac2001_small;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = dac2001_small();

    let weight_settings = vec![
        WeightSetting {
            label: "balanced (1,1,1,1)".into(),
            weights: Weights::default(),
        },
        WeightSetting {
            label: "packing-only (1,1,0,0)".into(),
            weights: Weights {
                w2_processes: 0.0,
                w2_messages: 0.0,
                ..Weights::default()
            },
        },
        WeightSetting {
            label: "distribution-only (0,0,1,1)".into(),
            weights: Weights {
                w1_processes: 0.0,
                w1_messages: 0.0,
                ..Weights::default()
            },
        },
        WeightSetting {
            label: "bus-heavy (1,5,1,5)".into(),
            weights: Weights {
                w1_messages: 5.0,
                w2_messages: 5.0,
                ..Weights::default()
            },
        },
    ];

    // Five existing applications build a moderately loaded base system;
    // the last step maps the current application with MH under the
    // scenario's weights.
    let mut script: Vec<ScriptStep> = (0..5)
        .map(|_| ScriptStep::Add {
            processes: Count::Fixed(30),
            strategy: Some(Strategy::AdHoc),
            future: false,
        })
        .collect();
    script.push(ScriptStep::Add {
        processes: Count::Fixed(25),
        strategy: None,
        future: false,
    });

    let spec = CampaignSpec {
        name: "design-space".into(),
        base: BaseSpec::Config(preset.cfg.clone()),
        future_processes: preset.future_processes,
        demand_factor: 4.0,
        sizes: vec![],
        strategies: vec![Strategy::mh()],
        seeds: vec![7],
        weight_settings,
        script,
        check_invariants: false,
        parallelism: Default::default(),
    };

    let run = run_campaign(&spec, 4)?;

    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "weights", "C1P%", "C1m%", "penP", "penM", "C total"
    );
    for outcome in run.completed() {
        let current = outcome.steps.last().expect("script is non-empty");
        let Some(c) = current.cost else {
            println!("{:<28} (infeasible)", outcome.key.weights.label);
            continue;
        };
        println!(
            "{:<28} {:>8.1} {:>8.1} {:>8} {:>8} {:>10.2}",
            outcome.key.weights.label,
            c.c1_processes,
            c.c1_messages,
            c.penalty_processes.ticks(),
            c.penalty_messages.ticks(),
            c.total
        );
    }
    println!("\n(the same application, the same system — only the designer's priorities change)");
    Ok(())
}
