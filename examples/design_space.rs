//! Weight-sensitivity sweep of the objective function.
//!
//! The objective `C = w1P·C1P + w1m·C1m + w2P·max(0, tneed−C2P) +
//! w2m·max(0, bneed−C2m)` mixes a percentage scale (C1) with a time scale
//! (C2); the weights calibrate them. This example maps the same current
//! application under different weight settings and shows how the chosen
//! design trades packing failure against periodic-slack deficit — the
//! ablation called out in `DESIGN.md`.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use incdes::mapping::{run_strategy, MappingContext, Strategy};
use incdes::prelude::*;
use incdes::synth::paper::dac2001_small;
use incdes::synth::{future_profile_for, generate_application, generate_architecture};
use incdes_model::time::hyperperiod;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg)?;

    // A moderately loaded base system.
    let mut future = future_profile_for(&preset.cfg, preset.future_processes);
    future.t_need = Time::new(future.t_need.ticks() * 4);
    future.b_need = Time::new(future.b_need.ticks() * 4);

    let mut system = System::new(arch.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for i in 0..5 {
        let app = generate_application(&preset.cfg, &format!("existing{i}"), 30, &mut rng)?;
        system.add_application(app, &future, &Weights::default(), &Strategy::AdHoc)?;
    }
    let current = generate_application(&preset.cfg, "current", 25, &mut rng)?;

    let mut periods = vec![system.horizon()];
    periods.extend(current.graphs.iter().map(|g| g.period));
    let horizon = hyperperiod(periods)?;
    let frozen = system.table().replicate_to(&arch, horizon)?;

    let settings: &[(&str, Weights)] = &[
        ("balanced (1,1,1,1)", Weights::default()),
        (
            "packing-only (1,1,0,0)",
            Weights {
                w2_processes: 0.0,
                w2_messages: 0.0,
                ..Weights::default()
            },
        ),
        (
            "distribution-only (0,0,1,1)",
            Weights {
                w1_processes: 0.0,
                w1_messages: 0.0,
                ..Weights::default()
            },
        ),
        (
            "bus-heavy (1,5,1,5)",
            Weights {
                w1_messages: 5.0,
                w2_messages: 5.0,
                ..Weights::default()
            },
        ),
    ];

    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "weights", "C1P%", "C1m%", "penP", "penM", "C total"
    );
    for (name, weights) in settings {
        let ctx = MappingContext::new(
            &arch,
            AppId(system.app_count() as u32),
            &current,
            Some(&frozen),
            horizon,
            &future,
            weights,
        );
        let outcome = run_strategy(&ctx, &Strategy::mh())?;
        let c = outcome.evaluation.cost;
        println!(
            "{:<28} {:>8.1} {:>8.1} {:>8} {:>8} {:>10.2}",
            name,
            c.c1_processes,
            c.c1_messages,
            c.penalty_processes.ticks(),
            c.penalty_messages.ticks(),
            c.total
        );
    }
    println!("\n(the same application, the same system — only the designer's priorities change)");
    Ok(())
}
