//! Quickstart: map one application onto a two-node TTP system and print
//! the resulting static cyclic schedule and design metrics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use incdes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The hardware platform: two nodes on a TDMA bus with 10-tick
    //    slots (cycle = 20 ticks).
    let arch = Architecture::builder()
        .pe("N1")
        .pe("N2")
        .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
        .build()?;

    // 2. The application: a sensor → filter → actuator chain released
    //    every 120 ticks.
    let mut g = ProcessGraph::new("sense-chain", Time::new(120), Time::new(120));
    let sense = g.add_process(
        Process::new("sense")
            .wcet(PeId(0), Time::new(8))
            .wcet(PeId(1), Time::new(12)),
    );
    let filter = g.add_process(
        Process::new("filter")
            .wcet(PeId(0), Time::new(14))
            .wcet(PeId(1), Time::new(10)),
    );
    let act = g.add_process(Process::new("act").wcet(PeId(1), Time::new(6)));
    g.add_message(sense, filter, Message::new("raw", 6))?;
    g.add_message(filter, act, Message::new("cmd", 2))?;
    let app = Application::new("v1", vec![g]);

    // 3. What we expect from the future (slide 10's example profile).
    let future = FutureProfile::slide_example();

    // 4. Map and schedule with the paper's mapping heuristic.
    let mut system = System::new(arch);
    let report = system.add_application(app, &future, &Weights::default(), &Strategy::mh())?;

    println!(
        "committed {} over a hyperperiod of {}",
        report.app_id, report.horizon
    );
    println!(
        "objective C = {:.2}  (C1P {:.1}%  C1m {:.1}%  C2P {}  C2m {})",
        report.cost.total,
        report.cost.c1_processes,
        report.cost.c1_messages,
        report.cost.c2_processes,
        report.cost.c2_messages,
    );
    println!("\nschedule (one row per PE, then the bus):");
    print!("{}", system.table().render_text(system.arch(), 60));

    println!("\nper-PE slack:");
    let slack = system.slack();
    for pe in system.arch().pe_ids() {
        println!(
            "  {:>3}: {} free in {} gaps",
            system.arch().pe(pe).name,
            slack.total_slack_of(pe),
            slack.gaps_of(pe).len()
        );
    }

    println!();
    print!(
        "{}",
        incdes::sched::ScheduleReport::new(system.arch(), system.table())
    );
    Ok(())
}
