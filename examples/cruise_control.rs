//! An automotive scenario in the spirit of the paper's application domain:
//! a vehicle cruise controller distributed over a TTP network, followed by
//! two engineering-change increments.
//!
//! Increment 1 — the cruise controller itself (sensing, speed estimation,
//! control law, throttle actuation, driver display).
//! Increment 2 — an adaptive headway add-on (radar + distance control)
//! that must fit into the slack left by increment 1 *without touching it*.
//! Increment 3 — a diagnostics logger, checked with a mappability probe
//! before committing.
//!
//! ```text
//! cargo run --example cruise_control
//! ```

use incdes::prelude::*;

/// Five ECUs of a small car network: engine controller, ABS unit,
/// transmission controller, body controller, dashboard.
fn car_network() -> Result<Architecture, Box<dyn std::error::Error>> {
    Ok(Architecture::builder()
        .pe("ECM")
        .pe("ABS")
        .pe("TCM")
        .pe("BCM")
        .pe("DASH")
        .bus(BusConfig::uniform_round(5, Time::new(8), 1)?)
        .build()?)
}

/// Increment 1: the cruise controller, period 200 ticks.
fn cruise_controller() -> Result<Application, Box<dyn std::error::Error>> {
    let mut g = ProcessGraph::new("cc", Time::new(200), Time::new(200));
    let wheel = g.add_process(
        Process::new("wheel-speed").wcet(PeId(1), Time::new(6)), // wheel sensors sit on the ABS unit
    );
    let estimate = g.add_process(
        Process::new("speed-estimate")
            .wcet(PeId(0), Time::new(10))
            .wcet(PeId(1), Time::new(12)),
    );
    let law = g.add_process(
        Process::new("control-law")
            .wcet(PeId(0), Time::new(16))
            .wcet(PeId(2), Time::new(18)),
    );
    let throttle = g.add_process(
        Process::new("throttle").wcet(PeId(0), Time::new(8)), // actuator on the ECM
    );
    let display = g.add_process(
        Process::new("display").wcet(PeId(4), Time::new(5)), // dashboard only
    );
    g.add_message(wheel, estimate, Message::new("ticks", 4))?;
    g.add_message(estimate, law, Message::new("speed", 4))?;
    g.add_message(law, throttle, Message::new("torque", 2))?;
    g.add_message(law, display, Message::new("setpoint", 2))?;
    Ok(Application::new("cruise-control", vec![g]))
}

/// Increment 2: adaptive headway keeping, period 400 ticks.
fn headway_addon() -> Result<Application, Box<dyn std::error::Error>> {
    let mut g = ProcessGraph::new("acc", Time::new(400), Time::new(400));
    let radar = g.add_process(
        Process::new("radar").wcet(PeId(3), Time::new(12)), // radar on the body controller
    );
    let track = g.add_process(
        Process::new("track")
            .wcet(PeId(0), Time::new(14))
            .wcet(PeId(2), Time::new(14))
            .wcet(PeId(3), Time::new(16)),
    );
    let gap = g.add_process(
        Process::new("gap-control")
            .wcet(PeId(0), Time::new(10))
            .wcet(PeId(2), Time::new(12)),
    );
    let warn = g.add_process(Process::new("warn").wcet(PeId(4), Time::new(4)));
    g.add_message(radar, track, Message::new("echo", 6))?;
    g.add_message(track, gap, Message::new("range", 4))?;
    g.add_message(gap, warn, Message::new("alert", 2))?;
    Ok(Application::new("headway", vec![g]))
}

/// Increment 3 candidate: a diagnostics logger, period 400.
fn diagnostics(n_probes: usize) -> Result<Application, Box<dyn std::error::Error>> {
    let mut g = ProcessGraph::new("diag", Time::new(400), Time::new(400));
    let collect = g.add_process(
        Process::new("collect")
            .wcet(PeId(0), Time::new(8))
            .wcet(PeId(2), Time::new(8))
            .wcet(PeId(3), Time::new(8)),
    );
    for i in 0..n_probes {
        let probe = g.add_process(
            Process::new(format!("probe{i}"))
                .wcet(PeId(0), Time::new(30))
                .wcet(PeId(2), Time::new(30)),
        );
        g.add_message(probe, collect, Message::new(format!("trace{i}"), 8))?;
    }
    Ok(Application::new("diagnostics", vec![g]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The family of future add-ons the OEM expects over the car's life.
    let future = FutureProfile::new(
        Time::new(400),
        Time::new(80),
        Time::new(10),
        Histogram::new(vec![
            (Time::new(5), 0.4),
            (Time::new(10), 0.3),
            (Time::new(16), 0.2),
            (Time::new(30), 0.1),
        ])?,
        Histogram::new(vec![(2, 0.4), (4, 0.3), (6, 0.2), (8, 0.1)])?,
    );
    let weights = Weights::default();

    let mut system = System::new(car_network()?);

    // --- Increment 1: the cruise controller -----------------------------
    let r1 = system.add_application(cruise_controller()?, &future, &weights, &Strategy::mh())?;
    println!("[v1] cruise controller committed: C = {:.2}", r1.cost.total);

    // --- Increment 2: headway add-on, existing app untouched ------------
    let cc_jobs_before: Vec<_> = system
        .table()
        .jobs()
        .iter()
        .filter(|j| j.job.app == r1.app_id)
        .map(|j| (j.job, j.start))
        .collect();
    let r2 = system.add_application(headway_addon()?, &future, &weights, &Strategy::mh())?;
    println!("[v2] headway add-on committed:    C = {:.2}", r2.cost.total);
    for (job, start) in cc_jobs_before {
        let now = system
            .table()
            .job(job)
            .expect("existing jobs survive commits");
        assert_eq!(
            now.start, start,
            "requirement (a): existing apps never move"
        );
    }
    println!("[v2] verified: every cruise-controller job kept its slot");

    // --- Increment 3: probe before committing ---------------------------
    for n in [1usize, 4, 12] {
        let candidate = diagnostics(n)?;
        let probe = system.probe_application(&candidate, &future, &weights, &Strategy::AdHoc)?;
        println!(
            "[v3] diagnostics with {n:>2} probes: {}",
            if probe.feasible {
                "fits"
            } else {
                "does NOT fit"
            }
        );
    }
    let r3 = system.add_application(diagnostics(4)?, &future, &weights, &Strategy::mh())?;
    println!("[v3] diagnostics committed:       C = {:.2}", r3.cost.total);

    println!("\nfinal schedule over {}:", system.horizon());
    print!("{}", system.table().render_text(system.arch(), 72));
    Ok(())
}
