//! The paper's central claim, end to end: designing for the future pays.
//!
//! Two copies of the same system receive the same sequence of application
//! increments — one mapped with the ad-hoc strategy (AH, blind to the
//! future), one with the mapping heuristic (MH, optimizing the C1/C2
//! metrics). After each increment we probe how many applications of the
//! expected future family still fit on each system.
//!
//! ```text
//! cargo run --release --example incremental_lifecycle
//! ```

use incdes::prelude::*;
use incdes::synth::paper::dac2001_small;
use incdes::synth::{generate_application, generate_architecture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg)?;
    let mut future = incdes::synth::future_profile_for(&preset.cfg, preset.future_processes);
    // Press on the system: the expected future family is demanding (the
    // experiment harness applies the same kind of scaling; see
    // EXPERIMENTS.md).
    future.t_need = Time::new(future.t_need.ticks() * 8);
    future.b_need = Time::new(future.b_need.ticks() * 8);
    let weights = Weights::default();

    let mut ah_system = System::new(arch.clone());
    let mut mh_system = System::new(arch);

    println!("increment |  AH cost |  MH cost | future apps fit (AH) | future apps fit (MH)");
    println!("----------+----------+----------+----------------------+---------------------");

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for version in 1..=6 {
        let app = generate_application(&preset.cfg, &format!("v{version}"), 35, &mut rng)?;

        let ah_report =
            ah_system.add_application(app.clone(), &future, &weights, &Strategy::AdHoc)?;
        let mh_report = mh_system.add_application(app, &future, &weights, &Strategy::mh())?;

        // Probe ten draws from the future family on both systems.
        let (mut ah_fit, mut mh_fit) = (0, 0);
        for probe_seed in 0..10u64 {
            let mut prng = ChaCha8Rng::seed_from_u64(1000 + probe_seed);
            // Probe a demanding member of the family: twice the typical
            // future size.
            let fut = generate_application(
                &preset.cfg,
                "future",
                preset.future_processes * 2,
                &mut prng,
            )?;
            if ah_system
                .probe_application(&fut, &future, &weights, &Strategy::AdHoc)?
                .feasible
            {
                ah_fit += 1;
            }
            if mh_system
                .probe_application(&fut, &future, &weights, &Strategy::AdHoc)?
                .feasible
            {
                mh_fit += 1;
            }
        }
        println!(
            "       v{version} | {:>8.1} | {:>8.1} | {:>17}/10  | {:>17}/10",
            ah_report.cost.total, mh_report.cost.total, ah_fit, mh_fit
        );
    }

    println!();
    println!(
        "AH system: {} applications, hyperperiod {}",
        ah_system.app_count(),
        ah_system.horizon()
    );
    println!(
        "MH system: {} applications, hyperperiod {}",
        mh_system.app_count(),
        mh_system.horizon()
    );
    Ok(())
}
