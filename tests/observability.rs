//! Observability determinism guard: the out-of-band diagnostics planes
//! (deterministic counters, wall-clock phase scopes) must never leak
//! into campaign results.
//!
//! * The `CampaignReport` JSON is **byte-identical** with phase
//!   profiling armed vs. disarmed, and across worker counts 1 and 8.
//! * The per-scenario counter snapshots are identical across worker
//!   counts — the counter plane is deterministic, not just the report.

use incdes::explore::{run_campaign, CampaignSpec};
use incdes::mapping::Strategy;
use incdes::obs::counters::Counter;
use incdes::obs::phase::{self, Phase};
use std::sync::{Mutex, MutexGuard};

/// `phase::set_enabled` is a process-global switch; tests that toggle
/// it must not interleave, or one test's disarm could clip another's
/// armed window.
static PHASE_SWITCH: Mutex<()> = Mutex::new(());

fn lock_phase_switch() -> MutexGuard<'static, ()> {
    PHASE_SWITCH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Four scenarios — small enough to stay fast, enough to give an
/// 8-worker pool real partitioning choices.
fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::small_demo();
    spec.sizes = vec![5, 8];
    spec.seeds = vec![3, 4];
    spec.strategies = vec![Strategy::AdHoc];
    spec
}

fn report_bytes(spec: &CampaignSpec, workers: usize) -> String {
    run_campaign(spec, workers)
        .expect("demo spec is valid")
        .report()
        .to_json_pretty()
        .expect("report serializes")
}

#[test]
fn campaign_report_bytes_survive_profiling_and_worker_counts() {
    let _switch = lock_phase_switch();
    let spec = spec();
    let baseline = report_bytes(&spec, 1);

    // Worker-count invariance, profiling off.
    assert_eq!(baseline, report_bytes(&spec, 8));

    // Arm the wall-clock plane: report bytes must not move.
    phase::set_enabled(true);
    let profiled_seq = report_bytes(&spec, 1);
    let profiled_par = report_bytes(&spec, 8);
    phase::set_enabled(false);
    assert_eq!(baseline, profiled_seq);
    assert_eq!(baseline, profiled_par);
}

#[test]
fn scenario_counters_are_identical_across_worker_counts() {
    let spec = spec();
    let seq = run_campaign(&spec, 1).expect("demo spec is valid");
    let par = run_campaign(&spec, 8).expect("demo spec is valid");

    assert_eq!(seq.outcomes.len(), 4);
    assert_eq!(seq.outcomes.len(), par.outcomes.len());
    for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
        let (a, b) = (a.expect_completed(), b.expect_completed());
        assert_eq!(a.key.index, b.key.index);
        assert_eq!(
            a.counters, b.counters,
            "scenario {} counters drifted between 1 and 8 workers",
            a.key.index
        );
        // The scenarios actually exercise the instrumented engine:
        // a campaign that bumped nothing would make the equality
        // assertions vacuous.
        assert!(a.counters.get(Counter::BaseBakes) > 0);
        assert!(a.counters.get(Counter::HeapPops) > 0);
    }
}

#[test]
fn armed_phase_scopes_record_without_perturbing_counters() {
    let _switch = lock_phase_switch();
    let spec = spec();
    let plain = run_campaign(&spec, 1).expect("demo spec is valid");

    phase::set_enabled(true);
    let profiled = run_campaign(&spec, 1).expect("demo spec is valid");
    phase::set_enabled(false);

    for (a, b) in plain.outcomes.iter().zip(&profiled.outcomes) {
        let (a, b) = (a.expect_completed(), b.expect_completed());
        assert_eq!(a.counters, b.counters);
        // With the plane armed (and the `obs-wallclock` feature on for
        // tests) the scenario must have recorded real phase activity.
        assert!(b.phases.get(Phase::Splice).count > 0);
        assert!(b.phases.get(Phase::Objective).count > 0);
    }
}
