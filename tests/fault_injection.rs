//! Fault-injection acceptance suite: the determinism oracle must hold
//! under adversity. With a [`FaultyBackend`] injecting seeded I/O
//! errors into the campaign store, the final `CampaignReport` must stay
//! **byte-identical** to a fault-free run — transient errors retry,
//! persistent errors degrade to compute-through, torn writes surface as
//! corrupt blobs and re-run, and an interrupted campaign resumes by
//! executing only its missing scenarios.

use incdes::explore::{run_campaign, run_campaign_store, CampaignSpec, ScriptStep, StoreOptions};
use incdes::mapping::Strategy;
use incdes::store::{FaultKind, FaultPlan, FaultyBackend, FsBackend, OpFaults, Store};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Four fast scenarios (2 sizes × 2 seeds × AdHoc): enough puts and
/// lookups to give a fault plan real targets.
fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::small_demo();
    spec.sizes = vec![5, 8];
    spec.seeds = vec![3, 4];
    spec.strategies = vec![Strategy::AdHoc];
    spec
}

/// A fresh store directory under `target/` (kept out of temp so CI
/// sandboxes with odd /tmp permissions still work).
fn fresh_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = PathBuf::from("target").join(format!(
        "test-fault-injection-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn faulty_store(dir: &PathBuf, plan: FaultPlan, seed: u64) -> Store {
    let backend = FaultyBackend::new(Arc::new(FsBackend), plan, seed);
    Store::open_with_backend(dir, Arc::new(backend)).expect("open is never faulted")
}

fn baseline_json(spec: &CampaignSpec) -> String {
    run_campaign(spec, 1)
        .expect("spec is valid")
        .report()
        .to_json_pretty()
        .expect("report serializes")
}

/// A transient-heavy plan: every store operation class the campaign
/// path exercises can fail with a retryable kind, and a tenth of the
/// surviving writes are torn.
fn transient_plan() -> FaultPlan {
    let transient = |p: f64| OpFaults {
        error_prob: p,
        fail_first: 0,
        kinds: vec![
            FaultKind::WouldBlock,
            FaultKind::Interrupted,
            FaultKind::TimedOut,
        ],
    };
    FaultPlan {
        read: transient(0.15),
        write: transient(0.15),
        rename: transient(0.1),
        torn_write_prob: 0.1,
        ..FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance oracle: over arbitrary fault seeds and at worker
    /// counts 1 and 8, a store-backed campaign under the transient plan
    /// produces report bytes identical to the fault-free run — cold and
    /// on a warm rerun through the same faulty backend.
    #[test]
    fn transient_faults_never_change_report_bytes(fault_seed in 0u64..100_000) {
        let spec = spec();
        let clean = baseline_json(&spec);
        for workers in [1usize, 8] {
            let dir = fresh_dir("transient");
            let store = faulty_store(&dir, transient_plan(), fault_seed);
            let opts = StoreOptions {
                workers,
                store: Some(&store),
                shard: None,
            };

            let cold = run_campaign_store(&spec, &opts).expect("spec is valid");
            prop_assert_eq!(
                &cold.report.to_json_pretty().unwrap(),
                &clean,
                "cold faulted run (seed {}, workers {}) diverged",
                fault_seed,
                workers
            );

            // Warm rerun through the same faulty backend: injected read
            // errors and torn blobs surface as Corrupt, re-execute, and
            // still reproduce the clean bytes.
            let warm = run_campaign_store(&spec, &opts).expect("spec is valid");
            prop_assert_eq!(
                &warm.report.to_json_pretty().unwrap(),
                &clean,
                "warm faulted rerun (seed {}, workers {}) diverged",
                fault_seed,
                workers
            );
            prop_assert!(warm.failures.is_empty(), "I/O faults must never quarantine");
            let _ = fs::remove_dir_all(dir);
        }
    }
}

/// Crash-resume: a plan that kills the first N puts persistently models
/// a campaign interrupted partway. The run degrades (computes through,
/// persists the rest), and a clean rerun executes exactly the missing
/// scenarios to byte-identical bytes.
#[test]
fn interrupted_campaign_resumes_with_only_missing_scenarios() {
    let spec = spec();
    let clean = baseline_json(&spec);
    let dir = fresh_dir("resume");
    let plan = FaultPlan {
        write: OpFaults {
            fail_first: 2,
            kinds: vec![FaultKind::StorageFull],
            ..OpFaults::default()
        },
        ..FaultPlan::default()
    };
    let store = faulty_store(&dir, plan, 0);
    let opts = StoreOptions {
        workers: 2,
        store: Some(&store),
        shard: None,
    };

    // Run 1: the outage eats two puts. The campaign still completes
    // with full, correct bytes — it just could not persist everything.
    let interrupted = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(interrupted.report.to_json_pretty().unwrap(), clean);
    assert_eq!(interrupted.stats.executed, 4);
    assert_eq!(interrupted.stats.store_errors, 2, "two puts were killed");
    assert!(
        interrupted.stats.degraded,
        "compute-through is degraded mode"
    );
    assert_eq!(
        interrupted.stats.store_retries, 0,
        "StorageFull is persistent: no retry burned"
    );
    assert_eq!(store.len().unwrap(), 2, "only two blobs made it to disk");

    // Run 2, clean backend on the same directory: the resume. Exactly
    // the two missing scenarios execute; bytes are identical.
    let resumed_store = Store::open(&dir).expect("store reopens");
    let opts = StoreOptions {
        workers: 2,
        store: Some(&resumed_store),
        shard: None,
    };
    let resumed = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(resumed.report.to_json_pretty().unwrap(), clean);
    assert_eq!(
        resumed.stats.hits, 2,
        "persisted scenarios serve from cache"
    );
    assert_eq!(
        resumed.stats.executed, 2,
        "only the missing scenarios re-run"
    );
    assert!(!resumed.stats.degraded);

    // Run 3: fully healed.
    let healed = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(healed.stats.hits, 4);
    assert_eq!(healed.stats.executed, 0);
    assert_eq!(healed.report.to_json_pretty().unwrap(), clean);

    let _ = fs::remove_dir_all(dir);
}

/// Torn writes report success but persist garbage: the checksum layer
/// must catch every one on the next run and re-execute, never serve a
/// truncated payload.
#[test]
fn torn_writes_surface_as_corrupt_and_reexecute() {
    let spec = spec();
    let clean = baseline_json(&spec);
    let dir = fresh_dir("torn");
    let plan = FaultPlan {
        torn_write_prob: 1.0,
        ..FaultPlan::default()
    };
    let store = faulty_store(&dir, plan, 7);
    let opts = StoreOptions {
        workers: 2,
        store: Some(&store),
        shard: None,
    };

    // Every put "succeeds" torn; the report is computed, not read back.
    let cold = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(cold.report.to_json_pretty().unwrap(), clean);
    assert_eq!(cold.stats.store_errors, 0, "torn writes look successful");

    // A clean rerun finds four unreadable blobs, re-runs them all and
    // repairs the store.
    let clean_store = Store::open(&dir).expect("store reopens");
    let opts = StoreOptions {
        workers: 2,
        store: Some(&clean_store),
        shard: None,
    };
    let repaired = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(repaired.stats.corrupt, 4, "every torn blob detected");
    assert_eq!(repaired.stats.executed, 4);
    assert_eq!(repaired.stats.hits, 0);
    assert_eq!(repaired.report.to_json_pretty().unwrap(), clean);

    let healed = run_campaign_store(&spec, &opts).expect("spec is valid");
    assert_eq!(healed.stats.hits, 4);
    assert_eq!(healed.stats.executed, 0);

    let _ = fs::remove_dir_all(dir);
}

/// A panicking scenario in a store-backed campaign is quarantined by
/// index: siblings complete and persist, the report simply misses the
/// poisoned grid point, and nothing aborts.
#[test]
fn panicking_scenario_is_quarantined_in_store_runs() {
    let mut spec = spec();
    spec.script.push(ScriptStep::InjectPanic {
        fail_attempts: usize::MAX,
        only_seed: Some(4),
    });
    let poisoned: Vec<usize> = spec
        .scenarios()
        .iter()
        .filter(|k| k.seed == 4)
        .map(|k| k.index)
        .collect();
    assert_eq!(poisoned.len(), 2, "seed 4 owns two grid points");

    let dir = fresh_dir("quarantine");
    let store = Store::open(&dir).expect("store opens");
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };
    let run = run_campaign_store(&spec, &opts).expect("spec is valid");

    assert_eq!(run.stats.failed, 2);
    let failed: Vec<usize> = run.failures.iter().map(|f| f.index).collect();
    assert_eq!(failed, poisoned, "failures name the poisoned indices");
    for f in &run.failures {
        assert!(
            f.panic_message.contains(&format!("scenario #{}", f.index)),
            "panic identity names the scenario: {}",
            f.panic_message
        );
        assert_eq!(f.attempts, 2, "default budget is one retry");
    }
    let reported: Vec<usize> = run.report.scenarios.iter().map(|s| s.index).collect();
    assert_eq!(
        reported,
        spec.scenarios()
            .iter()
            .filter(|k| k.seed != 4)
            .map(|k| k.index)
            .collect::<Vec<_>>(),
        "report carries exactly the surviving scenarios"
    );
    assert_eq!(
        store.len().unwrap(),
        2,
        "survivors persist; quarantined scenarios write nothing"
    );

    // A benign script step (fail_attempts: 0) heals the campaign — and
    // because the script is part of the fingerprint, nothing stale is
    // served.
    let mut healed_spec = spec.clone();
    healed_spec.script.pop();
    healed_spec.script.push(ScriptStep::InjectPanic {
        fail_attempts: 0,
        only_seed: Some(4),
    });
    let healed = run_campaign_store(&healed_spec, &opts).expect("spec is valid");
    assert!(healed.failures.is_empty());
    assert_eq!(healed.report.scenarios.len(), 4);

    let _ = fs::remove_dir_all(dir);
}
