//! Property-based integration tests: randomly generated systems are
//! mapped, scheduled and exhaustively validated. These are the workspace's
//! strongest correctness net — `ScheduleTable::validate` re-derives every
//! invariant (completeness, durations, windows, per-PE overlap, precedence
//! through shared memory and the TDMA bus, frame packing) from scratch.

use incdes::mapping::{initial_mapping, MappingContext, Strategy};
use incdes::prelude::*;
use incdes::synth::{generate_application, generate_architecture, SynthConfig};
use incdes_core::System;
use incdes_mapping::run_strategy;
use incdes_model::time::hyperperiod;
use incdes_sched::Mapping;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small, fast configuration with enough variety to shake out bugs.
fn small_cfg(pe_count: u32, slot: u64) -> SynthConfig {
    let cycle = pe_count as u64 * slot;
    SynthConfig {
        pe_count,
        slot_length: Time::new(slot),
        rounds: 1,
        bytes_per_tick: 8,
        periods: vec![Time::new(cycle * 4), Time::new(cycle * 8)],
        graph_size: (3, 8),
        depth: (2, 3),
        wcet: (2, 8),
        pe_allow_prob: 0.6,
        wcet_spread: 0.3,
        msg_bytes: (2, 8),
        edge_extra_prob: 0.15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IM on a random application always yields a schedule that passes
    /// exhaustive validation.
    #[test]
    fn im_schedules_validate(
        seed in 0u64..5000,
        pe_count in 2u32..5,
        size in 3usize..25,
    ) {
        let cfg = small_cfg(pe_count, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
        let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights);
        let Ok(solution) = initial_mapping(&ctx) else {
            // Overloaded random instance: acceptable, nothing to validate.
            return Ok(());
        };
        let eval = ctx.evaluate(&solution).unwrap();
        eval.table
            .validate(&arch, &[(AppId(0), &app, &solution.mapping)])
            .unwrap();
        prop_assert!(eval.table.is_deadline_clean());
    }

    /// Incremental commits preserve all previously committed schedules
    /// bit-for-bit and the merged table always validates.
    #[test]
    fn incremental_commits_validate(
        seed in 0u64..5000,
        sizes in proptest::collection::vec(3usize..15, 1..4),
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, &size) in sizes.iter().enumerate() {
            let app = generate_application(&cfg, &format!("v{i}"), size, &mut rng).unwrap();
            if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
                break; // ran out of capacity — fine for a random instance
            }
            let pairs: Vec<(AppId, &Application, &Mapping)> = system
                .committed()
                .iter()
                .map(|c| (c.id, &c.app, &c.solution.mapping))
                .collect();
            system.table().validate(system.arch(), &pairs).unwrap();
        }
    }

    /// The slack profile partitions every PE's horizon exactly.
    #[test]
    fn slack_partitions_horizon(
        seed in 0u64..5000,
        size in 3usize..20,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
            return Ok(());
        }
        let slack = system.slack();
        for pe in system.arch().pe_ids() {
            let busy = system.table().busy_time_on(pe);
            prop_assert_eq!(busy + slack.total_slack_of(pe), system.horizon());
        }
    }

    /// MH never returns a solution worse than its (feasible) start, on any
    /// random instance.
    #[test]
    fn mh_monotone_improvement(
        seed in 0u64..2000,
        size in 4usize..16,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        let mut future = incdes::synth::future_profile_for(&cfg, 10);
        future.t_need = Time::new(future.t_need.ticks() * 6);
        let weights = Weights::default();
        let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
        let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights);
        let Ok(ah) = run_strategy(&ctx, &Strategy::AdHoc) else { return Ok(()); };
        let mh = run_strategy(&ctx, &Strategy::mh()).unwrap();
        prop_assert!(mh.evaluation.cost.total <= ah.evaluation.cost.total + 1e-9);
        mh.evaluation
            .table
            .validate(&arch, &[(AppId(0), &app, &mh.solution.mapping)])
            .unwrap();
    }
}
