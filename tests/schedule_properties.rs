//! Property-based integration tests: randomly generated systems are
//! mapped, scheduled and exhaustively validated. These are the workspace's
//! strongest correctness net — `ScheduleTable::validate` re-derives every
//! invariant (completeness, durations, windows, per-PE overlap, precedence
//! through shared memory and the TDMA bus, frame packing) from scratch.

use incdes::mapping::{initial_mapping, MappingContext, Strategy};
use incdes::prelude::*;
use incdes::synth::{generate_application, generate_architecture, SynthConfig};
use incdes_core::System;
use incdes_mapping::run_strategy;
use incdes_model::time::hyperperiod;
use incdes_sched::Mapping;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small, fast configuration with enough variety to shake out bugs.
fn small_cfg(pe_count: u32, slot: u64) -> SynthConfig {
    let cycle = pe_count as u64 * slot;
    SynthConfig {
        pe_count,
        slot_length: Time::new(slot),
        rounds: 1,
        bytes_per_tick: 8,
        periods: vec![Time::new(cycle * 4), Time::new(cycle * 8)],
        graph_size: (3, 8),
        depth: (2, 3),
        wcet: (2, 8),
        pe_allow_prob: 0.6,
        wcet_spread: 0.3,
        msg_bytes: (2, 8),
        edge_extra_prob: 0.15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IM on a random application always yields a schedule that passes
    /// exhaustive validation.
    #[test]
    fn im_schedules_validate(
        seed in 0u64..5000,
        pe_count in 2u32..5,
        size in 3usize..25,
    ) {
        let cfg = small_cfg(pe_count, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
        let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights);
        let Ok(solution) = initial_mapping(&ctx) else {
            // Overloaded random instance: acceptable, nothing to validate.
            return Ok(());
        };
        let eval = ctx.evaluate(&solution).unwrap();
        eval.table
            .validate(&arch, &[(AppId(0), &app, &solution.mapping)])
            .unwrap();
        prop_assert!(eval.table.is_deadline_clean());
    }

    /// Incremental commits preserve all previously committed schedules
    /// bit-for-bit and the merged table always validates.
    #[test]
    fn incremental_commits_validate(
        seed in 0u64..5000,
        sizes in proptest::collection::vec(3usize..15, 1..4),
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, &size) in sizes.iter().enumerate() {
            let app = generate_application(&cfg, &format!("v{i}"), size, &mut rng).unwrap();
            if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
                break; // ran out of capacity — fine for a random instance
            }
            let pairs: Vec<(AppId, &Application, &Mapping)> = system
                .committed()
                .iter()
                .map(|c| (c.id, &c.app, &c.solution.mapping))
                .collect();
            system.table().validate(system.arch(), &pairs).unwrap();
        }
    }

    /// The slack profile partitions every PE's horizon exactly.
    #[test]
    fn slack_partitions_horizon(
        seed in 0u64..5000,
        size in 3usize..20,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
            return Ok(());
        }
        let slack = system.slack();
        for pe in system.arch().pe_ids() {
            let busy = system.table().busy_time_on(pe);
            prop_assert_eq!(busy + slack.total_slack_of(pe), system.horizon());
        }
    }

    /// No two jobs overlap on one PE — re-derived pairwise from the raw
    /// table, independently of `ScheduleTable::validate`. This is the
    /// first invariant the scenario-campaign suite asserts.
    #[test]
    fn no_two_jobs_overlap_on_one_pe(
        seed in 0u64..5000,
        sizes in proptest::collection::vec(3usize..12, 1..4),
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, &size) in sizes.iter().enumerate() {
            let app = generate_application(&cfg, &format!("v{i}"), size, &mut rng).unwrap();
            if system.add_application(app, &future, &weights, &Strategy::mh()).is_err() {
                break;
            }
        }
        for pe in system.arch().pe_ids() {
            let jobs: Vec<_> = system.table().jobs_on(pe).collect();
            for pair in jobs.windows(2) {
                prop_assert!(
                    pair[0].end <= pair[1].start,
                    "jobs {} and {} overlap on {pe}",
                    pair[0].job,
                    pair[1].job
                );
            }
        }
    }

    /// Every precedence edge is respected: a same-PE consumer starts at
    /// or after its producer ends; a cross-PE consumer starts at or
    /// after its message's bus arrival, and that message leaves at or
    /// after the producer ends.
    #[test]
    fn precedence_edges_are_respected(
        seed in 0u64..5000,
        size in 4usize..20,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
            return Ok(());
        }
        let table = system.table();
        let committed = &system.committed()[0];
        for (gi, g) in committed.app.graphs.iter().enumerate() {
            let instances = (table.horizon().ticks() / g.period.ticks()) as u32;
            for k in 0..instances {
                for e in g.dag().edge_ids() {
                    let (s, t) = g.dag().endpoints(e);
                    let pred = table
                        .job(incdes_sched::JobId::new(AppId(0), gi, k, s))
                        .expect("producer job scheduled");
                    let succ = table
                        .job(incdes_sched::JobId::new(AppId(0), gi, k, t))
                        .expect("consumer job scheduled");
                    if pred.pe == succ.pe {
                        prop_assert!(succ.start >= pred.end);
                    } else {
                        let m = table
                            .message(AppId(0), incdes_sched::MsgRef::new(gi, e), k)
                            .expect("cross-PE edge has a bus message");
                        prop_assert!(m.reservation.transmit_start >= pred.end);
                        prop_assert!(succ.start >= m.reservation.arrival);
                    }
                }
            }
        }
    }

    /// Every scheduled message fits its TDMA slot in `tdma::timeline`:
    /// the slot occurrence exists, is owned by the sender's PE, and the
    /// transmission window lies inside it.
    #[test]
    fn every_message_fits_its_tdma_slot(
        seed in 0u64..5000,
        sizes in proptest::collection::vec(4usize..12, 1..3),
    ) {
        let cfg = small_cfg(4, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = Weights::default();
        let mut system = System::new(arch);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, &size) in sizes.iter().enumerate() {
            let app = generate_application(&cfg, &format!("v{i}"), size, &mut rng).unwrap();
            if system.add_application(app, &future, &weights, &Strategy::AdHoc).is_err() {
                break;
            }
        }
        let table = system.table();
        let bus = incdes::tdma::BusTimeline::new(system.arch().bus(), table.horizon())
            .expect("table horizon is a multiple of the bus cycle");
        for m in table.messages() {
            let r = m.reservation;
            let occ = bus
                .occurrence(r.occurrence)
                .expect("reservation rides an occurrence inside the horizon");
            prop_assert_eq!(occ.owner, r.owner, "slot owned by the sender");
            prop_assert!(r.transmit_start >= occ.start, "transmission starts in slot");
            prop_assert!(r.arrival <= occ.end(), "transmission ends in slot");
            prop_assert!(r.duration() > incdes::model::Time::ZERO);
        }
    }

    /// MH never returns a solution worse than its (feasible) start, on any
    /// random instance.
    #[test]
    fn mh_monotone_improvement(
        seed in 0u64..2000,
        size in 4usize..16,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        let mut future = incdes::synth::future_profile_for(&cfg, 10);
        future.t_need = Time::new(future.t_need.ticks() * 6);
        let weights = Weights::default();
        let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
        let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights);
        let Ok(ah) = run_strategy(&ctx, &Strategy::AdHoc) else { return Ok(()); };
        let mh = run_strategy(&ctx, &Strategy::mh()).unwrap();
        prop_assert!(mh.evaluation.cost.total <= ah.evaluation.cost.total + 1e-9);
        mh.evaluation
            .table
            .validate(&arch, &[(AppId(0), &app, &mh.solution.mapping)])
            .unwrap();
    }
}
