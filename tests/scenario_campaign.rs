//! Scenario-campaign regression suite: the determinism and invariant
//! guarantees of `crates/explore`, enforced on the small demo campaign
//! (MH and SA strategies, a future-application probe, one decommission).
//!
//! CI runs this test and uploads `target/scenario_campaign_report.json`
//! as the campaign artifact.

use incdes::explore::{run_campaign, CampaignReport, CampaignSpec, ScriptStep};

/// The same spec yields byte-identical JSON reports across runs and
/// across worker counts, and the report round-trips through serde.
#[test]
fn campaign_report_is_byte_identical_across_runs_and_workers() {
    let spec = CampaignSpec::small_demo();
    let first = run_campaign(&spec, 1)
        .expect("demo spec is valid")
        .report()
        .to_json_pretty()
        .expect("report serializes");
    let second = run_campaign(&spec, 1)
        .expect("demo spec is valid")
        .report()
        .to_json_pretty()
        .expect("report serializes");
    assert_eq!(
        first, second,
        "rerun must reproduce the report byte-for-byte"
    );

    for workers in [2, 4, 8] {
        let parallel = run_campaign(&spec, workers)
            .expect("demo spec is valid")
            .report()
            .to_json_pretty()
            .expect("report serializes");
        assert_eq!(
            first, parallel,
            "worker count {workers} must not affect the report"
        );
    }

    let parsed = CampaignReport::from_json(&first).expect("report parses back");
    assert_eq!(parsed, run_campaign(&spec, 1).unwrap().report());

    // Persist the canonical report so CI can upload it as an artifact.
    std::fs::create_dir_all("target").expect("target dir is writable");
    std::fs::write("target/scenario_campaign_report.json", &first)
        .expect("report file is writable");
}

/// The demo campaign covers both MH and SA, probes a future
/// application, decommissions an app — and every scenario's schedule
/// satisfies every scheduling invariant after every mutating step.
#[test]
fn campaign_scenarios_are_feasible_and_invariant_clean() {
    let spec = CampaignSpec::small_demo();
    assert!(
        spec.check_invariants,
        "demo campaign re-validates schedules"
    );
    assert!(
        spec.script
            .iter()
            .any(|s| matches!(s, ScriptStep::Decommission { .. })),
        "demo campaign exercises decommission"
    );

    let report = run_campaign(&spec, 2).expect("demo spec is valid").report();
    assert_eq!(report.scenarios.len(), 8);

    let strategies: std::collections::BTreeSet<&str> = report
        .scenarios
        .iter()
        .map(|s| s.strategy.as_str())
        .collect();
    assert!(strategies.contains("MH") && strategies.contains("SA"));

    assert_eq!(report.totals.invariant_violations, 0);
    assert_eq!(report.totals.feasible_steps, report.totals.steps);
    assert!(report.totals.evaluations > 0);

    for scenario in &report.scenarios {
        assert!(
            scenario.invariant_violations.is_empty(),
            "scenario {}: {:?}",
            scenario.index,
            scenario.invariant_violations
        );
        for step in &scenario.steps {
            assert!(
                step.feasible && step.error.is_none(),
                "scenario {} step {} ({}) failed: {:?}",
                scenario.index,
                step.step,
                step.action,
                step.error
            );
        }
        // Four commits, one of which was decommissioned afterwards.
        assert_eq!(scenario.schedule.committed_apps, 4);
        assert_eq!(scenario.schedule.active_apps, 3);
        assert!(scenario.schedule.jobs > 0);
        // The add and probe steps actually exercised the strategies.
        let adds: Vec<_> = scenario
            .steps
            .iter()
            .filter(|s| s.action == "add")
            .collect();
        assert!(adds.iter().all(|s| s.cost.is_some()));
        assert!(scenario.steps.iter().any(|s| s.action == "probe"));
    }
}

/// The size axis is visible in the final schedules: within one strategy
/// and seed, the larger current application leaves more jobs committed.
#[test]
fn size_axis_scales_the_schedule() {
    let spec = CampaignSpec::small_demo();
    let report = run_campaign(&spec, 4).expect("demo spec is valid").report();
    for strategy in ["MH", "SA"] {
        for seed in [1u64, 2] {
            let of_size = |size: usize| {
                report
                    .scenarios
                    .iter()
                    .find(|s| s.strategy == strategy && s.seed == seed && s.size == size)
                    .unwrap_or_else(|| panic!("missing scenario {strategy}/{seed}/{size}"))
            };
            assert!(
                of_size(10).schedule.jobs > of_size(6).schedule.jobs,
                "{strategy}/seed {seed}: size 10 must schedule more jobs than size 6"
            );
        }
    }
}
