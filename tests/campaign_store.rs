//! Persistent-campaign-store regression suite: the acceptance
//! guarantees of `crates/store` + `incdes_explore::cache` on the small
//! demo campaign.
//!
//! * A warm (fully cached) rerun executes **0** scenarios and produces
//!   a `CampaignReport` byte-identical to the cold run's.
//! * Running shards `1/4 … 4/4` and merging yields a report
//!   byte-identical to the unsharded run, at worker counts 1 and 8 and
//!   in any merge order.
//! * A truncated or hand-edited blob is a cache miss (re-run,
//!   overwritten), never a panic.

use incdes::explore::{
    merge_reports, run_campaign, run_campaign_store, scenario_store_key, CampaignSpec, Shard,
    StoreOptions,
};
use incdes::store::{Lookup, Store};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh store under the target directory (kept out of temp so CI
/// sandboxes with odd /tmp permissions still work).
fn fresh_store(label: &str) -> (PathBuf, Store) {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = PathBuf::from("target").join(format!(
        "test-campaign-store-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("store opens under target/");
    (dir, store)
}

fn report_json(
    spec: &CampaignSpec,
    opts: &StoreOptions<'_>,
) -> (String, incdes::explore::CacheStats) {
    let run = run_campaign_store(spec, opts).expect("demo spec is valid");
    let json = run.report.to_json_pretty().expect("report serializes");
    (json, run.stats)
}

#[test]
fn warm_rerun_executes_zero_scenarios_byte_identically() {
    let spec = CampaignSpec::small_demo();
    let (dir, store) = fresh_store("warm");
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };

    let (cold, cold_stats) = report_json(&spec, &opts);
    assert_eq!(cold_stats.scenarios, 8);
    assert_eq!(cold_stats.executed, 8);
    assert_eq!(cold_stats.hits, 0);
    assert_eq!(store.len().unwrap(), 8, "every scenario persisted a blob");

    let (warm, warm_stats) = report_json(&spec, &opts);
    assert_eq!(warm_stats.executed, 0, "warm rerun executes nothing");
    assert_eq!(warm_stats.hits, 8);
    assert_eq!(cold, warm, "warm report must be byte-identical");

    // And identical to the plain (storeless) runner's report.
    let plain = run_campaign(&spec, 4)
        .unwrap()
        .report()
        .to_json_pretty()
        .unwrap();
    assert_eq!(cold, plain, "the store must never change report bytes");

    let _ = fs::remove_dir_all(dir);
}

#[test]
fn shard_merge_is_byte_identical_across_worker_counts() {
    let spec = CampaignSpec::small_demo();
    let unsharded = run_campaign(&spec, 1).unwrap().report();
    let unsharded_json = unsharded.to_json_pretty().unwrap();

    for workers in [1usize, 8] {
        // No store: sharding must be correct on its own.
        let mut parts = Vec::new();
        let mut selected_total = 0;
        for index in 1..=4 {
            let opts = StoreOptions {
                workers,
                store: None,
                shard: Some(Shard::new(index, 4).unwrap()),
            };
            let run = run_campaign_store(&spec, &opts).expect("demo spec is valid");
            selected_total += run.stats.selected;
            parts.push(run.report);
        }
        assert_eq!(selected_total, 8, "shards partition the grid exactly");

        let merged = merge_reports(parts.clone()).expect("all shards merge");
        assert_eq!(
            merged.to_json_pretty().unwrap(),
            unsharded_json,
            "workers={workers}: shard(1..4)+merge must equal the unsharded report"
        );

        // Order independence: reversed merge input, same bytes.
        parts.reverse();
        let merged_rev = merge_reports(parts).expect("order must not matter");
        assert_eq!(merged_rev.to_json_pretty().unwrap(), unsharded_json);
    }
}

#[test]
fn sharded_runs_share_one_store_with_the_unsharded_run() {
    let spec = CampaignSpec::small_demo();
    let (dir, store) = fresh_store("shared");

    // Shards 1..4 run cold against the shared store, as separate CI
    // processes would.
    let mut parts = Vec::new();
    for index in 1..=4 {
        let opts = StoreOptions {
            workers: 2,
            store: Some(&store),
            shard: Some(Shard::new(index, 4).unwrap()),
        };
        let run = run_campaign_store(&spec, &opts).unwrap();
        assert_eq!(run.stats.hits, 0, "shard {index} runs cold");
        assert_eq!(run.stats.executed, run.stats.selected);
        parts.push(run.report);
    }

    // The unsharded warm run is then fully served by the shards' blobs.
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };
    let (warm_json, stats) = report_json(&spec, &opts);
    assert_eq!(stats.executed, 0, "shards filled the store completely");
    assert_eq!(stats.hits, 8);
    assert_eq!(
        warm_json,
        merge_reports(parts).unwrap().to_json_pretty().unwrap(),
        "merge and warm unsharded run agree byte-for-byte"
    );

    let _ = fs::remove_dir_all(dir);
}

#[test]
fn corrupt_blobs_are_misses_not_panics() {
    let spec = CampaignSpec::small_demo();
    let (dir, store) = fresh_store("corrupt");
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };
    let (cold, _) = report_json(&spec, &opts);

    // Damage two blobs: one truncated mid-payload, one hand-edited to
    // valid-looking-but-unchecksummed content.
    let keys: Vec<_> = spec
        .scenarios()
        .iter()
        .map(|k| scenario_store_key(&spec, k).unwrap())
        .collect();
    let blob_path = |hex: &str| {
        dir.join(format!("v{}", incdes::store::FORMAT_EPOCH))
            .join(&hex[..2])
            .join(format!("{hex}.blob"))
    };
    let truncated = blob_path(&keys[0].hex());
    let body = fs::read_to_string(&truncated).unwrap();
    fs::write(&truncated, &body[..body.len() / 3]).unwrap();
    let edited = blob_path(&keys[5].hex());
    let body = fs::read_to_string(&edited).unwrap();
    assert!(
        body.contains("\"feasible\":true"),
        "blob payload is compact JSON"
    );
    fs::write(
        &edited,
        body.replace("\"feasible\":true", "\"feasible\":false"),
    )
    .unwrap();
    assert_eq!(store.lookup(&keys[0]), Lookup::Corrupt);

    // The warm run treats both as misses, re-runs exactly those two and
    // still reproduces the cold report byte-for-byte.
    let (repaired, stats) = report_json(&spec, &opts);
    assert_eq!(stats.corrupt, 2, "both damaged blobs detected");
    assert_eq!(stats.executed, 2, "only the damaged scenarios re-ran");
    assert_eq!(stats.hits, 6);
    assert_eq!(repaired, cold);

    // And the store is repaired: a further rerun is fully cached.
    let (_, healed) = report_json(&spec, &opts);
    assert_eq!(healed.executed, 0);
    assert_eq!(healed.corrupt, 0);

    let _ = fs::remove_dir_all(dir);
}

#[test]
fn spec_edits_rerun_only_the_delta() {
    let mut spec = CampaignSpec::small_demo();
    let (dir, store) = fresh_store("delta");
    let opts = StoreOptions {
        workers: 4,
        store: Some(&store),
        shard: None,
    };
    let (_, cold) = report_json(&spec, &opts);
    assert_eq!(cold.executed, 8);

    // Adding a seed re-runs only the new seed's scenarios (4 of 12):
    // the paper's incremental argument applied to the evaluation sweep.
    spec.seeds.push(7);
    let (_, grown) = report_json(&spec, &opts);
    assert_eq!(grown.scenarios, 12);
    assert_eq!(grown.hits, 8, "old grid points stay cached");
    assert_eq!(grown.executed, 4, "only the new seed executes");

    // Dropping a size reshapes the grid (indices shift) but every
    // surviving grid point is still served from cache.
    spec.sizes.remove(0);
    let (_, shrunk) = report_json(&spec, &opts);
    assert_eq!(shrunk.scenarios, 6);
    assert_eq!(shrunk.executed, 0, "index shifts must not evict blobs");
    assert_eq!(shrunk.hits, 6);

    let _ = fs::remove_dir_all(dir);
}
