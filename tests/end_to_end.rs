//! End-to-end integration: synthetic system → incremental commits →
//! exhaustive schedule validation across every crate of the workspace.

use incdes::core::System;
use incdes::mapping::{SaConfig, Strategy};
use incdes::prelude::*;
use incdes::synth::paper::dac2001_small;
use incdes::synth::{future_profile_for, generate_application, generate_architecture};
use incdes_sched::Mapping;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn validate_system(system: &System) {
    let pairs: Vec<(AppId, &Application, &Mapping)> = system
        .committed()
        .iter()
        .map(|c| (c.id, &c.app, &c.solution.mapping))
        .collect();
    system
        .table()
        .validate(system.arch(), &pairs)
        .expect("committed schedule must satisfy every invariant");
}

#[test]
fn commit_three_apps_with_each_strategy_and_validate() {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg).unwrap();
    let future = future_profile_for(&preset.cfg, preset.future_processes);
    let weights = Weights::default();

    for strategy in [
        Strategy::AdHoc,
        Strategy::mh(),
        Strategy::SimulatedAnnealing(SaConfig::quick()),
    ] {
        let mut system = System::new(arch.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for i in 0..3 {
            let app = generate_application(&preset.cfg, &format!("v{i}"), 15, &mut rng).unwrap();
            system
                .add_application(app, &future, &weights, &strategy)
                .unwrap_or_else(|e| panic!("{} commit {i} failed: {e}", strategy.name()));
            validate_system(&system);
            assert!(system.table().is_deadline_clean());
        }
        assert_eq!(system.app_count(), 3);
    }
}

#[test]
fn existing_applications_never_move_across_many_commits() {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg).unwrap();
    let future = future_profile_for(&preset.cfg, preset.future_processes);
    let weights = Weights::default();

    let mut system = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut snapshots: Vec<Vec<(incdes_sched::JobId, PeId, Time)>> = Vec::new();
    for i in 0..4 {
        let app = generate_application(&preset.cfg, &format!("v{i}"), 12, &mut rng).unwrap();
        let horizon_before = system.horizon();
        system
            .add_application(app, &future, &weights, &Strategy::mh())
            .unwrap();
        // Every previous snapshot must still be present, unmoved (modulo
        // replication: the first-window copy keeps its JobId).
        for snap in &snapshots {
            for &(job, pe, start) in snap {
                let now = system.table().job(job).expect("job survived");
                assert_eq!(now.pe, pe, "job {job} changed PE");
                assert_eq!(now.start, start, "job {job} moved");
            }
        }
        let _ = horizon_before;
        // Snapshot the new app's first-window jobs.
        let id = AppId(i as u32);
        snapshots.push(
            system
                .table()
                .jobs()
                .iter()
                .filter(|j| j.job.app == id && j.release < Time::new(1))
                .map(|j| (j.job, j.pe, j.start))
                .collect(),
        );
    }
}

#[test]
fn slack_profile_accounts_for_every_tick() {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg).unwrap();
    let future = future_profile_for(&preset.cfg, preset.future_processes);
    let weights = Weights::default();
    let mut system = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    for i in 0..2 {
        let app = generate_application(&preset.cfg, &format!("v{i}"), 20, &mut rng).unwrap();
        system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .unwrap();
    }
    let slack = system.slack();
    let h = system.horizon();
    for pe in system.arch().pe_ids() {
        let busy = system.table().busy_time_on(pe);
        assert_eq!(
            busy + slack.total_slack_of(pe),
            h,
            "busy + slack must equal the horizon on {pe}"
        );
    }
    // Bus: used + free slot time = total slot capacity.
    let bus = system.table().bus_timeline(system.arch());
    assert_eq!(
        bus.total_used() + slack.total_bus_slack(),
        bus.total_capacity()
    );
}

#[test]
fn strategies_order_by_cost_on_loaded_system() {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg).unwrap();
    let mut future = future_profile_for(&preset.cfg, preset.future_processes);
    future.t_need = Time::new(future.t_need.ticks() * 8);
    let weights = Weights::default();

    // Load the system, then compare strategies on one more app.
    let mut base = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    for i in 0..4 {
        let app = generate_application(&preset.cfg, &format!("e{i}"), 25, &mut rng).unwrap();
        base.add_application(app, &future, &weights, &Strategy::AdHoc)
            .unwrap();
    }
    let current = generate_application(&preset.cfg, "current", 25, &mut rng).unwrap();

    let mut costs = Vec::new();
    for strategy in [
        Strategy::AdHoc,
        Strategy::mh(),
        Strategy::SimulatedAnnealing(SaConfig::quick()),
    ] {
        let mut sys = base.clone();
        let report = sys
            .add_application(current.clone(), &future, &weights, &strategy)
            .unwrap();
        costs.push((strategy.name(), report.cost.total));
    }
    let ah = costs[0].1;
    let mh = costs[1].1;
    let sa = costs[2].1;
    assert!(
        mh <= ah + 1e-9,
        "MH ({mh}) must not be worse than AH ({ah})"
    );
    assert!(
        sa <= ah + 1e-9,
        "SA ({sa}) must not be worse than AH ({ah})"
    );
}

#[test]
fn gantt_rendering_shows_all_apps() {
    let preset = dac2001_small();
    let arch = generate_architecture(&preset.cfg).unwrap();
    let future = future_profile_for(&preset.cfg, preset.future_processes);
    let weights = Weights::default();
    let mut system = System::new(arch);
    let mut rng = ChaCha8Rng::seed_from_u64(45);
    for i in 0..2 {
        let app = generate_application(&preset.cfg, &format!("v{i}"), 10, &mut rng).unwrap();
        system
            .add_application(app, &future, &weights, &Strategy::AdHoc)
            .unwrap();
    }
    let text = system.table().render_text(system.arch(), 80);
    assert!(text.contains('A'), "app 0 visible");
    assert!(text.contains('B'), "app 1 visible");
    assert_eq!(text.lines().count(), system.arch().pe_count() + 1);
}
