//! Byte-identity guarantees of the parallel in-scenario search: the
//! same spec must produce the same bytes — solution, cost bits, every
//! deterministic counter, the full campaign report — at any search
//! thread count. Thread count is a wall-clock knob, never a semantic
//! one; `sa_chains`/`sa_exchange_period` (which *do* change SA's
//! trajectory) are held fixed while threads vary.

use incdes::explore::{run_campaign, CampaignSpec};
use incdes::mapping::{
    run_strategy, MappingContext, MhConfig, RunStats, SaConfig, SearchParallelism, Strategy,
};
use incdes::prelude::*;
use incdes::synth::{generate_application, generate_architecture, SynthConfig};
use incdes_model::time::hyperperiod;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small, fast configuration with enough variety to shake out bugs.
fn small_cfg(pe_count: u32, slot: u64) -> SynthConfig {
    let cycle = pe_count as u64 * slot;
    SynthConfig {
        pe_count,
        slot_length: Time::new(slot),
        rounds: 1,
        bytes_per_tick: 8,
        periods: vec![Time::new(cycle * 4), Time::new(cycle * 8)],
        graph_size: (3, 8),
        depth: (2, 3),
        wcet: (2, 8),
        pe_allow_prob: 0.6,
        wcet_spread: 0.3,
        msg_bytes: (2, 8),
        edge_extra_prob: 0.15,
    }
}

/// The deterministic bytes of one strategy run: the chosen design
/// variables, the bit pattern of the cost, and every counter except
/// wall-clock.
fn run_bytes(out: &incdes::mapping::Outcome) -> (String, u64, [usize; 5]) {
    (
        format!("{:?}", out.solution),
        out.evaluation.cost.total.to_bits(),
        [
            out.stats.evaluations,
            out.stats.iterations,
            out.stats.raw_schedules,
            out.stats.delta_schedules,
            out.stats.spliced_steps,
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// MH (batched widening rounds) and SA (portfolio chains) produce
    /// identical results — solution, cost bits, all counters — at
    /// search thread counts 1, 2 and 8.
    #[test]
    fn search_results_identical_across_thread_counts(
        seed in 0u64..2000,
        size in 4usize..14,
    ) {
        let cfg = small_cfg(3, 10);
        let arch = generate_architecture(&cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let app = generate_application(&cfg, "a", size, &mut rng).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, 10);
        let weights = incdes::metrics::Weights::default();
        let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
        let mh = Strategy::MappingHeuristic(MhConfig {
            max_iterations: 4,
            ..MhConfig::default()
        });
        let sa = Strategy::SimulatedAnnealing(SaConfig {
            max_evaluations: 120,
            ..SaConfig::quick()
        });
        let run = |threads: usize, batch_cutover: usize| {
            let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights)
                .with_parallelism(SearchParallelism::Parallel {
                    threads,
                    batch_cutover,
                    sa_chains: 2,
                    sa_exchange_period: 16,
                });
            let mh_out = run_strategy(&ctx, &mh);
            let sa_out = run_strategy(&ctx, &sa);
            match (mh_out, sa_out) {
                (Ok(m), Ok(s)) => Some((run_bytes(&m), run_bytes(&s))),
                _ => None, // overloaded instance: infeasible at every thread count below
            }
        };
        let baseline = run(1, 0);
        prop_assert_eq!(&baseline, &run(2, 0), "2 threads diverged from 1");
        prop_assert_eq!(&baseline, &run(8, 0), "8 threads diverged from 1");
        // The small-batch cutover multiplexes execution only: forcing
        // every batch inline (max) or none (1) must not change a byte.
        prop_assert_eq!(&baseline, &run(8, usize::MAX), "always-inline cutover diverged");
        prop_assert_eq!(&baseline, &run(8, 1), "never-inline cutover diverged");
    }
}

/// The campaign pipeline end-to-end: identical spec, thread counts
/// {1, 2, 8}, reports compared as bytes.
#[test]
fn campaign_reports_byte_identical_across_search_thread_counts() {
    let with_threads = |threads: usize, batch_cutover: usize| {
        let mut spec = CampaignSpec::small_demo();
        spec.parallelism = SearchParallelism::Parallel {
            threads,
            batch_cutover,
            sa_chains: 2,
            sa_exchange_period: 16,
        };
        run_campaign(&spec, 1)
            .expect("demo spec is valid")
            .report()
            .to_json_pretty()
            .expect("report serializes")
    };
    let baseline = with_threads(1, 0);
    for (threads, batch_cutover) in [(2, 0), (8, 0), (8, 1), (2, usize::MAX)] {
        assert_eq!(
            baseline,
            with_threads(threads, batch_cutover),
            "search threads={threads}/cutover={batch_cutover} changed the campaign report"
        );
    }
}

/// A parallel-mode MH run finds the same solution at the same cost as
/// the sequential mode (only splice diagnostics may differ: batch
/// workers take the splice-free path).
#[test]
fn parallel_mh_matches_sequential_solution() {
    let cfg = small_cfg(3, 10);
    let arch = generate_architecture(&cfg).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let app = generate_application(&cfg, "a", 10, &mut rng).unwrap();
    let future = incdes::synth::future_profile_for(&cfg, 10);
    let weights = incdes::metrics::Weights::default();
    let horizon = hyperperiod(app.graphs.iter().map(|g| g.period)).unwrap();
    let run = |par: SearchParallelism| {
        let ctx = MappingContext::new(&arch, AppId(0), &app, None, horizon, &future, &weights)
            .with_parallelism(par);
        run_strategy(&ctx, &Strategy::mh()).expect("instance is feasible")
    };
    let seq = run(SearchParallelism::Sequential);
    let par = run(SearchParallelism::threads(4));
    assert_eq!(format!("{:?}", seq.solution), format!("{:?}", par.solution));
    assert_eq!(
        seq.evaluation.cost.total.to_bits(),
        par.evaluation.cost.total.to_bits()
    );
    assert_eq!(seq.stats.evaluations, par.stats.evaluations);
    assert_eq!(seq.stats.iterations, par.stats.iterations);
}

/// `RunStats::merge` folds per-worker tallies; order independence is
/// what lets reductions happen in candidate-index order regardless of
/// which worker finished first.
#[test]
fn run_stats_merge_folds_worker_tallies() {
    let stats = |k: usize| RunStats {
        evaluations: k,
        iterations: k + 1,
        elapsed: std::time::Duration::from_millis(k as u64),
        raw_schedules: k / 2,
        delta_schedules: k / 4,
        spliced_steps: 3 * k,
    };
    let parts = [stats(2), stats(9), stats(4), stats(31)];
    let forward = parts.iter().copied().reduce(RunStats::merge).unwrap();
    let backward = parts.iter().rev().copied().reduce(RunStats::merge).unwrap();
    assert_eq!(forward, backward);
    assert_eq!(forward.evaluations, 2 + 9 + 4 + 31);
}
