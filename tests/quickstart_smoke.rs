//! Smoke test covering the facade crate's public API path end-to-end:
//! the exact flow of `examples/quickstart.rs` (architecture → process
//! graph → future profile → `System::add_application` with the mapping
//! heuristic), asserting the system is schedulable and the committed
//! schedule table is non-empty and consistent.

use incdes::prelude::*;

fn quickstart_app() -> Application {
    let mut g = ProcessGraph::new("sense-chain", Time::new(120), Time::new(120));
    let sense = g.add_process(
        Process::new("sense")
            .wcet(PeId(0), Time::new(8))
            .wcet(PeId(1), Time::new(12)),
    );
    let filter = g.add_process(
        Process::new("filter")
            .wcet(PeId(0), Time::new(14))
            .wcet(PeId(1), Time::new(10)),
    );
    let act = g.add_process(Process::new("act").wcet(PeId(1), Time::new(6)));
    g.add_message(sense, filter, Message::new("raw", 6))
        .unwrap();
    g.add_message(filter, act, Message::new("cmd", 2)).unwrap();
    Application::new("v1", vec![g])
}

#[test]
fn quickstart_flow_produces_nonempty_schedule() {
    let arch = Architecture::builder()
        .pe("N1")
        .pe("N2")
        .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
        .build()
        .unwrap();

    let mut system = System::new(arch);
    let report = system
        .add_application(
            quickstart_app(),
            &FutureProfile::slide_example(),
            &Weights::default(),
            &Strategy::mh(),
        )
        .expect("quickstart system must be schedulable");

    // The committed table covers all three processes of the chain.
    assert_eq!(report.horizon, Time::new(120));
    assert_eq!(system.app_count(), 1);
    let table = system.table();
    assert_eq!(table.jobs().len(), 3, "one job per process");
    assert!(table.is_deadline_clean());

    // Both renderings the example prints stay well-formed.
    let text = table.render_text(system.arch(), 60);
    assert!(text.contains("bus"), "render includes the bus row: {text}");
    let rendered_report = incdes::sched::ScheduleReport::new(system.arch(), table).to_string();
    assert!(rendered_report.contains("busy"));

    // Slack accounting covers every PE of the architecture.
    let slack = system.slack();
    for pe in system.arch().pe_ids() {
        assert!(slack.total_slack_of(pe) <= system.horizon());
    }
}

#[test]
fn quickstart_flow_all_strategies_agree_on_feasibility() {
    for strategy in [Strategy::AdHoc, Strategy::mh()] {
        let arch = Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap();
        let mut system = System::new(arch);
        let report = system
            .add_application(
                quickstart_app(),
                &FutureProfile::slide_example(),
                &Weights::default(),
                &strategy,
            )
            .expect("schedulable under every strategy");
        assert!(report.cost.total.is_finite());
    }
}
