//! Facade-level regression suite for the incremental evaluation engine:
//! the `DesignCost` leg of the three-tier pipeline equivalence — naive
//! (`schedule()` from scratch) vs. full engine
//! (`with_full_evaluation()`, the PR 4 reset-and-replace path) vs. the
//! default **delta-scheduling** path — (the table and slack legs live in
//! `crates/sched/tests/engine_equivalence.rs` and
//! `crates/sched/tests/delta_equivalence.rs`), the `evaluation_count` /
//! `raw_schedule_count` / memo semantics the paper tables and the
//! `figures bench-eval` guard rely on, and the SA best-snapshot
//! bookkeeping.

use incdes::mapping::{
    initial_mapping, run_strategy, MappingContext, MhConfig, Move, SaConfig, Solution, Strategy,
};
use incdes::model::prelude::*;
use incdes::model::AppId;
use incdes::sched::MsgRef;
use incdes::synth::{generate_application, generate_architecture, SynthConfig};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn cfg() -> SynthConfig {
    SynthConfig {
        pe_count: 3,
        slot_length: Time::new(8),
        rounds: 1,
        bytes_per_tick: 8,
        periods: vec![Time::new(240), Time::new(480)],
        graph_size: (4, 9),
        depth: (2, 3),
        wcet: (2, 8),
        pe_allow_prob: 0.7,
        wcet_spread: 0.3,
        msg_bytes: (2, 8),
        edge_extra_prob: 0.1,
    }
}

/// Builds a frozen system of `existing` processes plus a current app.
struct Fixture {
    arch: Architecture,
    app: Application,
    frozen: incdes::sched::ScheduleTable,
    horizon: Time,
    future: FutureProfile,
    weights: incdes::metrics::Weights,
}

impl Fixture {
    fn build(seed: u64, existing: usize, current: usize) -> Fixture {
        Fixture::build_with_demand(seed, existing, current, 10)
    }

    /// Like [`Fixture::build`] with an explicit future-application
    /// demand: a large `demand` keeps the objective above zero, so the
    /// search strategies explore instead of stopping on the first
    /// perfect solution.
    fn build_with_demand(seed: u64, existing: usize, current: usize, demand: usize) -> Fixture {
        let cfg = cfg();
        let arch = generate_architecture(&cfg).unwrap();
        let future = incdes::synth::future_profile_for(&cfg, demand);
        let weights = incdes::metrics::Weights::default();
        let mut system = incdes::core::System::new(arch.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut committed = 0usize;
        let mut i = 0usize;
        while committed < existing {
            let n = 20.min(existing - committed).max(1);
            let app = generate_application(&cfg, &format!("e{i}"), n, &mut rng).unwrap();
            system
                .add_application(app, &future, &weights, &Strategy::AdHoc)
                .expect("fixture existing apps fit");
            committed += n;
            i += 1;
        }
        let app = generate_application(&cfg, "current", current, &mut rng).unwrap();
        let mut periods = vec![system.horizon()];
        periods.extend(app.graphs.iter().map(|g| g.period));
        let horizon = incdes::model::time::hyperperiod(periods).unwrap();
        let frozen = system.table().replicate_to(&arch, horizon).unwrap();
        Fixture {
            arch,
            app,
            frozen,
            horizon,
            future,
            weights,
        }
    }

    fn context(&self) -> MappingContext<'_> {
        MappingContext::new(
            &self.arch,
            AppId(9),
            &self.app,
            Some(&self.frozen),
            self.horizon,
            &self.future,
            &self.weights,
        )
    }
}

/// A deterministic random walk of design alternatives.
fn walk(fixture: &Fixture, count: usize, seed: u64) -> Vec<Solution> {
    let scratch = fixture.context();
    let mut current = initial_mapping(&scratch).expect("fixture current app fits");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let procs: Vec<(ProcRef, Vec<PeId>)> = fixture
        .app
        .processes()
        .map(|(r, p)| (r, p.wcets.iter().map(|(pe, _)| pe).collect()))
        .collect();
    let msgs: Vec<MsgRef> = fixture
        .app
        .graphs
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.dag().edge_ids().map(move |e| MsgRef::new(gi, e)))
        .collect();
    let mut out = vec![current.clone()];
    while out.len() < count {
        let mv = match rng.gen_range(0u32..3) {
            0 => {
                let (pr, pes) = &procs[rng.gen_range(0..procs.len())];
                Move::Remap {
                    proc_ref: *pr,
                    to: pes[rng.gen_range(0..pes.len())],
                }
            }
            1 => {
                let (pr, _) = &procs[rng.gen_range(0..procs.len())];
                Move::ProcSlack {
                    proc_ref: *pr,
                    gap: rng.gen_range(0u32..3),
                }
            }
            _ if !msgs.is_empty() => Move::MsgSlack {
                msg: msgs[rng.gen_range(0..msgs.len())],
                slot: rng.gen_range(0u32..3),
            },
            _ => continue,
        };
        current.apply(&mv);
        out.push(current.clone());
    }
    out
}

/// All three pipelines agree on every alternative of a random walk —
/// table, slack and cost — over a non-trivial frozen base. The walk's
/// consecutive solutions differ by one move, so the default context
/// actually exercises the delta path (pinned by the counter).
#[test]
fn engine_and_naive_agree_on_cost() {
    let fixture = Fixture::build(7, 40, 12);
    let naive = fixture.context().with_naive_evaluation();
    let full = fixture.context().with_full_evaluation();
    let delta = fixture.context();
    let mut feasible = 0usize;
    for sol in walk(&fixture, 60, 11) {
        match (
            naive.evaluate(&sol),
            full.evaluate(&sol),
            delta.evaluate(&sol),
        ) {
            (Ok(a), Ok(b), Ok(c)) => {
                assert_eq!(a.table, b.table);
                assert_eq!(a.slack, b.slack);
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.table, c.table);
                assert_eq!(a.slack, c.slack);
                assert_eq!(a.cost, c.cost);
                feasible += 1;
            }
            (Err(a), Err(b), Err(c)) => {
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
            (a, b, c) => panic!(
                "feasibility diverged: naive {:?} full {:?} delta {:?}",
                a.is_ok(),
                b.is_ok(),
                c.is_ok()
            ),
        }
    }
    assert!(feasible > 0, "walk must contain feasible alternatives");
    assert_eq!(
        naive.delta_schedule_count(),
        0,
        "naive path never delta-schedules"
    );
    assert_eq!(
        full.delta_schedule_count(),
        0,
        "full-engine path never delta-schedules"
    );
    assert!(
        delta.delta_schedule_count() > 0,
        "single-move walk must engage the delta path"
    );
    assert!(
        delta.spliced_step_count() > 0,
        "delta runs must splice recorded prefixes"
    );
}

/// `evaluation_count` keeps its historical meaning (every call counts)
/// while the memo keeps `raw_schedule_count` strictly smaller on a
/// stream with revisits.
#[test]
fn memo_counts_requested_vs_raw_schedules() {
    let fixture = Fixture::build(3, 20, 8);
    let ctx = fixture.context();
    let solutions = walk(&fixture, 10, 5);
    // Evaluate the stream twice: the second pass is pure memo hits.
    for sol in solutions.iter().chain(solutions.iter()) {
        let _ = ctx.evaluate(sol);
    }
    assert_eq!(ctx.evaluation_count(), 20);
    assert!(ctx.raw_schedule_count() <= 10);
    assert!(
        ctx.memo_hit_count() >= 10,
        "second pass must be served from the memo (hits: {})",
        ctx.memo_hit_count()
    );
    // Memoized results are equal to fresh ones.
    let fresh = fixture.context();
    for sol in &solutions {
        match (ctx.evaluate(sol), fresh.evaluate(sol)) {
            (Ok(a), Ok(b)) => assert_eq!(a.cost, b.cost),
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("memoized feasibility diverged"),
        }
    }
}

/// Strategy identity across the three pipelines on a grid of sizes ×
/// seeds: AH, MH and SA produce identical solutions, costs,
/// `evaluation_count()`s and tables whether evaluations run naively,
/// on the full engine, or on the default delta path.
#[test]
fn strategies_identical_across_pipelines() {
    // (seed, frozen system size, current-app size, future demand) grid.
    // The first cells converge in a handful of evaluations (cost hits
    // zero immediately — short chains stay on the full path by design);
    // the demanding last cell keeps the objective positive so MH/SA
    // explore long rejection chains, which is where the delta path must
    // engage.
    let grid = [
        (13u64, 30usize, 10usize, 10usize),
        (21, 20, 6, 10),
        (5, 45, 12, 60),
    ];
    let mut delta_engaged = 0usize;
    for (seed, existing, current, demand) in grid {
        let fixture = Fixture::build_with_demand(seed, existing, current, demand);
        for strategy in [
            Strategy::AdHoc,
            Strategy::MappingHeuristic(MhConfig {
                max_iterations: 6,
                ..MhConfig::default()
            }),
            Strategy::SimulatedAnnealing(SaConfig {
                max_evaluations: 120,
                ..SaConfig::quick()
            }),
        ] {
            let tag = format!("{} (seed {seed}, {existing}+{current})", strategy.name());
            let naive_ctx = fixture.context().with_naive_evaluation();
            let full_ctx = fixture.context().with_full_evaluation();
            let delta_ctx = fixture.context();
            let a = run_strategy(&naive_ctx, &strategy).expect("fixture is feasible");
            let b = run_strategy(&full_ctx, &strategy).expect("fixture is feasible");
            let c = run_strategy(&delta_ctx, &strategy).expect("fixture is feasible");
            assert_eq!(a.solution, b.solution, "{tag} full solution");
            assert_eq!(a.solution, c.solution, "{tag} delta solution");
            assert_eq!(a.evaluation.cost, b.evaluation.cost, "{tag} full cost");
            assert_eq!(a.evaluation.cost, c.evaluation.cost, "{tag} delta cost");
            assert_eq!(a.evaluation.table, b.evaluation.table);
            assert_eq!(a.evaluation.table, c.evaluation.table);
            assert_eq!(a.evaluation.slack, c.evaluation.slack, "{tag} delta slack");
            assert_eq!(
                a.stats.evaluations, b.stats.evaluations,
                "{tag} full evaluation count"
            );
            assert_eq!(
                a.stats.evaluations, c.stats.evaluations,
                "{tag} delta evaluation count"
            );
            assert!(
                delta_ctx.raw_schedule_count() <= delta_ctx.evaluation_count(),
                "raw schedules never exceed requested evaluations"
            );
            assert_eq!(full_ctx.delta_schedule_count(), 0);
            delta_engaged += delta_ctx.delta_schedule_count();
        }
    }
    assert!(
        delta_engaged > 0,
        "MH/SA neighborhoods must engage the delta path somewhere on the grid"
    );
}

/// SA's lightweight best tracking: the returned evaluation really is the
/// evaluation of the returned solution, and the final snapshot
/// re-derivation does not inflate `evaluation_count` beyond the initial
/// evaluation plus the proposed trials — on the default delta path and
/// on the full-engine oracle alike, with identical snapshots.
#[test]
fn sa_best_snapshot_is_consistent() {
    let fixture = Fixture::build(17, 20, 9);
    let cfg = SaConfig {
        max_evaluations: 150,
        ..SaConfig::quick()
    };
    let ctx = fixture.context();
    let before = ctx.evaluation_count();
    let out = run_strategy(&ctx, &Strategy::SimulatedAnnealing(cfg)).expect("feasible");
    // initial_mapping evaluations + 1 initial SA evaluation + at most
    // max_evaluations trials; the final snapshot must not count.
    assert!(ctx.evaluation_count() <= before + out.stats.evaluations);
    let check = fixture.context();
    let fresh = check.evaluate(&out.solution).expect("best is feasible");
    assert_eq!(fresh.cost, out.evaluation.cost);
    assert_eq!(fresh.table, out.evaluation.table);

    // The full-engine pipeline lands on the same best snapshot.
    let full_ctx = fixture.context().with_full_evaluation();
    let full_out = run_strategy(&full_ctx, &Strategy::SimulatedAnnealing(cfg)).expect("feasible");
    assert_eq!(full_out.solution, out.solution);
    assert_eq!(full_out.evaluation.cost, out.evaluation.cost);
    assert_eq!(full_out.evaluation.table, out.evaluation.table);
    assert_eq!(full_out.stats.evaluations, out.stats.evaluations);
}

/// The satellite contract of the differential fuzz suite, lifted to the
/// cost level: along random single-move chains, the delta path's C1/C2
/// terms and final cost are bit-equal to the naive oracle at every
/// step (the incremental C1 multiset and the identity-keyed C2 caches
/// sit only on the delta context).
#[test]
fn delta_costs_bit_equal_along_single_move_chains() {
    for (seed, existing, current) in [(2u64, 25usize, 8usize), (11, 35, 11)] {
        let fixture = Fixture::build(seed, existing, current);
        let naive = fixture.context().with_naive_evaluation();
        let delta = fixture.context();
        let mut feasible = 0usize;
        for sol in walk(&fixture, 40, seed ^ 0xC0FFEE) {
            match (naive.evaluate(&sol), delta.evaluate(&sol)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.cost.c1_processes, b.cost.c1_processes, "C1P diverged");
                    assert_eq!(a.cost.c1_messages, b.cost.c1_messages, "C1m diverged");
                    assert_eq!(a.cost.c2_processes, b.cost.c2_processes, "C2P diverged");
                    assert_eq!(a.cost.c2_messages, b.cost.c2_messages, "C2m diverged");
                    assert_eq!(a.cost, b.cost, "final cost diverged");
                    assert_eq!(a.table, b.table);
                    assert_eq!(a.slack, b.slack);
                    feasible += 1;
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!(
                    "feasibility diverged: naive {:?} delta {:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
        assert!(feasible > 0);
        assert!(delta.delta_schedule_count() > 0, "chain must splice");
    }
}
