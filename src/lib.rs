//! `incdes` — incremental mapping and static cyclic scheduling for
//! distributed embedded systems.
//!
//! This is the facade crate of the workspace; it re-exports the full public
//! API. See [`incdes_core`] for the incremental design session,
//! [`incdes_mapping`] for the mapping strategies (IM/AH/MH/SA),
//! [`incdes_metrics`] for the C1/C2 design metrics,
//! [`incdes_synth`] for the synthetic benchmark generator,
//! [`incdes_explore`] for deterministic scenario campaigns over all of
//! the above, and [`incdes_store`] for the content-addressed persistent
//! campaign store that makes those campaigns resumable and shardable.

pub use incdes_core as core;
pub use incdes_explore as explore;
pub use incdes_graph as graph;
pub use incdes_mapping as mapping;
pub use incdes_metrics as metrics;
pub use incdes_model as model;
pub use incdes_obs as obs;
pub use incdes_sched as sched;
pub use incdes_store as store;
pub use incdes_synth as synth;
pub use incdes_tdma as tdma;

pub use incdes_core::prelude;
