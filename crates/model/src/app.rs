//! Software model: processes, messages, process graphs and applications.
//!
//! Following the paper's problem formulation (slide 9):
//!
//! * an application is modeled by one or more **process graphs**;
//! * each process graph has its **own period and deadline**;
//! * each **process** has a set of potential nodes it may be mapped to and
//!   a worst-case execution time (WCET) on each of them;
//! * graph edges are **messages** with a size in bytes; messages between
//!   processes on different nodes travel over the TDMA bus.

use crate::arch::PeId;
use crate::time::Time;
use incdes_graph::{algo, Dag, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an application within a system (dense, commit order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

impl AppId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Reference to a process within one application: graph index + node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcRef {
    /// Index of the process graph inside the application.
    pub graph: usize,
    /// Node inside that graph.
    pub node: NodeId,
}

impl ProcRef {
    /// Creates a process reference.
    pub fn new(graph: usize, node: NodeId) -> Self {
        ProcRef { graph, node }
    }
}

impl fmt::Display for ProcRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}/{}", self.graph, self.node)
    }
}

/// Reference to a process across the whole system: application + graph + node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskRef {
    /// The owning application.
    pub app: AppId,
    /// The process within the application.
    pub proc_ref: ProcRef,
}

impl TaskRef {
    /// Creates a system-wide task reference.
    pub fn new(app: AppId, proc_ref: ProcRef) -> Self {
        TaskRef { app, proc_ref }
    }
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.app, self.proc_ref)
    }
}

/// Per-PE worst-case execution times of a process.
///
/// `None` means the process may not be mapped to that PE (it lacks the
/// needed peripheral, instruction set, ...). The table is sparse: PEs
/// beyond the stored length are implicitly disallowed, so a table built
/// against a small architecture stays valid if PEs are appended.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WcetTable {
    entries: Vec<Option<Time>>,
}

impl WcetTable {
    /// Creates an empty table (process allowed nowhere).
    pub fn new() -> Self {
        WcetTable::default()
    }

    /// Sets the WCET of the process on `pe`.
    pub fn set(&mut self, pe: PeId, wcet: Time) {
        if self.entries.len() <= pe.index() {
            self.entries.resize(pe.index() + 1, None);
        }
        self.entries[pe.index()] = Some(wcet);
    }

    /// WCET on `pe`, or `None` if the process may not run there.
    pub fn get(&self, pe: PeId) -> Option<Time> {
        self.entries.get(pe.index()).copied().flatten()
    }

    /// True if the process may be mapped to `pe`.
    pub fn allows(&self, pe: PeId) -> bool {
        self.get(pe).is_some()
    }

    /// Iterator over `(pe, wcet)` pairs for allowed PEs.
    pub fn iter(&self) -> impl Iterator<Item = (PeId, Time)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|w| (PeId(i as u32), w)))
    }

    /// Number of PEs the process may be mapped to.
    pub fn allowed_count(&self) -> usize {
        self.entries.iter().filter(|w| w.is_some()).count()
    }

    /// Mean WCET over allowed PEs, or `None` if allowed nowhere.
    ///
    /// Used as the PE-independent execution estimate in partial-critical-
    /// path priorities.
    pub fn average(&self) -> Option<Time> {
        let (mut sum, mut n) = (0u64, 0u64);
        for (_, w) in self.iter() {
            sum += w.ticks();
            n += 1;
        }
        sum.checked_div(n).map(Time::new)
    }

    /// Smallest WCET over allowed PEs, or `None` if allowed nowhere.
    pub fn min(&self) -> Option<Time> {
        self.iter().map(|(_, w)| w).min()
    }

    /// Largest WCET over allowed PEs, or `None` if allowed nowhere.
    pub fn max(&self) -> Option<Time> {
        self.iter().map(|(_, w)| w).max()
    }
}

impl FromIterator<(PeId, Time)> for WcetTable {
    fn from_iter<I: IntoIterator<Item = (PeId, Time)>>(iter: I) -> Self {
        let mut t = WcetTable::new();
        for (pe, w) in iter {
            t.set(pe, w);
        }
        t
    }
}

/// A process: the unit of mapping and scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Human-readable name.
    pub name: String,
    /// WCET per allowed PE.
    pub wcets: WcetTable,
}

impl Process {
    /// Creates a process with no allowed PEs yet.
    pub fn new(name: impl Into<String>) -> Self {
        Process {
            name: name.into(),
            wcets: WcetTable::new(),
        }
    }

    /// Adds an allowed PE with its WCET (builder style).
    pub fn wcet(mut self, pe: PeId, wcet: Time) -> Self {
        self.wcets.set(pe, wcet);
        self
    }
}

/// A message: data passed between two processes.
///
/// If sender and receiver are mapped to the same PE the transfer is
/// considered free (shared memory); otherwise the message occupies bus
/// time inside one of the sender's TDMA slots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Human-readable name.
    pub name: String,
    /// Payload size in bytes.
    pub bytes: u32,
}

impl Message {
    /// Creates a message of `bytes` bytes.
    pub fn new(name: impl Into<String>, bytes: u32) -> Self {
        Message {
            name: name.into(),
            bytes,
        }
    }
}

/// A process graph: a DAG of processes and messages released periodically
/// with a relative deadline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessGraph {
    /// Human-readable name.
    pub name: String,
    /// Release period.
    pub period: Time,
    /// Relative deadline (≤ period in this model).
    pub deadline: Time,
    dag: Dag<Process, Message>,
}

impl ProcessGraph {
    /// Creates an empty process graph.
    pub fn new(name: impl Into<String>, period: Time, deadline: Time) -> Self {
        ProcessGraph {
            name: name.into(),
            period,
            deadline,
            dag: Dag::new(),
        }
    }

    /// Adds a process and returns its node id.
    pub fn add_process(&mut self, p: Process) -> NodeId {
        self.dag.add_node(p)
    }

    /// Adds a message (a data dependency) from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns an error if either node id is out of bounds.
    pub fn add_message(
        &mut self,
        src: NodeId,
        dst: NodeId,
        m: Message,
    ) -> Result<EdgeId, incdes_graph::dag::InvalidNodeError> {
        self.dag.add_edge(src, dst, m)
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag<Process, Message> {
        &self.dag
    }

    /// The process at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn process(&self, node: NodeId) -> &Process {
        self.dag.node(node)
    }

    /// The message on `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn message(&self, edge: EdgeId) -> &Message {
        self.dag.edge(edge)
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.dag.edge_count()
    }

    /// True if the graph is a DAG (no dependency cycles).
    pub fn is_acyclic(&self) -> bool {
        algo::is_acyclic(&self.dag)
    }

    /// Sum over processes of the mean WCET — a PE-independent estimate of
    /// the processor time one instance of this graph consumes.
    pub fn average_load(&self) -> Time {
        self.dag
            .node_weights()
            .filter_map(|p| p.wcets.average())
            .sum()
    }
}

/// An application: a set of process graphs designed, delivered and (in the
/// incremental flow) committed together.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Application {
    /// Human-readable name.
    pub name: String,
    /// The process graphs; index = `ProcRef::graph`.
    pub graphs: Vec<ProcessGraph>,
}

impl Application {
    /// Creates an application from its process graphs.
    pub fn new(name: impl Into<String>, graphs: Vec<ProcessGraph>) -> Self {
        Application {
            name: name.into(),
            graphs,
        }
    }

    /// Total number of processes across all graphs.
    pub fn process_count(&self) -> usize {
        self.graphs.iter().map(|g| g.process_count()).sum()
    }

    /// Total number of messages across all graphs.
    pub fn message_count(&self) -> usize {
        self.graphs.iter().map(|g| g.message_count()).sum()
    }

    /// Iterator over every process in the application as
    /// `(ProcRef, &Process)`.
    pub fn processes(&self) -> impl Iterator<Item = (ProcRef, &Process)> + '_ {
        self.graphs.iter().enumerate().flat_map(|(gi, g)| {
            g.dag()
                .node_ids()
                .map(move |n| (ProcRef::new(gi, n), g.process(n)))
        })
    }

    /// The process referenced by `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of bounds.
    pub fn process(&self, r: ProcRef) -> &Process {
        self.graphs[r.graph].process(r.node)
    }

    /// The graph containing `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.graph` is out of bounds.
    pub fn graph_of(&self, r: ProcRef) -> &ProcessGraph {
        &self.graphs[r.graph]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> ProcessGraph {
        let mut g = ProcessGraph::new("g", Time::new(100), Time::new(90));
        let a = g.add_process(
            Process::new("a")
                .wcet(PeId(0), Time::new(5))
                .wcet(PeId(1), Time::new(7)),
        );
        let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(3)));
        g.add_message(a, b, Message::new("m", 8)).unwrap();
        g
    }

    #[test]
    fn wcet_table_sparse_set_get() {
        let mut t = WcetTable::new();
        assert_eq!(t.get(PeId(0)), None);
        t.set(PeId(2), Time::new(9));
        assert_eq!(t.get(PeId(2)), Some(Time::new(9)));
        assert_eq!(t.get(PeId(0)), None);
        assert_eq!(t.get(PeId(99)), None);
        assert!(!t.allows(PeId(1)));
        assert!(t.allows(PeId(2)));
        assert_eq!(t.allowed_count(), 1);
    }

    #[test]
    fn wcet_table_overwrite() {
        let mut t = WcetTable::new();
        t.set(PeId(0), Time::new(5));
        t.set(PeId(0), Time::new(8));
        assert_eq!(t.get(PeId(0)), Some(Time::new(8)));
    }

    #[test]
    fn wcet_table_stats() {
        let t: WcetTable = [(PeId(0), Time::new(4)), (PeId(2), Time::new(10))]
            .into_iter()
            .collect();
        assert_eq!(t.average(), Some(Time::new(7)));
        assert_eq!(t.min(), Some(Time::new(4)));
        assert_eq!(t.max(), Some(Time::new(10)));
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(
            pairs,
            vec![(PeId(0), Time::new(4)), (PeId(2), Time::new(10))]
        );
        assert_eq!(WcetTable::new().average(), None);
    }

    #[test]
    fn process_builder() {
        let p = Process::new("p").wcet(PeId(1), Time::new(12));
        assert_eq!(p.name, "p");
        assert_eq!(p.wcets.get(PeId(1)), Some(Time::new(12)));
        assert_eq!(p.wcets.allowed_count(), 1);
    }

    #[test]
    fn graph_counts_and_access() {
        let g = sample_graph();
        assert_eq!(g.process_count(), 2);
        assert_eq!(g.message_count(), 1);
        assert!(g.is_acyclic());
        assert_eq!(g.process(NodeId(1)).name, "b");
        assert_eq!(g.message(EdgeId(0)).bytes, 8);
    }

    #[test]
    fn graph_average_load() {
        let g = sample_graph();
        // a: (5+7)/2 = 6, b: 3 → 9.
        assert_eq!(g.average_load(), Time::new(9));
    }

    #[test]
    fn cyclic_graph_detected() {
        let mut g = ProcessGraph::new("g", Time::new(10), Time::new(10));
        let a = g.add_process(Process::new("a"));
        let b = g.add_process(Process::new("b"));
        g.add_message(a, b, Message::new("m1", 1)).unwrap();
        g.add_message(b, a, Message::new("m2", 1)).unwrap();
        assert!(!g.is_acyclic());
    }

    #[test]
    fn application_iteration() {
        let app = Application::new("app", vec![sample_graph(), sample_graph()]);
        assert_eq!(app.process_count(), 4);
        assert_eq!(app.message_count(), 2);
        let refs: Vec<_> = app.processes().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 4);
        assert_eq!(refs[0], ProcRef::new(0, NodeId(0)));
        assert_eq!(refs[3], ProcRef::new(1, NodeId(1)));
        assert_eq!(app.process(refs[3]).name, "b");
        assert_eq!(app.graph_of(refs[3]).name, "g");
    }

    #[test]
    fn display_formats() {
        let t = TaskRef::new(AppId(2), ProcRef::new(1, NodeId(3)));
        assert_eq!(t.to_string(), "app2/g1/n3");
    }

    #[test]
    fn serde_round_trip() {
        let app = Application::new("app", vec![sample_graph()]);
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(back.process_count(), 2);
        assert_eq!(
            back.graphs[0].process(NodeId(0)).wcets.get(PeId(1)),
            Some(Time::new(7))
        );
    }
}
