//! Integer time.
//!
//! Static cyclic schedules are tables of exact start times; floating point
//! would accumulate rounding error across a hyperperiod. All durations and
//! instants in the workspace are therefore integer *ticks* wrapped in the
//! [`Time`] newtype. The physical meaning of a tick (µs, bus macrotick,
//! ...) is up to the caller and never interpreted by the library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration or instant in integer ticks.
///
/// Arithmetic panics on overflow in debug builds like the underlying
/// `u64`; the checked and saturating variants are provided for the few
/// places where overflow is a data error rather than a bug.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

impl Time {
    /// Zero ticks.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as "never" / "+infinity".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// `self + rhs`, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// `self - rhs`, or `None` if `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// `self + rhs`, clamped at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// `self * k`, or `None` on overflow.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Time> {
        self.0.checked_mul(k).map(Time)
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Ceiling division: the least `q` with `q * divisor >= self`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    pub fn div_ceil(self, divisor: Time) -> u64 {
        assert!(divisor.0 > 0, "division by zero time");
        self.0.div_ceil(divisor.0)
    }

    /// Rounds down to the previous multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[inline]
    pub fn align_down(self, step: Time) -> Time {
        assert!(step.0 > 0, "alignment step must be positive");
        Time(self.0 / step.0 * step.0)
    }

    /// Rounds up to the next multiple of `step`, saturating at `MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[inline]
    pub fn align_up(self, step: Time) -> Time {
        assert!(step.0 > 0, "alignment step must be positive");
        match self.0 % step.0 {
            0 => self,
            r => Time(self.0.saturating_add(step.0 - r)),
        }
    }

    /// Converts to `f64` ticks (for metrics and reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Time {
    fn from(v: u64) -> Self {
        Time(v)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

/// Greatest common divisor of two tick counts.
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, or `None` on overflow or if either input is zero.
pub fn lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// The hyperperiod (least common multiple) of a set of periods.
///
/// This is the length of the static cyclic schedule covering all process
/// graphs in the system.
///
/// # Errors
///
/// Returns [`HyperperiodError`] if the set is empty, contains a zero
/// period, or the LCM overflows `u64`.
pub fn hyperperiod<I: IntoIterator<Item = Time>>(periods: I) -> Result<Time, HyperperiodError> {
    let mut acc: Option<u64> = None;
    for p in periods {
        if p.is_zero() {
            return Err(HyperperiodError::ZeroPeriod);
        }
        acc = Some(match acc {
            None => p.0,
            Some(a) => lcm(a, p.0).ok_or(HyperperiodError::Overflow)?,
        });
    }
    acc.map(Time).ok_or(HyperperiodError::Empty)
}

/// Error computing a hyperperiod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperperiodError {
    /// The period set was empty.
    Empty,
    /// A period of zero ticks was supplied.
    ZeroPeriod,
    /// The least common multiple exceeds `u64`.
    Overflow,
}

impl fmt::Display for HyperperiodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperperiodError::Empty => write!(f, "cannot take hyperperiod of an empty set"),
            HyperperiodError::ZeroPeriod => write!(f, "period of zero ticks"),
            HyperperiodError::Overflow => write!(f, "hyperperiod overflows u64"),
        }
    }
}

impl std::error::Error for HyperperiodError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display() {
        assert_eq!(Time::new(42).to_string(), "42t");
    }

    #[test]
    fn basic_arithmetic() {
        let a = Time::new(10);
        let b = Time::new(4);
        assert_eq!(a + b, Time::new(14));
        assert_eq!(a - b, Time::new(6));
        assert_eq!(a * 3, Time::new(30));
        assert_eq!(a / 3, Time::new(3));
        assert_eq!(a % b, Time::new(2));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(Time::new(3).saturating_sub(Time::new(5)), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(Time::new(1)), Time::MAX);
        assert_eq!(Time::new(3).checked_sub(Time::new(5)), None);
        assert_eq!(Time::MAX.checked_add(Time::new(1)), None);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::new(5).checked_mul(3), Some(Time::new(15)));
    }

    #[test]
    fn alignment() {
        let step = Time::new(10);
        assert_eq!(Time::new(0).align_up(step), Time::ZERO);
        assert_eq!(Time::new(1).align_up(step), Time::new(10));
        assert_eq!(Time::new(10).align_up(step), Time::new(10));
        assert_eq!(Time::new(11).align_down(step), Time::new(10));
        assert_eq!(Time::new(9).align_down(step), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "alignment step")]
    fn align_zero_step_panics() {
        let _ = Time::new(5).align_up(Time::ZERO);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Time::new(10).div_ceil(Time::new(4)), 3);
        assert_eq!(Time::new(8).div_ceil(Time::new(4)), 2);
        assert_eq!(Time::ZERO.div_ceil(Time::new(4)), 0);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3].into_iter().map(Time::new).sum();
        assert_eq!(total, Time::new(6));
    }

    #[test]
    fn gcd_lcm_small() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(0, 6), None);
        assert_eq!(lcm(u64::MAX, 2), None);
    }

    #[test]
    fn hyperperiod_of_harmonic_set() {
        let h = hyperperiod([Time::new(50), Time::new(100), Time::new(200)]).unwrap();
        assert_eq!(h, Time::new(200));
    }

    #[test]
    fn hyperperiod_of_coprime_set() {
        let h = hyperperiod([Time::new(3), Time::new(5), Time::new(7)]).unwrap();
        assert_eq!(h, Time::new(105));
    }

    #[test]
    fn hyperperiod_errors() {
        assert_eq!(hyperperiod([]), Err(HyperperiodError::Empty));
        assert_eq!(hyperperiod([Time::ZERO]), Err(HyperperiodError::ZeroPeriod));
        assert_eq!(
            hyperperiod([Time::new(u64::MAX), Time::new(u64::MAX - 1)]),
            Err(HyperperiodError::Overflow)
        );
    }

    proptest! {
        #[test]
        fn prop_gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let g = gcd(a, b);
            prop_assert!(g > 0);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }

        #[test]
        fn prop_lcm_is_common_multiple(a in 1u64..100_000, b in 1u64..100_000) {
            let l = lcm(a, b).unwrap();
            prop_assert_eq!(l % a, 0);
            prop_assert_eq!(l % b, 0);
            // Minimality: l / a and b / gcd agree.
            prop_assert_eq!(l, a / gcd(a, b) * b);
        }

        #[test]
        fn prop_align_up_ge_and_multiple(v in 0u64..1_000_000, step in 1u64..1000) {
            let t = Time::new(v).align_up(Time::new(step));
            prop_assert!(t.ticks() >= v);
            prop_assert_eq!(t.ticks() % step, 0);
            prop_assert!(t.ticks() - v < step);
        }

        #[test]
        fn prop_hyperperiod_divisible_by_each(
            periods in proptest::collection::vec(1u64..64, 1..6)
        ) {
            let h = hyperperiod(periods.iter().copied().map(Time::new)).unwrap();
            for p in periods {
                prop_assert_eq!(h.ticks() % p, 0);
            }
        }
    }
}
