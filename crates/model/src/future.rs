//! Characterization of future applications (slide 10).
//!
//! At version `N` of the system the designer does not yet know the next
//! increment, but can characterize the *family* of applications likely to
//! be added:
//!
//! * `Tmin` — the smallest expected period of any future process graph;
//! * `tneed` — the processor time the most demanding future application is
//!   expected to need inside every interval of length `Tmin`;
//! * `bneed` — the bus time it is expected to need inside every `Tmin`;
//! * a histogram of typical process WCETs;
//! * a histogram of typical message sizes.
//!
//! [`FutureProfile`] carries this data; the C1 metric expands the
//! histograms into the *largest expected future application* via
//! [`FutureProfile::expected_process_items`].

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discrete probability histogram over values of type `V`.
///
/// Weights are relative (they need not sum to 1); they are normalized on
/// use. Used for "typical process WCET" and "typical message size"
/// distributions, mirroring the bar charts on slide 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram<V> {
    bins: Vec<(V, f64)>,
}

/// Error building a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// No bins were supplied.
    Empty,
    /// A weight was negative, NaN, or all weights were zero.
    BadWeight,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::Empty => write!(f, "histogram has no bins"),
            HistogramError::BadWeight => {
                write!(f, "histogram weights must be non-negative and not all zero")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

impl<V: Copy> Histogram<V> {
    /// Creates a histogram from `(value, relative weight)` bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] if no bins are given, any weight is
    /// negative or NaN, or all weights are zero.
    pub fn new(bins: Vec<(V, f64)>) -> Result<Self, HistogramError> {
        if bins.is_empty() {
            return Err(HistogramError::Empty);
        }
        let mut total = 0.0;
        for &(_, w) in &bins {
            if w.is_nan() || w < 0.0 {
                return Err(HistogramError::BadWeight);
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(HistogramError::BadWeight);
        }
        Ok(Histogram { bins })
    }

    /// A single-bin histogram (the value is certain).
    pub fn point(value: V) -> Self {
        Histogram {
            bins: vec![(value, 1.0)],
        }
    }

    /// The bins as supplied.
    pub fn bins(&self) -> &[(V, f64)] {
        &self.bins
    }

    /// Normalized probability of each bin (sums to 1).
    pub fn probabilities(&self) -> Vec<(V, f64)> {
        let total: f64 = self.bins.iter().map(|&(_, w)| w).sum();
        self.bins.iter().map(|&(v, w)| (v, w / total)).collect()
    }

    /// Picks the bin for a uniform draw `u ∈ [0, 1)`.
    ///
    /// Deterministic given `u`; callers supply randomness. Out-of-range
    /// `u` clamps to the first/last bin.
    pub fn pick(&self, u: f64) -> V {
        let total: f64 = self.bins.iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        let target = u.clamp(0.0, 1.0) * total;
        for &(v, w) in &self.bins {
            acc += w;
            if target < acc {
                return v;
            }
        }
        self.bins.last().expect("histogram is non-empty").0
    }
}

impl Histogram<Time> {
    /// Expected value of a time-valued histogram, in fractional ticks.
    pub fn mean_time(&self) -> f64 {
        self.probabilities()
            .into_iter()
            .map(|(v, p)| v.as_f64() * p)
            .sum()
    }
}

impl Histogram<u32> {
    /// Expected value of a byte-size histogram.
    pub fn mean_value(&self) -> f64 {
        self.probabilities()
            .into_iter()
            .map(|(v, p)| v as f64 * p)
            .sum()
    }
}

/// The family profile of future applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FutureProfile {
    /// Smallest expected period of a future process graph.
    pub t_min: Time,
    /// Processor time needed inside every `t_min` window.
    pub t_need: Time,
    /// Bus time needed inside every `t_min` window.
    pub b_need: Time,
    /// Typical process WCETs.
    pub wcet_hist: Histogram<Time>,
    /// Typical message sizes in bytes.
    pub msg_hist: Histogram<u32>,
}

impl FutureProfile {
    /// Creates a profile.
    pub fn new(
        t_min: Time,
        t_need: Time,
        b_need: Time,
        wcet_hist: Histogram<Time>,
        msg_hist: Histogram<u32>,
    ) -> Self {
        FutureProfile {
            t_min,
            t_need,
            b_need,
            wcet_hist,
            msg_hist,
        }
    }

    /// A profile matching the slide-10 example: WCETs of 20/50/100/150
    /// ticks with falling probability, message sizes of 2/4/6/8 bytes.
    pub fn slide_example() -> Self {
        FutureProfile {
            t_min: Time::new(120),
            t_need: Time::new(40),
            b_need: Time::new(10),
            wcet_hist: Histogram::new(vec![
                (Time::new(20), 0.40),
                (Time::new(50), 0.30),
                (Time::new(100), 0.20),
                (Time::new(150), 0.10),
            ])
            .expect("static bins are valid"),
            msg_hist: Histogram::new(vec![(2, 0.35), (4, 0.30), (6, 0.20), (8, 0.15)])
                .expect("static bins are valid"),
        }
    }

    /// The process items of the *largest expected future application* that
    /// must fit into a horizon of length `horizon` (usually the
    /// hyperperiod): total execution demand `t_need * (horizon / t_min)`,
    /// split into pieces drawn deterministically from the WCET histogram
    /// in proportion to bin probability (largest first).
    ///
    /// This is the object list handed to the C1 bin-packer.
    pub fn expected_process_items(&self, horizon: Time) -> Vec<Time> {
        let windows = horizon.ticks() / self.t_min.ticks().max(1);
        let total = self.t_need.ticks().saturating_mul(windows.max(1));
        expand_items(
            &self.wcet_hist.probabilities(),
            |t| t.ticks(),
            Time::new,
            total,
        )
    }

    /// Message items (as bus-occupancy byte sizes) of the largest expected
    /// future application over `horizon`, sized so their *count* matches
    /// the process count roughly 1:1 with the histogram mix.
    ///
    /// `bus_time_of` converts a message size to slot time; the items
    /// returned are the converted times, totalling
    /// `b_need * (horizon / t_min)`.
    pub fn expected_message_items(
        &self,
        horizon: Time,
        mut bus_time_of: impl FnMut(u32) -> Time,
    ) -> Vec<Time> {
        let windows = horizon.ticks() / self.t_min.ticks().max(1);
        let total = self.b_need.ticks().saturating_mul(windows.max(1));
        let time_bins: Vec<(Time, f64)> = self
            .msg_hist
            .probabilities()
            .into_iter()
            .map(|(bytes, p)| (bus_time_of(bytes), p))
            .collect();
        expand_items(&time_bins, |t| t.ticks(), Time::new, total)
    }
}

/// Splits `total` into items drawn from weighted bins, proportionally to
/// bin probability, deterministic, largest items first. Guarantees the sum
/// of returned items is ≥ `total` (the last item may be clipped from the
/// smallest bin) unless `total` is 0, in which case it returns no items.
fn expand_items<V: Copy>(
    bins: &[(V, f64)],
    to_ticks: impl Fn(V) -> u64,
    from_ticks: impl Fn(u64) -> V,
    total: u64,
) -> Vec<V> {
    if total == 0 {
        return Vec::new();
    }
    // Sort bins by value descending so big items are emitted first
    // (best-fit-decreasing friendly) and drop zero-sized values.
    let mut sorted: Vec<(u64, f64)> = bins
        .iter()
        .map(|&(v, p)| (to_ticks(v), p))
        .filter(|&(t, p)| t > 0 && p > 0.0)
        .collect();
    sorted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.total_cmp(&b.1)));
    if sorted.is_empty() {
        return Vec::new();
    }
    let psum: f64 = sorted.iter().map(|&(_, p)| p).sum();
    let mut items = Vec::new();
    let mut emitted = 0u64;
    for &(val, p) in &sorted {
        // Time share of this bin.
        let share = (total as f64 * (p / psum)).round() as u64;
        let count = share / val;
        for _ in 0..count {
            items.push(from_ticks(val));
            emitted += val;
        }
    }
    // Top up with the smallest value until the demand is covered.
    let smallest = sorted.last().expect("nonempty").0;
    while emitted < total {
        items.push(from_ticks(smallest));
        emitted += smallest;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_rejects_bad_input() {
        assert_eq!(
            Histogram::<u32>::new(vec![]).unwrap_err(),
            HistogramError::Empty
        );
        assert_eq!(
            Histogram::new(vec![(1u32, -0.5)]).unwrap_err(),
            HistogramError::BadWeight
        );
        assert_eq!(
            Histogram::new(vec![(1u32, 0.0)]).unwrap_err(),
            HistogramError::BadWeight
        );
        assert_eq!(
            Histogram::new(vec![(1u32, f64::NAN)]).unwrap_err(),
            HistogramError::BadWeight
        );
    }

    #[test]
    fn histogram_probabilities_normalize() {
        let h = Histogram::new(vec![(10u32, 1.0), (20, 3.0)]).unwrap();
        let p = h.probabilities();
        assert!((p[0].1 - 0.25).abs() < 1e-12);
        assert!((p[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_pick_boundaries() {
        let h = Histogram::new(vec![(1u32, 1.0), (2, 1.0)]).unwrap();
        assert_eq!(h.pick(0.0), 1);
        assert_eq!(h.pick(0.49), 1);
        assert_eq!(h.pick(0.51), 2);
        assert_eq!(h.pick(0.999), 2);
        // Clamped out-of-range draws.
        assert_eq!(h.pick(-1.0), 1);
        assert_eq!(h.pick(2.0), 2);
    }

    #[test]
    fn histogram_point_and_means() {
        let h = Histogram::point(Time::new(50));
        assert_eq!(h.pick(0.7), Time::new(50));
        assert!((h.mean_time() - 50.0).abs() < 1e-12);
        let m = Histogram::new(vec![(2u32, 1.0), (6, 1.0)]).unwrap();
        assert!((m.mean_value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn expected_items_cover_demand() {
        let p = FutureProfile::slide_example();
        // horizon = 4 windows of t_min=120 → demand 4*40 = 160 ticks.
        let items = p.expected_process_items(Time::new(480));
        let sum: u64 = items.iter().map(|t| t.ticks()).sum();
        assert!(sum >= 160, "items sum {sum} must cover demand 160");
        // No item should exceed the largest histogram bin.
        assert!(items.iter().all(|t| t.ticks() <= 150));
        // Items are emitted largest-first.
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(items, sorted);
    }

    #[test]
    fn expected_items_zero_horizon_window() {
        let p = FutureProfile::slide_example();
        // horizon < t_min: one window still assumed.
        let items = p.expected_process_items(Time::new(60));
        let sum: u64 = items.iter().map(|t| t.ticks()).sum();
        assert!(sum >= 40);
    }

    #[test]
    fn expected_items_zero_need() {
        let mut p = FutureProfile::slide_example();
        p.t_need = Time::ZERO;
        assert!(p.expected_process_items(Time::new(480)).is_empty());
    }

    #[test]
    fn expected_message_items_use_conversion() {
        let p = FutureProfile::slide_example();
        // 1 window, b_need = 10 ticks; bus time = bytes (1 byte/tick).
        let items = p.expected_message_items(Time::new(120), |bytes| Time::new(bytes as u64));
        let sum: u64 = items.iter().map(|t| t.ticks()).sum();
        assert!(sum >= 10);
        assert!(items.iter().all(|t| t.ticks() <= 8));
    }

    #[test]
    fn serde_round_trip() {
        let p = FutureProfile::slide_example();
        let json = serde_json::to_string(&p).unwrap();
        let back: FutureProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
