//! Hardware platform: processing elements and the TDMA bus.
//!
//! The architecture follows the paper's target (slide 4): heterogeneous
//! nodes — each with CPU, RAM/ROM and a communication controller — attached
//! to a broadcast bus arbitrated by a time-division multiple-access scheme
//! in the style of the time-triggered protocol (TTP):
//!
//! * the bus timeline is a repetition of a *cycle*,
//! * a cycle consists of one or more [`Round`]s,
//! * each round contains one [`Slot`] per transmitting node; only the
//!   slot's owner may transmit during it,
//! * slot lengths may differ between nodes and between rounds.
//!
//! This module is pure configuration data; the timing engine that places
//! messages into slots lives in the `incdes-tdma` crate.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processing element (a *node* in the paper).
///
/// Dense indices: the `k`-th PE of an [`Architecture`] has id `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId(pub u32);

impl PeId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// A processing element: CPU + memory + TTP communication controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessingElement {
    /// Human-readable name (e.g. `"N1"`).
    pub name: String,
}

impl ProcessingElement {
    /// Creates a processing element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessingElement { name: name.into() }
    }
}

/// One TDMA slot: a window of bus time owned by a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// The node allowed to transmit in this slot.
    pub owner: PeId,
    /// Slot length in ticks.
    pub length: Time,
}

impl Slot {
    /// Creates a slot.
    pub fn new(owner: PeId, length: Time) -> Self {
        Slot { owner, length }
    }
}

/// One TDMA round: a sequence of slots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round {
    /// Slots in transmission order.
    pub slots: Vec<Slot>,
}

impl Round {
    /// Creates a round from its slots.
    pub fn new(slots: Vec<Slot>) -> Self {
        Round { slots }
    }

    /// Total length of the round in ticks.
    pub fn length(&self) -> Time {
        self.slots.iter().map(|s| s.length).sum()
    }
}

/// The TDMA bus configuration: a cycle of rounds repeated forever, plus the
/// transmission rate used to convert message bytes into slot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Rounds making up one cycle, in order.
    pub rounds: Vec<Round>,
    /// Bytes transmitted per tick of slot time. A message of `b` bytes
    /// occupies `ceil(b / bytes_per_tick)` ticks inside its slot.
    pub bytes_per_tick: u32,
}

/// Error building or validating a [`BusConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusConfigError {
    /// The cycle contains no rounds, or a round contains no slots.
    Empty,
    /// A slot has zero length.
    ZeroSlot {
        /// Round index within the cycle.
        round: usize,
        /// Slot index within the round.
        slot: usize,
    },
    /// `bytes_per_tick` is zero.
    ZeroRate,
    /// A slot is owned by a PE outside the architecture.
    UnknownOwner {
        /// The offending owner id.
        owner: PeId,
        /// Number of PEs in the architecture.
        pe_count: usize,
    },
    /// A node owns no slot anywhere in the cycle and therefore can never
    /// transmit.
    SilencedNode {
        /// The node without a slot.
        pe: PeId,
    },
}

impl fmt::Display for BusConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusConfigError::Empty => write!(f, "bus cycle has no rounds or an empty round"),
            BusConfigError::ZeroSlot { round, slot } => {
                write!(f, "slot {slot} of round {round} has zero length")
            }
            BusConfigError::ZeroRate => write!(f, "bus bytes_per_tick must be positive"),
            BusConfigError::UnknownOwner { owner, pe_count } => {
                write!(f, "slot owner {owner} out of range for {pe_count} PEs")
            }
            BusConfigError::SilencedNode { pe } => {
                write!(f, "node {pe} owns no slot in the bus cycle")
            }
        }
    }
}

impl std::error::Error for BusConfigError {}

impl BusConfig {
    /// Creates a bus configuration from explicit rounds.
    ///
    /// # Errors
    ///
    /// Returns [`BusConfigError`] if the cycle is empty, a slot has zero
    /// length, or the rate is zero. Ownership checks against the PE set
    /// happen in [`Architecture::builder`].
    pub fn new(rounds: Vec<Round>, bytes_per_tick: u32) -> Result<Self, BusConfigError> {
        if rounds.is_empty() || rounds.iter().any(|r| r.slots.is_empty()) {
            return Err(BusConfigError::Empty);
        }
        for (ri, r) in rounds.iter().enumerate() {
            for (si, s) in r.slots.iter().enumerate() {
                if s.length.is_zero() {
                    return Err(BusConfigError::ZeroSlot {
                        round: ri,
                        slot: si,
                    });
                }
            }
        }
        if bytes_per_tick == 0 {
            return Err(BusConfigError::ZeroRate);
        }
        Ok(BusConfig {
            rounds,
            bytes_per_tick,
        })
    }

    /// The common case: a cycle of `rounds` identical rounds, each with one
    /// slot of length `slot_length` per PE (`pe_count` slots in PE order),
    /// at 1 byte per tick.
    ///
    /// # Errors
    ///
    /// Returns [`BusConfigError::Empty`] if `pe_count` or `rounds` is zero,
    /// or [`BusConfigError::ZeroSlot`] if `slot_length` is zero.
    pub fn uniform_round(
        pe_count: u32,
        slot_length: Time,
        rounds: usize,
    ) -> Result<Self, BusConfigError> {
        if pe_count == 0 || rounds == 0 {
            return Err(BusConfigError::Empty);
        }
        let round = Round::new(
            (0..pe_count)
                .map(|i| Slot::new(PeId(i), slot_length))
                .collect(),
        );
        BusConfig::new(vec![round; rounds], 1)
    }

    /// Length of one full cycle in ticks.
    pub fn cycle_length(&self) -> Time {
        self.rounds.iter().map(|r| r.length()).sum()
    }

    /// Number of rounds per cycle.
    pub fn rounds_per_cycle(&self) -> usize {
        self.rounds.len()
    }

    /// Transmission time of a message of `bytes` bytes.
    ///
    /// Zero-byte messages still occupy one tick (frame overhead).
    pub fn transmission_time(&self, bytes: u32) -> Time {
        let t = (bytes as u64).div_ceil(self.bytes_per_tick as u64);
        Time::new(t.max(1))
    }

    /// The longest slot owned by `pe` anywhere in the cycle, if any.
    pub fn longest_slot_of(&self, pe: PeId) -> Option<Time> {
        self.rounds
            .iter()
            .flat_map(|r| &r.slots)
            .filter(|s| s.owner == pe)
            .map(|s| s.length)
            .max()
    }

    /// Total slot time owned by `pe` in one cycle.
    pub fn slot_time_of(&self, pe: PeId) -> Time {
        self.rounds
            .iter()
            .flat_map(|r| &r.slots)
            .filter(|s| s.owner == pe)
            .map(|s| s.length)
            .sum()
    }

    /// Validates slot ownership against a PE count, checking that every
    /// owner exists and every PE owns at least one slot.
    ///
    /// # Errors
    ///
    /// Returns [`BusConfigError::UnknownOwner`] or
    /// [`BusConfigError::SilencedNode`] accordingly.
    pub fn check_owners(&self, pe_count: usize) -> Result<(), BusConfigError> {
        let mut owns = vec![false; pe_count];
        for r in &self.rounds {
            for s in &r.slots {
                if s.owner.index() >= pe_count {
                    return Err(BusConfigError::UnknownOwner {
                        owner: s.owner,
                        pe_count,
                    });
                }
                owns[s.owner.index()] = true;
            }
        }
        if let Some(i) = owns.iter().position(|&o| !o) {
            return Err(BusConfigError::SilencedNode { pe: PeId(i as u32) });
        }
        Ok(())
    }
}

/// The complete hardware platform: PEs plus the TDMA bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    pes: Vec<ProcessingElement>,
    bus: BusConfig,
}

impl Architecture {
    /// Starts building an architecture.
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::default()
    }

    /// The processing elements, indexed by [`PeId`].
    pub fn pes(&self) -> &[ProcessingElement] {
        &self.pes
    }

    /// Number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Iterator over all PE ids.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len() as u32).map(PeId)
    }

    /// The processing element with id `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of bounds.
    pub fn pe(&self, pe: PeId) -> &ProcessingElement {
        &self.pes[pe.index()]
    }

    /// The bus configuration.
    pub fn bus(&self) -> &BusConfig {
        &self.bus
    }
}

/// Builder for [`Architecture`]; see [`Architecture::builder`].
#[derive(Debug, Default)]
pub struct ArchitectureBuilder {
    pes: Vec<ProcessingElement>,
    bus: Option<BusConfig>,
}

impl ArchitectureBuilder {
    /// Adds a processing element with the given name; ids are assigned in
    /// call order.
    pub fn pe(mut self, name: impl Into<String>) -> Self {
        self.pes.push(ProcessingElement::new(name));
        self
    }

    /// Sets the bus configuration.
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Finishes the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`BusConfigError`] if no bus was set, there are no PEs, a
    /// slot owner is unknown, or some PE owns no slot.
    pub fn build(self) -> Result<Architecture, BusConfigError> {
        if self.pes.is_empty() {
            return Err(BusConfigError::Empty);
        }
        let bus = self.bus.ok_or(BusConfigError::Empty)?;
        bus.check_owners(self.pes.len())?;
        Ok(Architecture { pes: self.pes, bus })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pe_arch() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 2).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_round_layout() {
        let bus = BusConfig::uniform_round(3, Time::new(5), 2).unwrap();
        assert_eq!(bus.rounds_per_cycle(), 2);
        assert_eq!(bus.rounds[0].slots.len(), 3);
        assert_eq!(bus.cycle_length(), Time::new(30));
        assert_eq!(bus.rounds[1].slots[2].owner, PeId(2));
    }

    #[test]
    fn uniform_round_rejects_degenerate() {
        assert!(matches!(
            BusConfig::uniform_round(0, Time::new(5), 1),
            Err(BusConfigError::Empty)
        ));
        assert!(matches!(
            BusConfig::uniform_round(2, Time::new(5), 0),
            Err(BusConfigError::Empty)
        ));
        assert!(matches!(
            BusConfig::uniform_round(2, Time::ZERO, 1),
            Err(BusConfigError::ZeroSlot { .. })
        ));
    }

    #[test]
    fn zero_rate_rejected() {
        let round = Round::new(vec![Slot::new(PeId(0), Time::new(4))]);
        assert_eq!(
            BusConfig::new(vec![round], 0),
            Err(BusConfigError::ZeroRate)
        );
    }

    #[test]
    fn transmission_time_rounds_up() {
        let mut bus = BusConfig::uniform_round(1, Time::new(10), 1).unwrap();
        bus.bytes_per_tick = 4;
        assert_eq!(bus.transmission_time(0), Time::new(1));
        assert_eq!(bus.transmission_time(4), Time::new(1));
        assert_eq!(bus.transmission_time(5), Time::new(2));
        assert_eq!(bus.transmission_time(17), Time::new(5));
    }

    #[test]
    fn asymmetric_slots() {
        let r1 = Round::new(vec![
            Slot::new(PeId(0), Time::new(4)),
            Slot::new(PeId(1), Time::new(8)),
        ]);
        let r2 = Round::new(vec![
            Slot::new(PeId(0), Time::new(6)),
            Slot::new(PeId(1), Time::new(2)),
        ]);
        let bus = BusConfig::new(vec![r1, r2], 1).unwrap();
        assert_eq!(bus.cycle_length(), Time::new(20));
        assert_eq!(bus.longest_slot_of(PeId(0)), Some(Time::new(6)));
        assert_eq!(bus.longest_slot_of(PeId(1)), Some(Time::new(8)));
        assert_eq!(bus.slot_time_of(PeId(0)), Time::new(10));
        assert_eq!(bus.longest_slot_of(PeId(9)), None);
    }

    #[test]
    fn builder_happy_path() {
        let arch = two_pe_arch();
        assert_eq!(arch.pe_count(), 2);
        assert_eq!(arch.pe(PeId(0)).name, "N1");
        assert_eq!(arch.bus().cycle_length(), Time::new(40));
        let ids: Vec<_> = arch.pe_ids().collect();
        assert_eq!(ids, vec![PeId(0), PeId(1)]);
    }

    #[test]
    fn builder_rejects_unknown_owner() {
        let bus = BusConfig::uniform_round(3, Time::new(10), 1).unwrap();
        let err = Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(bus)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BusConfigError::UnknownOwner { owner: PeId(2), .. }
        ));
    }

    #[test]
    fn builder_rejects_silenced_node() {
        // 3 PEs but slots only for two of them.
        let round = Round::new(vec![
            Slot::new(PeId(0), Time::new(10)),
            Slot::new(PeId(1), Time::new(10)),
        ]);
        let bus = BusConfig::new(vec![round], 1).unwrap();
        let err = Architecture::builder()
            .pe("a")
            .pe("b")
            .pe("c")
            .bus(bus)
            .build()
            .unwrap_err();
        assert_eq!(err, BusConfigError::SilencedNode { pe: PeId(2) });
        assert!(err.to_string().contains("owns no slot"));
    }

    #[test]
    fn builder_requires_pes_and_bus() {
        assert!(Architecture::builder().build().is_err());
        assert!(Architecture::builder().pe("N1").build().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let arch = two_pe_arch();
        let json = serde_json::to_string(&arch).unwrap();
        let back: Architecture = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arch);
    }
}
