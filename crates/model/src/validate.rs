//! Structural validation of applications against an architecture.
//!
//! Catches data errors before mapping/scheduling: cyclic process graphs,
//! processes with no allowed PE, WCETs of zero, deadlines longer than
//! periods, and messages that cannot fit into any slot of a potential
//! sender.

use crate::app::{Application, ProcRef};
use crate::arch::Architecture;
use crate::time::Time;
use incdes_graph::algo;
use std::fmt;

/// A structural error in an application/architecture pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The application contains no process graphs, or a graph no processes.
    EmptyApplication,
    /// A process graph has a dependency cycle.
    CyclicGraph {
        /// Index of the graph in the application.
        graph: usize,
    },
    /// A graph's period is zero.
    ZeroPeriod {
        /// Index of the graph.
        graph: usize,
    },
    /// A graph's deadline is zero or exceeds its period.
    BadDeadline {
        /// Index of the graph.
        graph: usize,
        /// The deadline found.
        deadline: Time,
        /// The period found.
        period: Time,
    },
    /// A process may not be mapped to any PE of the architecture.
    Unmappable {
        /// The process.
        proc_ref: ProcRef,
    },
    /// A process has a WCET of zero on some allowed PE.
    ZeroWcet {
        /// The process.
        proc_ref: ProcRef,
    },
    /// A message is too large for the longest slot of some PE its sender
    /// may be mapped to — it could never be transmitted from there.
    MessageTooLarge {
        /// Graph index.
        graph: usize,
        /// Message name.
        message: String,
        /// Size in bytes.
        bytes: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyApplication => write!(f, "application has no processes"),
            ModelError::CyclicGraph { graph } => {
                write!(f, "process graph {graph} has a dependency cycle")
            }
            ModelError::ZeroPeriod { graph } => write!(f, "process graph {graph} has period zero"),
            ModelError::BadDeadline { graph, deadline, period } => write!(
                f,
                "process graph {graph} has deadline {deadline} outside (0, period {period}]"
            ),
            ModelError::Unmappable { proc_ref } => {
                write!(f, "process {proc_ref} has no allowed PE in the architecture")
            }
            ModelError::ZeroWcet { proc_ref } => {
                write!(f, "process {proc_ref} has a WCET of zero")
            }
            ModelError::MessageTooLarge { graph, message, bytes } => write!(
                f,
                "message '{message}' ({bytes} bytes) in graph {graph} exceeds every slot of a potential sender"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates `app` against `arch`.
///
/// # Errors
///
/// Returns the first [`ModelError`] found, in deterministic order (graphs
/// in index order, nodes in id order).
pub fn check_application(app: &Application, arch: &Architecture) -> Result<(), ModelError> {
    if app.graphs.is_empty() || app.graphs.iter().any(|g| g.process_count() == 0) {
        return Err(ModelError::EmptyApplication);
    }
    for (gi, g) in app.graphs.iter().enumerate() {
        if !algo::is_acyclic(g.dag()) {
            return Err(ModelError::CyclicGraph { graph: gi });
        }
        if g.period.is_zero() {
            return Err(ModelError::ZeroPeriod { graph: gi });
        }
        if g.deadline.is_zero() || g.deadline > g.period {
            return Err(ModelError::BadDeadline {
                graph: gi,
                deadline: g.deadline,
                period: g.period,
            });
        }
        for n in g.dag().node_ids() {
            let p = g.process(n);
            let allowed: Vec<_> = p
                .wcets
                .iter()
                .filter(|(pe, _)| pe.index() < arch.pe_count())
                .collect();
            if allowed.is_empty() {
                return Err(ModelError::Unmappable {
                    proc_ref: ProcRef::new(gi, n),
                });
            }
            if allowed.iter().any(|&(_, w)| w.is_zero()) {
                return Err(ModelError::ZeroWcet {
                    proc_ref: ProcRef::new(gi, n),
                });
            }
        }
        for e in g.dag().edge_ids() {
            let m = g.message(e);
            let tx = arch.bus().transmission_time(m.bytes);
            let src = g.dag().source(e);
            // Every PE the sender may be mapped to must own a slot long
            // enough for the message.
            for (pe, _) in g.process(src).wcets.iter() {
                if pe.index() >= arch.pe_count() {
                    continue;
                }
                let longest = arch.bus().longest_slot_of(pe).unwrap_or(Time::ZERO);
                if tx > longest {
                    return Err(ModelError::MessageTooLarge {
                        graph: gi,
                        message: m.name.clone(),
                        bytes: m.bytes,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Message, Process, ProcessGraph};
    use crate::arch::{BusConfig, PeId};

    fn arch() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(8), 1).unwrap())
            .build()
            .unwrap()
    }

    fn valid_graph() -> ProcessGraph {
        let mut g = ProcessGraph::new("g", Time::new(100), Time::new(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(5)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(5)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        g
    }

    #[test]
    fn valid_application_passes() {
        let app = Application::new("app", vec![valid_graph()]);
        assert_eq!(check_application(&app, &arch()), Ok(()));
    }

    #[test]
    fn empty_application_rejected() {
        let app = Application::new("app", vec![]);
        assert_eq!(
            check_application(&app, &arch()),
            Err(ModelError::EmptyApplication)
        );
        let empty_graph = ProcessGraph::new("g", Time::new(10), Time::new(10));
        let app = Application::new("app", vec![empty_graph]);
        assert_eq!(
            check_application(&app, &arch()),
            Err(ModelError::EmptyApplication)
        );
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g = ProcessGraph::new("g", Time::new(10), Time::new(10));
        let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(1)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), Time::new(1)));
        g.add_message(a, b, Message::new("m1", 1)).unwrap();
        g.add_message(b, a, Message::new("m2", 1)).unwrap();
        let app = Application::new("app", vec![g]);
        assert_eq!(
            check_application(&app, &arch()),
            Err(ModelError::CyclicGraph { graph: 0 })
        );
    }

    #[test]
    fn zero_period_rejected() {
        let mut g = ProcessGraph::new("g", Time::ZERO, Time::ZERO);
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(1)));
        let app = Application::new("app", vec![g]);
        assert_eq!(
            check_application(&app, &arch()),
            Err(ModelError::ZeroPeriod { graph: 0 })
        );
    }

    #[test]
    fn deadline_beyond_period_rejected() {
        let mut g = ProcessGraph::new("g", Time::new(50), Time::new(60));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(1)));
        let app = Application::new("app", vec![g]);
        assert!(matches!(
            check_application(&app, &arch()),
            Err(ModelError::BadDeadline { graph: 0, .. })
        ));
    }

    #[test]
    fn unmappable_process_rejected() {
        let mut g = ProcessGraph::new("g", Time::new(50), Time::new(50));
        // Only allowed on PE 5, which does not exist.
        g.add_process(Process::new("a").wcet(PeId(5), Time::new(1)));
        let app = Application::new("app", vec![g]);
        assert!(matches!(
            check_application(&app, &arch()),
            Err(ModelError::Unmappable { .. })
        ));
    }

    #[test]
    fn zero_wcet_rejected() {
        let mut g = ProcessGraph::new("g", Time::new(50), Time::new(50));
        g.add_process(Process::new("a").wcet(PeId(0), Time::ZERO));
        let app = Application::new("app", vec![g]);
        assert!(matches!(
            check_application(&app, &arch()),
            Err(ModelError::ZeroWcet { .. })
        ));
    }

    #[test]
    fn oversized_message_rejected() {
        let mut g = ProcessGraph::new("g", Time::new(100), Time::new(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(5)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(5)));
        // Slots are 8 ticks at 1 byte/tick; 20 bytes can never fit.
        g.add_message(a, b, Message::new("big", 20)).unwrap();
        let app = Application::new("app", vec![g]);
        assert!(matches!(
            check_application(&app, &arch()),
            Err(ModelError::MessageTooLarge { bytes: 20, .. })
        ));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = ModelError::BadDeadline {
            graph: 3,
            deadline: Time::new(70),
            period: Time::new(50),
        };
        let s = e.to_string();
        assert!(s.contains("graph 3") && s.contains("70t") && s.contains("50t"));
    }
}
