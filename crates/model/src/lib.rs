//! Data model for the `incdes` workspace.
//!
//! This crate holds the *structural* description of the systems from
//! Pop et al., DAC 2001 — it contains no algorithms beyond validation:
//!
//! * [`time`] — integer time ([`Time`]) with exact arithmetic, GCD/LCM and
//!   hyperperiod helpers. Static cyclic schedules must be exact, so the
//!   whole workspace works in integer ticks.
//! * [`arch`] — the hardware platform: processing elements ([`PeId`],
//!   [`ProcessingElement`]) and the TDMA bus configuration ([`BusConfig`],
//!   [`Round`], [`Slot`]) in the style of the time-triggered protocol.
//! * [`app`] — software: [`Process`], [`Message`], [`ProcessGraph`] (a DAG
//!   with a period and a deadline) and [`Application`] (a set of graphs
//!   delivered together).
//! * [`future`] — the paper's characterization of *future applications*:
//!   [`FutureProfile`] with `Tmin`, `tneed`, `bneed` and histograms of
//!   typical process WCETs and message sizes.
//! * [`validate`] — structural validation of an application against an
//!   architecture.
//!
//! # Example
//!
//! ```
//! use incdes_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .pe("N1")
//!     .pe("N2")
//!     .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
//!     .build()?;
//!
//! let mut g = ProcessGraph::new("sensor-chain", Time::new(100), Time::new(100));
//! let read = g.add_process(Process::new("read").wcet(PeId(0), Time::new(8)));
//! let act = g.add_process(Process::new("act").wcet(PeId(1), Time::new(6)));
//! g.add_message(read, act, Message::new("m", 4))?;
//!
//! let app = Application::new("cruise", vec![g]);
//! validate::check_application(&app, &arch)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod arch;
pub mod future;
pub mod time;
pub mod validate;

pub use app::{AppId, Application, Message, ProcRef, Process, ProcessGraph, TaskRef, WcetTable};
pub use arch::{
    Architecture, ArchitectureBuilder, BusConfig, PeId, ProcessingElement, Round, Slot,
};
pub use future::{FutureProfile, Histogram};
pub use time::Time;
pub use validate::ModelError;

/// Convenient glob import of the most used model types.
pub mod prelude {
    pub use crate::app::{AppId, Application, Message, ProcRef, Process, ProcessGraph, TaskRef};
    pub use crate::arch::{Architecture, BusConfig, PeId, ProcessingElement, Round, Slot};
    pub use crate::future::{FutureProfile, Histogram};
    pub use crate::time::Time;
    pub use crate::validate::{self, ModelError};
    pub use incdes_graph::NodeId;
}
