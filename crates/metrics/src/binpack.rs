//! Bin packing of future-application items into slack containers.
//!
//! The paper computes the C1 metrics with a "bin-packing algorithm using
//! the best-fit policy: processes as objects to be packed, and the slack
//! as containers". First-fit and worst-fit are provided as ablation
//! baselines.

use incdes_model::Time;
use serde::{Deserialize, Serialize};

/// Which bin an item is placed into among those it fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitPolicy {
    /// The fitting bin with the *least* remaining capacity (paper default).
    BestFit,
    /// The first fitting bin in container order.
    FirstFit,
    /// The fitting bin with the *most* remaining capacity.
    WorstFit,
}

/// Result of a packing run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackOutcome {
    /// For each item (in the order given): the container index it was
    /// packed into, or `None` if it did not fit anywhere.
    pub placement: Vec<Option<usize>>,
    /// Total size of packed items.
    pub packed: Time,
    /// Total size of items that did not fit.
    pub unpacked: Time,
    /// Remaining capacity of every container after packing.
    pub remaining: Vec<Time>,
}

impl PackOutcome {
    /// Fraction (in percent) of total item size left unpacked; 0 if there
    /// were no items.
    pub fn unpacked_percent(&self) -> f64 {
        let total = self.packed + self.unpacked;
        if total.is_zero() {
            0.0
        } else {
            100.0 * self.unpacked.as_f64() / total.as_f64()
        }
    }
}

/// Packs `items` into `containers` (given as capacities) with `policy`,
/// considering items in decreasing size order (best-fit-decreasing when
/// combined with [`FitPolicy::BestFit`]).
///
/// Zero-sized items are "packed" trivially (they consume nothing);
/// zero-capacity containers never receive anything.
pub fn pack(items: &[Time], containers: &[Time], policy: FitPolicy) -> PackOutcome {
    let mut remaining: Vec<Time> = containers.to_vec();
    let mut placement: Vec<Option<usize>> = vec![None; items.len()];

    // Indices of items sorted by decreasing size (stable for determinism).
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));

    let mut packed = Time::ZERO;
    let mut unpacked = Time::ZERO;
    for idx in order {
        let size = items[idx];
        if size.is_zero() {
            placement[idx] = Some(usize::MAX); // marker: trivially packed
            continue;
        }
        let candidate = match policy {
            FitPolicy::BestFit => remaining
                .iter()
                .enumerate()
                .filter(|&(_, &cap)| cap >= size)
                .min_by_key(|&(i, &cap)| (cap, i))
                .map(|(i, _)| i),
            FitPolicy::FirstFit => remaining.iter().position(|&cap| cap >= size),
            FitPolicy::WorstFit => remaining
                .iter()
                .enumerate()
                .filter(|&(_, &cap)| cap >= size)
                .max_by(|&(i, &a), &(j, &b)| a.cmp(&b).then(j.cmp(&i)))
                .map(|(i, _)| i),
        };
        match candidate {
            Some(bin) => {
                remaining[bin] -= size;
                placement[idx] = Some(bin);
                packed += size;
            }
            None => {
                unpacked += size;
            }
        }
    }
    // Normalize the zero-size marker to container 0 when possible, else None.
    for p in placement.iter_mut() {
        if *p == Some(usize::MAX) {
            *p = if containers.is_empty() { None } else { Some(0) };
        }
    }
    PackOutcome {
        placement,
        packed,
        unpacked,
        remaining,
    }
}

/// A multiset of container capacities, flattened into one sorted `Vec`
/// (ascending, duplicates adjacent).
///
/// The previous layout was a `BTreeMap<Time, u32>` of capacity →
/// count: every packing step chased tree nodes scattered across the
/// heap. The flat `Vec` keeps the whole multiset in one contiguous
/// allocation — the best-fit lookup is a branch-free binary search, a
/// packing step is one bounded `rotate_right` over adjacent memory, and
/// the multiset stays small (one entry per slack container), so the
/// O(n) shifts of `insert`/`remove` are cheap memmoves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapMultiset {
    /// Capacities in ascending order, one entry per container.
    caps: Vec<Time>,
}

impl CapMultiset {
    /// An empty multiset.
    pub fn new() -> Self {
        CapMultiset::default()
    }

    /// Removes every container.
    pub fn clear(&mut self) {
        self.caps.clear();
    }

    /// Number of containers (duplicates counted).
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the multiset holds no containers.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Inserts one container of capacity `cap`.
    pub fn insert(&mut self, cap: Time) {
        let p = self.caps.partition_point(|&c| c < cap);
        self.caps.insert(p, cap);
    }

    /// Removes one container of capacity `cap`.
    ///
    /// Returns `false` — leaving the multiset untouched — when no
    /// container of that capacity is present. Callers that provably
    /// inserted the capacity assert on the result; callers maintaining
    /// a long-lived multiset (the incremental C1 cache) treat `false`
    /// as proof of a stale/desynced cache and fall back to a full
    /// repack instead of killing the campaign worker.
    #[must_use]
    pub fn remove(&mut self, cap: Time) -> bool {
        let p = self.caps.partition_point(|&c| c < cap);
        if p < self.caps.len() && self.caps[p] == cap {
            self.caps.remove(p);
            true
        } else {
            false
        }
    }
}

/// Packing totals of [`pack`] computed against a capacity *multiset*
/// instead of an indexed container list — `O(items · log bins)` instead
/// of `O(items · bins)`, and the multiset can be patched incrementally
/// when only a few containers change between calls (the delta
/// evaluation path of `incdes-mapping`).
///
/// Returns `(packed, unpacked)`, exactly the totals [`pack`] reports
/// for the same item sizes and the container capacities in `bins`:
/// best-fit picks the smallest capacity ≥ size and worst-fit the
/// largest, so the multiset of remaining capacities evolves identically
/// to [`pack`]'s — index-order tie-breaks select *which* equal-capacity
/// container receives an item, never the totals. First-fit totals *do*
/// depend on container order, which a multiset cannot represent: the
/// call returns `None` and the caller must fall back to [`pack`].
///
/// `items_desc` must be sorted in decreasing order ([`pack`] considers
/// items that way); zero-sized items are skipped (they consume
/// nothing). The multiset is mutated during packing and restored before
/// returning.
pub fn pack_totals_multiset(
    items_desc: &[Time],
    bins: &mut CapMultiset,
    policy: FitPolicy,
) -> Option<(Time, Time)> {
    if matches!(policy, FitPolicy::FirstFit) {
        return None;
    }
    debug_assert!(
        items_desc.windows(2).all(|w| w[0] >= w[1]),
        "items must be sorted decreasing"
    );
    let mut packed = Time::ZERO;
    let mut unpacked = Time::ZERO;
    // Mutations to revert: `(taken, residual)` in application order.
    let mut ops: Vec<(Time, Time)> = Vec::new();
    let caps = &mut bins.caps;
    for &size in items_desc {
        if size.is_zero() {
            // Zero-sized items pack trivially and consume nothing.
            continue;
        }
        match policy {
            FitPolicy::BestFit => {
                // Best fit = smallest capacity ≥ size: one branch-free
                // binary search on the sorted flat array.
                let p = caps.partition_point(|&c| c < size);
                if p == caps.len() {
                    unpacked += size;
                    continue;
                }
                let c = caps[p];
                let rem = c - size;
                // Replace `c` by its residual, re-sorting with a single
                // bounded memmove: `rem < c`, so its slot is at or left
                // of `p` and everything beyond `p` is untouched.
                let q = caps[..p].partition_point(|&x| x < rem);
                caps[q..=p].rotate_right(1);
                caps[q] = rem;
                ops.push((c, rem));
                packed += size;
            }
            FitPolicy::WorstFit => {
                // Worst fit = largest capacity: the last element.
                match caps.last().copied() {
                    Some(c) if c >= size => {
                        caps.pop();
                        let rem = c - size;
                        let q = caps.partition_point(|&x| x < rem);
                        caps.insert(q, rem);
                        ops.push((c, rem));
                        packed += size;
                    }
                    _ => unpacked += size,
                }
            }
            FitPolicy::FirstFit => unreachable!("rejected above"),
        }
    }
    // Restore: undo each residual swap in reverse order.
    for &(taken, rem) in ops.iter().rev() {
        let q = caps.partition_point(|&x| x < rem);
        debug_assert!(caps[q] == rem, "residual {rem} came from this call");
        let p = caps[q + 1..].partition_point(|&x| x < taken) + q + 1;
        caps[q..p].rotate_left(1);
        caps[p - 1] = taken;
    }
    Some((packed, unpacked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn ts(vs: &[u64]) -> Vec<Time> {
        vs.iter().copied().map(Time::new).collect()
    }

    #[test]
    fn everything_fits_one_big_bin() {
        let out = pack(&ts(&[3, 5, 2]), &ts(&[20]), FitPolicy::BestFit);
        assert_eq!(out.unpacked, t(0));
        assert_eq!(out.packed, t(10));
        assert_eq!(out.remaining, vec![t(10)]);
        assert_eq!(out.unpacked_percent(), 0.0);
        assert!(out.placement.iter().all(|p| *p == Some(0)));
    }

    #[test]
    fn best_fit_prefers_tight_bin() {
        // Item 5 fits bins of 6 and 10 → best-fit picks 6.
        let out = pack(&ts(&[5]), &ts(&[10, 6]), FitPolicy::BestFit);
        assert_eq!(out.placement, vec![Some(1)]);
        assert_eq!(out.remaining, vec![t(10), t(1)]);
    }

    #[test]
    fn first_fit_takes_first() {
        let out = pack(&ts(&[5]), &ts(&[10, 6]), FitPolicy::FirstFit);
        assert_eq!(out.placement, vec![Some(0)]);
    }

    #[test]
    fn worst_fit_takes_roomiest() {
        let out = pack(&ts(&[5]), &ts(&[6, 10]), FitPolicy::WorstFit);
        assert_eq!(out.placement, vec![Some(1)]);
    }

    #[test]
    fn decreasing_order_packs_better() {
        // Classic case: items 6,5,4,3 into bins 9,9. Decreasing order
        // packs (6,3) and (5,4); increasing/greedy could fail.
        let out = pack(&ts(&[3, 4, 5, 6]), &ts(&[9, 9]), FitPolicy::BestFit);
        assert_eq!(out.unpacked, t(0));
    }

    #[test]
    fn overflow_reported() {
        let out = pack(&ts(&[8, 8]), &ts(&[10]), FitPolicy::BestFit);
        assert_eq!(out.packed, t(8));
        assert_eq!(out.unpacked, t(8));
        assert!((out.unpacked_percent() - 50.0).abs() < 1e-12);
        assert_eq!(out.placement.iter().filter(|p| p.is_none()).count(), 1);
    }

    #[test]
    fn no_containers() {
        let out = pack(&ts(&[4, 2]), &[], FitPolicy::BestFit);
        assert_eq!(out.unpacked, t(6));
        assert_eq!(out.unpacked_percent(), 100.0);
        assert_eq!(out.placement, vec![None, None]);
    }

    #[test]
    fn no_items() {
        let out = pack(&[], &ts(&[5]), FitPolicy::BestFit);
        assert_eq!(out.unpacked_percent(), 0.0);
        assert_eq!(out.packed, t(0));
    }

    #[test]
    fn zero_sized_items_trivially_packed() {
        let out = pack(&ts(&[0, 3]), &ts(&[3]), FitPolicy::BestFit);
        assert_eq!(out.unpacked, t(0));
        assert_eq!(out.placement[0], Some(0));
        assert_eq!(out.remaining, vec![t(0)]);
    }

    #[test]
    fn best_fit_beats_or_ties_worst_fit_here() {
        // Items (decreasing) 5,3,3 into bins {6,5}: best-fit puts the 5
        // into the 5-bin and both 3s into the 6-bin; worst-fit burns the
        // 6-bin on the 5 and strands the last 3.
        let items = ts(&[5, 3, 3]);
        let bins = ts(&[6, 5]);
        let best = pack(&items, &bins, FitPolicy::BestFit);
        let worst = pack(&items, &bins, FitPolicy::WorstFit);
        assert_eq!(best.unpacked, t(0));
        assert_eq!(worst.unpacked, t(3));
    }

    proptest! {
        /// Conservation: packed + unpacked equals the item total, and
        /// remaining capacities never go negative or exceed originals.
        #[test]
        fn prop_conservation(
            items in proptest::collection::vec(0u64..50, 0..30),
            bins in proptest::collection::vec(0u64..80, 0..15),
            policy in prop_oneof![
                Just(FitPolicy::BestFit),
                Just(FitPolicy::FirstFit),
                Just(FitPolicy::WorstFit)
            ],
        ) {
            let items = ts(&items);
            let bins_t = ts(&bins);
            let out = pack(&items, &bins_t, policy);
            let total: Time = items.iter().copied().sum();
            prop_assert_eq!(out.packed + out.unpacked, total);
            for (i, &rem) in out.remaining.iter().enumerate() {
                prop_assert!(rem <= bins_t[i]);
            }
            // Per-bin usage equals capacity - remaining.
            let mut used = vec![Time::ZERO; bins.len()];
            for (idx, p) in out.placement.iter().enumerate() {
                if let Some(b) = p {
                    if !items[idx].is_zero() {
                        used[*b] += items[idx];
                    }
                }
            }
            for (i, &u) in used.iter().enumerate() {
                prop_assert_eq!(u, bins_t[i] - out.remaining[i]);
            }
        }

        /// The multiset totals are *exactly* the indexed packer's totals
        /// for best-fit and worst-fit (the policies whose totals are a
        /// pure function of the capacity multiset), and the multiset is
        /// restored afterwards — the contract the incremental C1 bound
        /// is built on.
        #[test]
        fn prop_multiset_totals_match_pack(
            items in proptest::collection::vec(0u64..50, 0..30),
            bins in proptest::collection::vec(0u64..80, 0..15),
            best in 0u8..2,
        ) {
            let policy = if best == 0 { FitPolicy::BestFit } else { FitPolicy::WorstFit };
            let items_t = ts(&items);
            let bins_t = ts(&bins);
            let reference = pack(&items_t, &bins_t, policy);

            let mut sorted = items_t.clone();
            sorted.sort_by(|a, b| b.cmp(a));
            let mut multiset = CapMultiset::new();
            for &b in &bins_t {
                multiset.insert(b);
            }
            let snapshot = multiset.clone();
            let (packed, unpacked) =
                pack_totals_multiset(&sorted, &mut multiset, policy).expect("policy supported");
            prop_assert_eq!(packed, reference.packed);
            prop_assert_eq!(unpacked, reference.unpacked);
            prop_assert_eq!(&multiset, &snapshot, "multiset must be restored");
        }

        /// Long runs of equal-sized items (the synthetic future
        /// profiles' shape, which triggers the batched best-fit arm)
        /// still produce exactly the indexed packer's totals.
        #[test]
        fn prop_multiset_batching_matches_pack(
            size in 1u64..12,
            run in 1usize..60,
            extra in proptest::collection::vec(0u64..50, 0..8),
            bins in proptest::collection::vec(0u64..80, 0..12),
        ) {
            let mut items: Vec<u64> = vec![size; run];
            items.extend(extra);
            let items_t = ts(&items);
            let bins_t = ts(&bins);
            let reference = pack(&items_t, &bins_t, FitPolicy::BestFit);

            let mut sorted = items_t.clone();
            sorted.sort_by(|a, b| b.cmp(a));
            let mut multiset = CapMultiset::new();
            for &b in &bins_t {
                multiset.insert(b);
            }
            let snapshot = multiset.clone();
            let (packed, unpacked) =
                pack_totals_multiset(&sorted, &mut multiset, FitPolicy::BestFit).unwrap();
            prop_assert_eq!(packed, reference.packed);
            prop_assert_eq!(unpacked, reference.unpacked);
            prop_assert_eq!(&multiset, &snapshot);
        }

        /// First-fit is order-dependent: the multiset path refuses it.
        #[test]
        fn prop_multiset_rejects_first_fit(bins in proptest::collection::vec(1u64..10, 0..5)) {
            let mut multiset = CapMultiset::new();
            for &b in &ts(&bins) {
                multiset.insert(b);
            }
            prop_assert!(
                pack_totals_multiset(&[Time::new(1)], &mut multiset, FitPolicy::FirstFit).is_none()
            );
        }

        /// Best-fit-decreasing never leaves an item unpacked if some bin
        /// could still hold it.
        #[test]
        fn prop_no_fitting_item_stranded(
            items in proptest::collection::vec(1u64..50, 1..25),
            bins in proptest::collection::vec(1u64..80, 1..10),
        ) {
            let items = ts(&items);
            let bins_t = ts(&bins);
            let out = pack(&items, &bins_t, FitPolicy::BestFit);
            for (idx, p) in out.placement.iter().enumerate() {
                if p.is_none() {
                    let max_rem = out.remaining.iter().copied().max().unwrap();
                    prop_assert!(items[idx] > max_rem,
                        "item {} of size {} stranded with max remaining {}",
                        idx, items[idx], max_rem);
                }
            }
        }
    }
}
