//! Design criteria and metrics for incremental design (Pop et al., DAC 2001).
//!
//! Requirement (b) of the paper — *new future applications can be mapped
//! on the resulting system* — is quantified by two criteria:
//!
//! 1. **Slack clustering** ([`criteria::c1_processes`],
//!    [`criteria::c1_messages`]): how much of the *largest expected future
//!    application* cannot be packed into the current slack. Computed by
//!    bin packing ([`binpack`]) with the best-fit policy: future processes
//!    are the objects, slack gaps are the containers. Reported in percent
//!    (0 % = the whole future application fits, best).
//! 2. **Slack distribution** ([`criteria::c2_processes`],
//!    [`criteria::c2_messages`]): whether every period of length `Tmin`
//!    contains enough slack for the most demanding future application.
//!    `C2P` is the sum over processors of the minimum per-window slack;
//!    the objective penalizes `max(0, tneed − C2P)` (and the same for the
//!    bus with `bneed`/`C2m`).
//!
//! The combined [`objective::DesignCost`] is
//!
//! ```text
//! C = w1P·C1P + w1m·C1m + w2P·max(0, tneed − C2P) + w2m·max(0, bneed − C2m)
//! ```
//!
//! # Example
//!
//! ```
//! use incdes_model::{Architecture, BusConfig, FutureProfile, Time};
//! use incdes_sched::{ScheduleTable, SlackProfile};
//! use incdes_metrics::objective::{evaluate, Weights};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .pe("N1")
//!     .pe("N2")
//!     .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
//!     .build()?;
//! // An empty system: all slack free, so the future application fits.
//! let table = ScheduleTable::empty(Time::new(480));
//! let slack = SlackProfile::from_table(&arch, &table);
//! let cost = evaluate(&arch, &slack, &FutureProfile::slide_example(), &Weights::default());
//! assert_eq!(cost.c1_processes, 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binpack;
pub mod c1cache;
pub mod c2cache;
pub mod criteria;
pub mod objective;

pub use binpack::{pack, pack_totals_multiset, CapMultiset, FitPolicy, PackOutcome};
pub use c1cache::C1Cache;
pub use c2cache::C2Cache;
pub use criteria::{
    c1_messages, c1_processes, c2_intervals, c2_messages, c2_processes, c2_processes_of,
};
pub use objective::{evaluate, evaluate_with_c1_delta, evaluate_with_c2, DesignCost, Weights};
