//! The incremental C1 bin-packing bound.
//!
//! The C1 metrics pack the largest expected future application into the
//! slack containers of the current design alternative — every gap of
//! every PE for `C1P`, every free bus window for `C1m`. The plain
//! [`crate::criteria::c1_processes`] / [`crate::criteria::c1_messages`]
//! path re-collects all container sizes and re-runs the `O(items ·
//! bins)` packer on each evaluation, which scales with the *frozen*
//! system size even though a design move changes only a handful of
//! containers.
//!
//! [`C1Cache`] keeps the container capacities in a sorted multiset and
//! patches only the gap-list segments the delta invalidated: the
//! `Arc`-backed [`SlackProfile`] storage makes "unchanged" detectable by
//! pointer identity (`Arc::ptr_eq`), so a single-move neighbor updates
//! the few PEs (and possibly the bus) whose lists were rebuilt and
//! repacks in `O(items · log bins)`. The totals are **exactly** the
//! packer's — see [`crate::binpack::pack_totals_multiset`] for why the
//! multiset evolution is equivalent for best-fit and worst-fit — and
//! the order-dependent first-fit policy reports itself unsupported so
//! callers fall back to the full packer.

use crate::binpack::{pack_totals_multiset, CapMultiset, FitPolicy};
use incdes_model::{Architecture, FutureProfile, Time};
use incdes_obs::counters::{self, Counter};
use incdes_sched::slack::GapList;
use incdes_sched::SlackProfile;
use std::sync::Arc;

/// Percentage of total item size left unpacked (0 if there were none) —
/// the same arithmetic as [`crate::binpack::PackOutcome::unpacked_percent`],
/// on identical integer totals, so the floats are bit-equal.
fn unpacked_percent(packed: Time, unpacked: Time) -> f64 {
    let total = packed + unpacked;
    if total.is_zero() {
        0.0
    } else {
        100.0 * unpacked.as_f64() / total.as_f64()
    }
}

/// Incrementally maintained C1 packing state for one evaluation context
/// (one architecture, one future profile, one horizon — the cache
/// rebuilds itself whenever any of those change, so reuse across
/// contexts is safe, just not profitable).
#[derive(Debug, Default)]
pub struct C1Cache {
    /// Cache generation: what the items and multisets were built for.
    /// The items depend on the future profile, the horizon and the
    /// bus's bytes-per-tick rate (nothing else of the architecture), so
    /// those three plus the policy and the PE count are the guard.
    future: Option<FutureProfile>,
    bytes_per_tick: u32,
    horizon: Time,
    policy: Option<FitPolicy>,
    /// Future process items, sorted decreasing.
    proc_items: Vec<Time>,
    /// Future message items (already converted to bus time), sorted
    /// decreasing.
    msg_items: Vec<Time>,
    /// Last-seen gap storage per PE. Holding the `Arc` keeps the
    /// allocation alive, which is what makes `Arc::ptr_eq` a sound
    /// unchanged-detector (no ABA through reuse of a freed address).
    pe_seen: Vec<GapList>,
    bus_seen: Option<GapList>,
    /// Capacity multisets of all PE gaps and all bus windows.
    pe_bins: CapMultiset,
    bus_bins: CapMultiset,
    /// Diagnostics: resources patched (vs. aliased) since construction.
    patched_resources: usize,
    evaluations: usize,
}

impl C1Cache {
    /// An empty cache; the first evaluation populates it.
    pub fn new() -> Self {
        C1Cache::default()
    }

    /// Number of per-resource multiset patches performed so far —
    /// resources whose gap storage was *not* aliased from the previous
    /// evaluation. Diagnostics for tests and benches.
    pub fn patched_resource_count(&self) -> usize {
        self.patched_resources
    }

    /// Number of evaluations served.
    pub fn evaluation_count(&self) -> usize {
        self.evaluations
    }

    /// The `(C1P, C1m)` terms of `slack`, patching only the containers
    /// whose storage changed since the previous call. Returns `None`
    /// for [`FitPolicy::FirstFit`] (order-dependent totals — callers
    /// fall back to the full packer).
    pub fn c1_terms(
        &mut self,
        arch: &Architecture,
        slack: &SlackProfile,
        future: &FutureProfile,
        policy: FitPolicy,
    ) -> Option<(f64, f64)> {
        if matches!(policy, FitPolicy::FirstFit) {
            return None;
        }
        self.evaluations += 1;
        let horizon = slack.horizon();
        let fresh = self.policy != Some(policy)
            || self.horizon != horizon
            || self.pe_seen.len() != slack.pe_count()
            || self.bytes_per_tick != arch.bus().bytes_per_tick
            || self.future.as_ref() != Some(future);
        if fresh || !self.patch(slack) {
            // A failed patch means a seen-list/multiset mismatch (stale
            // or raced cache state — e.g. a seen `Arc` that was swapped
            // out from under the cache): the multisets can no longer be
            // trusted, so repack everything from the slack profile.
            counters::bump(Counter::C1Repacked);
            self.rebuild(arch, slack, future, policy);
        }
        let proc = pack_totals_multiset(&self.proc_items, &mut self.pe_bins, policy)
            .expect("policy checked above");
        let msg = pack_totals_multiset(&self.msg_items, &mut self.bus_bins, policy)
            .expect("policy checked above");
        Some((
            unpacked_percent(proc.0, proc.1),
            unpacked_percent(msg.0, msg.1),
        ))
    }

    /// Full rebuild: items, multisets and seen-storage snapshots.
    fn rebuild(
        &mut self,
        arch: &Architecture,
        slack: &SlackProfile,
        future: &FutureProfile,
        policy: FitPolicy,
    ) {
        let horizon = slack.horizon();
        self.horizon = horizon;
        self.policy = Some(policy);
        self.future = Some(future.clone());
        self.bytes_per_tick = arch.bus().bytes_per_tick;
        self.proc_items = future.expected_process_items(horizon);
        self.proc_items.sort_by(|a, b| b.cmp(a));
        self.msg_items =
            future.expected_message_items(horizon, |bytes| arch.bus().transmission_time(bytes));
        self.msg_items.sort_by(|a, b| b.cmp(a));

        self.pe_bins.clear();
        self.pe_seen.clear();
        for i in 0..slack.pe_count() {
            let shared = slack.gaps_shared(incdes_model::PeId(i as u32));
            for &(s, e) in shared.iter() {
                self.pe_bins.insert(e - s);
            }
            self.pe_seen.push(Arc::clone(shared));
        }
        self.bus_bins.clear();
        let shared = slack.bus_windows_shared();
        for &(s, e) in shared.iter() {
            self.bus_bins.insert(e - s);
        }
        self.bus_seen = Some(Arc::clone(shared));
    }

    /// Patch pass: swap out only the resources whose storage changed.
    ///
    /// Returns `false` when a seen gap is missing from its multiset —
    /// the cache state is inconsistent with what was actually inserted
    /// (stale or raced), the multisets are left partially modified, and
    /// the caller must [`rebuild`](Self::rebuild).
    fn patch(&mut self, slack: &SlackProfile) -> bool {
        for i in 0..self.pe_seen.len() {
            let shared = slack.gaps_shared(incdes_model::PeId(i as u32));
            if Arc::ptr_eq(&self.pe_seen[i], shared) {
                continue;
            }
            self.patched_resources += 1;
            counters::bump(Counter::C1Patched);
            for &(s, e) in self.pe_seen[i].iter() {
                if !self.pe_bins.remove(e - s) {
                    return false;
                }
            }
            for &(s, e) in shared.iter() {
                self.pe_bins.insert(e - s);
            }
            self.pe_seen[i] = Arc::clone(shared);
        }
        let shared = slack.bus_windows_shared();
        let stale = match &self.bus_seen {
            Some(seen) => !Arc::ptr_eq(seen, shared),
            None => true,
        };
        if stale {
            self.patched_resources += 1;
            counters::bump(Counter::C1Patched);
            if let Some(seen) = &self.bus_seen {
                for &(s, e) in seen.iter() {
                    if !self.bus_bins.remove(e - s) {
                        return false;
                    }
                }
            }
            for &(s, e) in shared.iter() {
                self.bus_bins.insert(e - s);
            }
            self.bus_seen = Some(Arc::clone(shared));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::{c1_messages, c1_processes};
    use incdes_model::{BusConfig, Histogram};
    use incdes_sched::SlackProfile;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn profile() -> FutureProfile {
        FutureProfile::new(
            t(120),
            t(40),
            t(10),
            Histogram::point(t(20)),
            Histogram::point(4u32),
        )
    }

    /// Hand-rolled profiles with evolving shared storage: the cache must
    /// track exactly the full recomputation at every step.
    #[test]
    fn cache_tracks_full_recomputation() {
        let arch = arch2();
        let future = profile();
        let mut cache = C1Cache::new();

        let shared_pe1: GapList = vec![(t(0), t(100))].into();
        let bus: GapList = vec![(t(0), t(10)), (t(20), t(30))].into();
        let steps: Vec<Vec<(Time, Time)>> = vec![
            vec![(t(0), t(480))],
            vec![(t(0), t(30)), (t(60), t(480))],
            vec![(t(0), t(30)), (t(60), t(400))],
            vec![(t(0), t(30)), (t(60), t(400))],
        ];
        for pe0 in steps {
            let slack = SlackProfile::from_shared(
                t(480),
                vec![pe0.into(), Arc::clone(&shared_pe1)].into(),
                Arc::clone(&bus),
            );
            let (c1p, c1m) = cache
                .c1_terms(&arch, &slack, &future, FitPolicy::BestFit)
                .unwrap();
            assert_eq!(c1p, c1_processes(&slack, &future, FitPolicy::BestFit));
            assert_eq!(c1m, c1_messages(&arch, &slack, &future, FitPolicy::BestFit));
        }
        // PE1 and the bus never changed storage → only PE0 was patched
        // (3 patch passes after the initial rebuild).
        assert_eq!(cache.patched_resource_count(), 3);
        assert_eq!(cache.evaluation_count(), 4);
    }

    #[test]
    fn first_fit_reports_unsupported() {
        let arch = arch2();
        let slack = SlackProfile::from_parts(t(480), vec![vec![], vec![]], vec![]);
        assert!(C1Cache::new()
            .c1_terms(&arch, &slack, &profile(), FitPolicy::FirstFit)
            .is_none());
    }

    #[test]
    fn worst_fit_supported_and_exact() {
        let arch = arch2();
        let future = profile();
        let slack = SlackProfile::from_parts(
            t(480),
            vec![vec![(t(0), t(25)), (t(100), t(130))], vec![(t(0), t(480))]],
            vec![(t(0), t(10))],
        );
        let mut cache = C1Cache::new();
        let (c1p, c1m) = cache
            .c1_terms(&arch, &slack, &future, FitPolicy::WorstFit)
            .unwrap();
        assert_eq!(c1p, c1_processes(&slack, &future, FitPolicy::WorstFit));
        assert_eq!(
            c1m,
            c1_messages(&arch, &slack, &future, FitPolicy::WorstFit)
        );
    }

    /// A cache whose seen-storage lineage no longer matches what was
    /// inserted (a stale/raced patch — the seen `Arc` names gaps that
    /// were never added to the multiset) must detect the inconsistency
    /// and fall back to a full repack instead of panicking inside
    /// `multiset_remove`.
    #[test]
    fn mismatched_lineage_falls_back_to_rebuild() {
        let arch = arch2();
        let future = profile();
        let mut cache = C1Cache::new();
        let pe1: GapList = vec![(t(0), t(100))].into();
        let bus: GapList = vec![(t(0), t(10))].into();
        let first = SlackProfile::from_shared(
            t(480),
            vec![vec![(t(0), t(30))].into(), Arc::clone(&pe1)].into(),
            Arc::clone(&bus),
        );
        cache
            .c1_terms(&arch, &first, &future, FitPolicy::BestFit)
            .unwrap();
        // Simulate the raced state: PE0's seen storage is swapped for an
        // Arc whose gaps were never inserted into `pe_bins`.
        cache.pe_seen[0] = vec![(t(0), t(77))].into();
        let second = SlackProfile::from_shared(
            t(480),
            vec![vec![(t(0), t(60))].into(), Arc::clone(&pe1)].into(),
            Arc::clone(&bus),
        );
        let (c1p, c1m) = cache
            .c1_terms(&arch, &second, &future, FitPolicy::BestFit)
            .unwrap();
        assert_eq!(c1p, c1_processes(&second, &future, FitPolicy::BestFit));
        assert_eq!(
            c1m,
            c1_messages(&arch, &second, &future, FitPolicy::BestFit)
        );
        // And the repaired cache keeps patching correctly afterwards.
        let third = SlackProfile::from_shared(
            t(480),
            vec![vec![(t(10), t(25))].into(), Arc::clone(&pe1)].into(),
            Arc::clone(&bus),
        );
        let (c1p, _) = cache
            .c1_terms(&arch, &third, &future, FitPolicy::BestFit)
            .unwrap();
        assert_eq!(c1p, c1_processes(&third, &future, FitPolicy::BestFit));
    }

    /// A future-profile change (new context reusing a cache) forces a
    /// rebuild — stale items would silently misprice C1 otherwise.
    #[test]
    fn future_change_rebuilds() {
        let arch = arch2();
        let slack = SlackProfile::from_parts(
            t(480),
            vec![vec![(t(0), t(30))], vec![(t(0), t(480))]],
            vec![(t(0), t(10))],
        );
        let mut cache = C1Cache::new();
        let small = profile();
        let (c1p_small, _) = cache
            .c1_terms(&arch, &slack, &small, FitPolicy::BestFit)
            .unwrap();
        assert_eq!(c1p_small, c1_processes(&slack, &small, FitPolicy::BestFit));
        // Same horizon/policy/PE count, very different demand.
        let big = FutureProfile::new(
            t(120),
            t(400),
            t(10),
            Histogram::point(t(200)),
            Histogram::point(4u32),
        );
        let (c1p_big, _) = cache
            .c1_terms(&arch, &slack, &big, FitPolicy::BestFit)
            .unwrap();
        assert_eq!(c1p_big, c1_processes(&slack, &big, FitPolicy::BestFit));
        assert_ne!(c1p_small, c1p_big, "the demand change must be visible");
    }

    /// A PE-count change (new context reusing a cache) forces a rebuild
    /// instead of a bogus patch.
    #[test]
    fn pe_count_change_rebuilds() {
        let arch = arch2();
        let future = profile();
        let mut cache = C1Cache::new();
        let slack3 = SlackProfile::from_parts(t(480), vec![vec![]; 3], vec![]);
        cache
            .c1_terms(&arch, &slack3, &future, FitPolicy::BestFit)
            .unwrap();
        let slack2 = SlackProfile::from_parts(t(480), vec![vec![(t(0), t(480))]; 2], vec![]);
        let (c1p, _) = cache
            .c1_terms(&arch, &slack2, &future, FitPolicy::BestFit)
            .unwrap();
        assert_eq!(c1p, c1_processes(&slack2, &future, FitPolicy::BestFit));
    }
}
