//! Splice-aware cache for the C2 (slack distribution) criterion.
//!
//! [`criteria::c2_intervals`](crate::criteria::c2_intervals) scans every
//! `t_min` window of the horizon on every call. The incremental
//! evaluation engine already shares gap lists by `Arc` — an untouched
//! resource aliases the previous evaluation's storage — so the cheap
//! cache is pointer identity: same `Arc`, same term. [`C2Cache`] keeps
//! that fast path and adds a second tier for the lists that *did*
//! change: it retains the per-window slack vector of the previous list
//! and, on a storage miss, diffs the two interval lists (common prefix
//! and suffix are found in one linear pass — a delta-spliced schedule
//! changes a handful of adjacent reservations, so the differing middle
//! is short) and recomputes only the windows the changed span
//! intersects. Everything outside the span keeps its cached per-window
//! slack, because the interval lists are sorted and disjoint: a window
//! that intersects no changed interval has a bit-identical overlap sum.
//!
//! The terms produced are exactly
//! [`c2_intervals`](crate::criteria::c2_intervals) — the equivalence is
//! pinned by randomized tests below.

use incdes_model::Time;
use incdes_obs::counters::{self, Counter};
use incdes_sched::slack::{window_overlap, GapList};
use std::sync::Arc;

/// One cached interval list with its per-window slack decomposition.
#[derive(Debug)]
struct Entry {
    /// The storage the windows were measured on (holding the `Arc`
    /// keeps it alive, making pointer identity a sound cache key).
    arc: GapList,
    /// Slack per full `t_min` window (a single `[0, horizon)` entry
    /// when the horizon is shorter than `t_min`).
    windows: Vec<Time>,
    /// `windows.iter().min()` — the C2 term.
    min: Time,
}

/// Per-resource C2 term cache with window-level incremental updates.
///
/// One slot per PE plus one for the bus. Three tiers per lookup:
/// pointer-identical storage returns the cached minimum, a changed list
/// recomputes only the windows its diff span intersects, and anything
/// else (first sight, window-grid change) rebuilds from scratch.
#[derive(Debug, Default)]
pub struct C2Cache {
    pe: Vec<Option<Entry>>,
    bus: Option<Entry>,
    /// The window grid the cached entries were built for; a change
    /// (new horizon or `t_min`) invalidates everything.
    grid: Option<(Time, Time)>,
    windows_recomputed: usize,
    full_rebuilds: usize,
}

impl C2Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        C2Cache::default()
    }

    /// The C2 term of PE `index` for `intervals` over `horizon` with
    /// window length `t_min` — bit-equal to
    /// [`c2_intervals`](crate::criteria::c2_intervals) on the same
    /// inputs.
    pub fn pe_term(
        &mut self,
        index: usize,
        intervals: &GapList,
        horizon: Time,
        t_min: Time,
    ) -> Time {
        self.check_grid(horizon, t_min);
        if index >= self.pe.len() {
            self.pe.resize_with(index + 1, || None);
        }
        Self::term(
            &mut self.pe[index],
            intervals,
            horizon,
            t_min,
            &mut self.windows_recomputed,
            &mut self.full_rebuilds,
        )
    }

    /// The C2 term of the bus window list — see [`Self::pe_term`].
    pub fn bus_term(&mut self, intervals: &GapList, horizon: Time, t_min: Time) -> Time {
        self.check_grid(horizon, t_min);
        Self::term(
            &mut self.bus,
            intervals,
            horizon,
            t_min,
            &mut self.windows_recomputed,
            &mut self.full_rebuilds,
        )
    }

    /// Drops cached slots beyond `n` PEs (and allocates up to `n`).
    pub fn set_pe_count(&mut self, n: usize) {
        self.pe.truncate(n);
        self.pe.resize_with(n, || None);
    }

    /// Total windows recomputed by the incremental tier (diagnostics:
    /// splice-aware updates should touch far fewer windows than a full
    /// scan).
    pub fn windows_recomputed(&self) -> usize {
        self.windows_recomputed
    }

    /// Full per-window rebuilds (first sight of a resource, or a list
    /// diff spanning the whole horizon).
    pub fn full_rebuilds(&self) -> usize {
        self.full_rebuilds
    }

    fn check_grid(&mut self, horizon: Time, t_min: Time) {
        if self.grid != Some((horizon, t_min)) {
            for slot in &mut self.pe {
                *slot = None;
            }
            self.bus = None;
            self.grid = Some((horizon, t_min));
        }
    }

    fn term(
        slot: &mut Option<Entry>,
        intervals: &GapList,
        horizon: Time,
        t_min: Time,
        windows_recomputed: &mut usize,
        full_rebuilds: &mut usize,
    ) -> Time {
        if t_min.is_zero() {
            return Time::ZERO;
        }
        match slot {
            Some(e) if Arc::ptr_eq(&e.arc, intervals) => {
                counters::bump(Counter::C2IdentityHits);
                e.min
            }
            Some(e) => Self::update(e, intervals, horizon, t_min, windows_recomputed),
            None => {
                *full_rebuilds += 1;
                counters::bump(Counter::C2FullRebuilds);
                let e = Self::build(intervals, horizon, t_min);
                let min = e.min;
                *slot = Some(e);
                min
            }
        }
    }

    fn build(intervals: &GapList, horizon: Time, t_min: Time) -> Entry {
        let full_windows = horizon.ticks() / t_min.ticks();
        let mut windows = Vec::with_capacity(full_windows.max(1) as usize);
        if full_windows == 0 {
            windows.push(window_overlap(intervals, Time::ZERO, horizon));
        } else {
            for k in 0..full_windows {
                let from = Time::new(k * t_min.ticks());
                windows.push(window_overlap(intervals, from, from + t_min));
            }
        }
        let min = *windows.iter().min().expect("at least one window");
        Entry {
            arc: Arc::clone(intervals),
            windows,
            min,
        }
    }

    /// Recomputes only the windows intersecting the span where the two
    /// (sorted, disjoint) interval lists differ.
    fn update(
        e: &mut Entry,
        intervals: &GapList,
        horizon: Time,
        t_min: Time,
        windows_recomputed: &mut usize,
    ) -> Time {
        let old: &[(Time, Time)] = &e.arc;
        let new: &[(Time, Time)] = intervals;
        let overlap_max = old.len().min(new.len());
        let mut p = 0usize;
        while p < overlap_max && old[p] == new[p] {
            p += 1;
        }
        if p == old.len() && p == new.len() {
            // Value-equal storage under a new allocation: adopt it so
            // the next lookup hits the pointer tier.
            e.arc = Arc::clone(intervals);
            return e.min;
        }
        let mut s = 0usize;
        while s < overlap_max - p && old[old.len() - 1 - s] == new[new.len() - 1 - s] {
            s += 1;
        }
        // Both middles lie inside [lo, hi); every interval outside the
        // middles is shared, so windows disjoint from the span keep a
        // bit-identical overlap sum.
        let old_mid = &old[p..old.len() - s];
        let new_mid = &new[p..new.len() - s];
        let lo = match (old_mid.first(), new_mid.first()) {
            (Some(a), Some(b)) => a.0.min(b.0),
            (Some(a), None) => a.0,
            (None, Some(b)) => b.0,
            (None, None) => unreachable!("lists differ"),
        };
        let hi = match (old_mid.last(), new_mid.last()) {
            (Some(a), Some(b)) => a.1.max(b.1),
            (Some(a), None) => a.1,
            (None, Some(b)) => b.1,
            (None, None) => unreachable!("lists differ"),
        };
        let full_windows = horizon.ticks() / t_min.ticks();
        if full_windows == 0 {
            *windows_recomputed += 1;
            counters::bump(Counter::C2WindowsRecomputed);
            e.windows[0] = window_overlap(new, Time::ZERO, horizon);
        } else {
            debug_assert_eq!(e.windows.len() as u64, full_windows, "grid is stable");
            let lo_w = (lo.ticks() / t_min.ticks()).min(full_windows);
            let hi_w = ((hi.ticks() + t_min.ticks() - 1) / t_min.ticks()).min(full_windows);
            for k in lo_w..hi_w {
                let from = Time::new(k * t_min.ticks());
                e.windows[k as usize] = window_overlap(new, from, from + t_min);
                *windows_recomputed += 1;
                counters::bump(Counter::C2WindowsRecomputed);
            }
        }
        e.min = *e.windows.iter().min().expect("at least one window");
        e.arc = Arc::clone(intervals);
        e.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::c2_intervals;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    /// Deterministic xorshift* so the tests need no external RNG crate.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Sorted, disjoint interval list inside [0, horizon).
    fn random_intervals(rng: &mut Lcg, horizon: u64) -> Vec<(Time, Time)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        while cursor + 2 < horizon {
            cursor += rng.below(40);
            let len = 1 + rng.below(30);
            let end = (cursor + len).min(horizon);
            if cursor >= end {
                break;
            }
            out.push((t(cursor), t(end)));
            cursor = end + 1;
        }
        out
    }

    /// A localized mutation: drop, shrink or insert one interval.
    fn mutate(rng: &mut Lcg, list: &[(Time, Time)], horizon: u64) -> Vec<(Time, Time)> {
        let mut out = list.to_vec();
        if out.is_empty() {
            out.push((t(rng.below(horizon / 2)), t(horizon / 2 + 1)));
            return out;
        }
        let i = rng.below(out.len() as u64) as usize;
        match rng.below(3) {
            0 => {
                out.remove(i);
            }
            1 => {
                let (s, e) = out[i];
                if e - s > t(1) {
                    out[i] = (s, e - t(1));
                } else {
                    out.remove(i);
                }
            }
            _ => {
                let (s, e) = out[i];
                if e - s > t(2) {
                    // Split: carve a hole in the middle.
                    let mid = s + (e - s) / 2;
                    out[i] = (s, mid);
                    out.insert(i + 1, (mid + t(1), e));
                }
            }
        }
        out
    }

    #[test]
    fn matches_c2_intervals_across_mutation_chains() {
        let mut rng = Lcg(0x9e3779b97f4a7c15);
        for &(horizon, t_min) in &[(480u64, 120u64), (480, 70), (60, 120), (997, 13)] {
            let mut cache = C2Cache::new();
            let mut list: GapList = random_intervals(&mut rng, horizon).into();
            for _ in 0..200 {
                let expect = c2_intervals(&list, t(horizon), t(t_min));
                let got = cache.pe_term(0, &list, t(horizon), t(t_min));
                assert_eq!(got, expect, "H={horizon} t_min={t_min} list={list:?}");
                // Pointer-identity hit must agree too.
                assert_eq!(cache.pe_term(0, &list, t(horizon), t(t_min)), expect);
                list = mutate(&mut rng, &list, horizon).into();
            }
        }
    }

    #[test]
    fn localized_change_recomputes_few_windows() {
        let mut cache = C2Cache::new();
        let horizon = t(1200);
        let t_min = t(100);
        let a: Vec<(Time, Time)> = (0..12)
            .map(|k| (t(k * 100 + 10), t(k * 100 + 60)))
            .collect();
        let mut b = a.clone();
        b[5] = (t(515), t(555)); // only window 5 is affected
        let a: GapList = a.into();
        let b: GapList = b.into();
        cache.pe_term(0, &a, horizon, t_min);
        let before = cache.windows_recomputed();
        let got = cache.pe_term(0, &b, horizon, t_min);
        assert_eq!(got, c2_intervals(&b, horizon, t_min));
        assert_eq!(
            cache.windows_recomputed() - before,
            1,
            "a one-interval change inside one window recomputes one window"
        );
    }

    #[test]
    fn value_equal_lists_swap_storage_without_recompute() {
        let mut cache = C2Cache::new();
        let a: GapList = vec![(t(0), t(50)), (t(100), t(150))].into();
        let b: GapList = a.to_vec().into();
        let term = cache.pe_term(0, &a, t(480), t(120));
        let before = cache.windows_recomputed();
        assert_eq!(cache.pe_term(0, &b, t(480), t(120)), term);
        assert_eq!(cache.windows_recomputed(), before);
        // And the adopted storage now hits the pointer tier.
        assert_eq!(cache.pe_term(0, &b, t(480), t(120)), term);
    }

    #[test]
    fn zero_t_min_and_short_horizon_edges() {
        let mut cache = C2Cache::new();
        let a: GapList = vec![(t(5), t(25))].into();
        assert_eq!(cache.pe_term(0, &a, t(480), Time::ZERO), Time::ZERO);
        // Horizon shorter than t_min: the single [0, horizon) window.
        assert_eq!(
            cache.pe_term(0, &a, t(60), t(120)),
            c2_intervals(&a, t(60), t(120))
        );
        let b: GapList = vec![(t(5), t(20))].into();
        assert_eq!(
            cache.pe_term(0, &b, t(60), t(120)),
            c2_intervals(&b, t(60), t(120))
        );
    }

    #[test]
    fn grid_change_invalidates() {
        let mut cache = C2Cache::new();
        let a: GapList = vec![(t(0), t(50)), (t(200), t(300))].into();
        assert_eq!(
            cache.pe_term(0, &a, t(480), t(120)),
            c2_intervals(&a, t(480), t(120))
        );
        assert_eq!(
            cache.pe_term(0, &a, t(480), t(60)),
            c2_intervals(&a, t(480), t(60))
        );
        assert_eq!(
            cache.bus_term(&a, t(480), t(60)),
            c2_intervals(&a, t(480), t(60))
        );
    }
}
