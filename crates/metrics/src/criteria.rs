//! The two design criteria (slides 12–13).

use crate::binpack::{pack, FitPolicy, PackOutcome};
use incdes_model::{Architecture, FutureProfile, PeId, Time};
use incdes_sched::SlackProfile;

/// C1 for processes: the percentage of the largest expected future
/// application's process time that cannot be packed into the processor
/// slack of the current design alternative (0 % is best).
///
/// Uses best-fit-decreasing by default; `policy` is exposed for the
/// ablation study.
pub fn c1_processes(slack: &SlackProfile, future: &FutureProfile, policy: FitPolicy) -> f64 {
    c1_processes_outcome(slack, future, policy).unpacked_percent()
}

/// The full packing outcome behind [`c1_processes`], for diagnostics.
pub fn c1_processes_outcome(
    slack: &SlackProfile,
    future: &FutureProfile,
    policy: FitPolicy,
) -> PackOutcome {
    let items = future.expected_process_items(slack.horizon());
    let bins = slack.all_pe_gap_sizes();
    pack(&items, &bins, policy)
}

/// C1 for messages: the percentage of the largest expected future
/// application's bus time that cannot be packed into the free TDMA slot
/// windows (0 % is best).
pub fn c1_messages(
    arch: &Architecture,
    slack: &SlackProfile,
    future: &FutureProfile,
    policy: FitPolicy,
) -> f64 {
    c1_messages_outcome(arch, slack, future, policy).unpacked_percent()
}

/// The full packing outcome behind [`c1_messages`], for diagnostics.
pub fn c1_messages_outcome(
    arch: &Architecture,
    slack: &SlackProfile,
    future: &FutureProfile,
    policy: FitPolicy,
) -> PackOutcome {
    let items =
        future.expected_message_items(slack.horizon(), |bytes| arch.bus().transmission_time(bytes));
    let bins = slack.bus_window_sizes();
    pack(&items, &bins, policy)
}

/// C2 for processes: the sum over processors of the *minimum* slack found
/// in any window of length `t_min` (slide 13). The future application
/// arrives with period `t_min`, so the binding window on each processor
/// is its worst one.
pub fn c2_processes(slack: &SlackProfile, t_min: Time) -> Time {
    (0..slack.pe_count())
        .map(|i| c2_processes_of(slack, PeId(i as u32), t_min))
        .sum()
}

/// The per-PE term of [`c2_processes`]: the minimum slack of `pe` in any
/// window of length `t_min`. Exposed so the incremental evaluation
/// engine can cache the term of PEs the current application never
/// touches and recompute only the rest.
pub fn c2_processes_of(slack: &SlackProfile, pe: PeId, t_min: Time) -> Time {
    c2_intervals(slack.gaps_of(pe), slack.horizon(), t_min)
}

/// C2 for messages: the minimum free bus time in any window of length
/// `t_min`.
pub fn c2_messages(slack: &SlackProfile, t_min: Time) -> Time {
    c2_intervals(slack.bus_windows(), slack.horizon(), t_min)
}

/// The C2 kernel on a raw interval list: the minimum total overlap of
/// the (sorted, disjoint) intervals with any window of length `t_min`.
/// [`c2_processes_of`] and [`c2_messages`] are both this function, which
/// lets the evaluation engine run it directly on cached frozen-only gap
/// lists without materializing a `SlackProfile`. The overlap kernel is
/// `incdes_sched::slack::window_overlap` — the one also backing
/// `SlackProfile::pe_slack_in`/`bus_slack_in`, so the two paths cannot
/// drift.
pub fn c2_intervals(intervals: &[(Time, Time)], horizon: Time, t_min: Time) -> Time {
    min_window_slack(t_min, horizon, |a, b| {
        incdes_sched::slack::window_overlap(intervals, a, b)
    })
}

/// Minimum of `slack_in(k·t_min, (k+1)·t_min)` over the full windows in
/// the horizon. If the horizon is shorter than `t_min`, the single window
/// `[0, horizon)` is used.
fn min_window_slack(
    t_min: Time,
    horizon: Time,
    mut slack_in: impl FnMut(Time, Time) -> Time,
) -> Time {
    if t_min.is_zero() {
        return Time::ZERO;
    }
    let full_windows = horizon.ticks() / t_min.ticks();
    if full_windows == 0 {
        return slack_in(Time::ZERO, horizon);
    }
    (0..full_windows)
        .map(|k| {
            let from = Time::new(k * t_min.ticks());
            slack_in(from, from + t_min)
        })
        .min()
        .expect("at least one window")
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_graph::NodeId;
    use incdes_model::{AppId, BusConfig, Histogram};
    use incdes_sched::{JobId, ScheduleTable, ScheduledJob};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn job(pe: u32, node: u32, s: u64, e: u64) -> ScheduledJob {
        ScheduledJob {
            job: JobId::new(AppId(0), 0, 0, NodeId(node)),
            pe: PeId(pe),
            start: t(s),
            end: t(e),
            release: t(0),
            deadline: t(100_000),
        }
    }

    /// Profile demanding 40 ticks of 20-tick processes per 120-tick window.
    fn profile() -> FutureProfile {
        FutureProfile::new(
            t(120),
            t(40),
            t(10),
            Histogram::point(t(20)),
            Histogram::point(4u32),
        )
    }

    #[test]
    fn c1_zero_on_empty_system() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(480));
        let slack = SlackProfile::from_table(&arch, &table);
        assert_eq!(c1_processes(&slack, &profile(), FitPolicy::BestFit), 0.0);
        assert_eq!(
            c1_messages(&arch, &slack, &profile(), FitPolicy::BestFit),
            0.0
        );
    }

    #[test]
    fn c1_reflects_fragmentation_slide_12() {
        // Slide 12: the same total slack, clustered vs fragmented.
        // Future app: 8 processes of 20 ticks (160 total) over H=480.
        let arch = arch2();
        // Fragmented: every gap is 15 ticks — nothing fits → C1 = 100 %.
        let mut jobs = Vec::new();
        // Busy except 15-tick gaps: pattern [15 free, 45 busy] × 8 on both PEs.
        for pe in 0..2u32 {
            for k in 0..8u64 {
                jobs.push(job(pe, pe * 100 + k as u32, k * 60 + 15, (k + 1) * 60));
            }
        }
        let frag = ScheduleTable::new(t(480), jobs, vec![]);
        let slack_frag = SlackProfile::from_table(&arch, &frag);
        let c1_frag = c1_processes(&slack_frag, &profile(), FitPolicy::BestFit);
        assert_eq!(c1_frag, 100.0);

        // Clustered: one PE fully busy, the other has one huge gap.
        let jobs2 = vec![job(0, 0, 0, 480)];
        let clus = ScheduleTable::new(t(480), jobs2, vec![]);
        let slack_clus = SlackProfile::from_table(&arch, &clus);
        let c1_clus = c1_processes(&slack_clus, &profile(), FitPolicy::BestFit);
        assert_eq!(c1_clus, 0.0);
    }

    #[test]
    fn c2_minimum_window_slide_13() {
        let arch = arch2();
        // H = 480, Tmin = 120 → 4 windows. PE0 busy through window 2
        // ([240,360)), otherwise free; PE1 fully busy.
        let jobs = vec![job(0, 0, 240, 360), job(1, 1, 0, 480)];
        let table = ScheduleTable::new(t(480), jobs, vec![]);
        let slack = SlackProfile::from_table(&arch, &table);
        // PE0's min window slack = 0 (window 2), PE1's = 0 → C2P = 0.
        assert_eq!(c2_processes(&slack, t(120)), t(0));

        // Spread the same 120 ticks of load evenly: 30 busy per window.
        let jobs2 = vec![
            job(0, 0, 0, 30),
            job(0, 1, 120, 150),
            job(0, 2, 240, 270),
            job(0, 3, 360, 390),
            job(1, 4, 0, 480),
        ];
        let table2 = ScheduleTable::new(t(480), jobs2, vec![]);
        let slack2 = SlackProfile::from_table(&arch, &table2);
        // Every PE0 window has 90 slack → C2P = 90 ≥ tneed = 40.
        assert_eq!(c2_processes(&slack2, t(120)), t(90));
    }

    #[test]
    fn c2_messages_minimum_bus_window() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(480));
        let slack = SlackProfile::from_table(&arch, &table);
        // Bus fully free: each 120-window holds 120 ticks of slot time
        // (6 cycles × 20 slot ticks... cycle is 20 ticks of slot time).
        assert_eq!(c2_messages(&slack, t(120)), t(120));
    }

    #[test]
    fn c2_short_horizon_uses_single_window() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(60));
        let slack = SlackProfile::from_table(&arch, &table);
        // t_min 120 > horizon 60 → window [0, 60): 60 free per PE.
        assert_eq!(c2_processes(&slack, t(120)), t(120));
    }

    #[test]
    fn c2_zero_tmin_is_zero() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(60));
        let slack = SlackProfile::from_table(&arch, &table);
        assert_eq!(c2_processes(&slack, Time::ZERO), Time::ZERO);
    }

    #[test]
    fn c1_messages_with_busy_bus() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(480));
        let slack = SlackProfile::from_table(&arch, &table);
        // Demand: b_need 10/window × 4 windows = 40 ticks of 4-tick
        // messages into 48 windows of 10 → fits.
        assert_eq!(
            c1_messages(&arch, &slack, &profile(), FitPolicy::BestFit),
            0.0
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use incdes_model::{AppId, BusConfig, Histogram};
    use incdes_sched::{JobId, ScheduleTable, ScheduledJob};
    use proptest::prelude::*;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    /// Builds a valid random table on 2 PEs over [0, 480): non-overlapping
    /// jobs per PE from sorted random cut points.
    fn random_table(cuts: &[(u8, u64, u64)]) -> ScheduleTable {
        let mut jobs = Vec::new();
        let mut next_free = [0u64; 2];
        for (i, &(pe, off, len)) in cuts.iter().enumerate() {
            let pe = (pe % 2) as usize;
            let start = next_free[pe] + off % 40;
            let end = start + 1 + len % 30;
            if end > 480 {
                continue;
            }
            next_free[pe] = end;
            jobs.push(ScheduledJob {
                job: JobId::new(AppId(0), 0, i as u32, incdes_graph::NodeId(i as u32)),
                pe: PeId(pe as u32),
                start: t(start),
                end: t(end),
                release: t(0),
                deadline: t(100_000),
            });
        }
        ScheduleTable::new(t(480), jobs, vec![])
    }

    proptest! {
        /// C1 is a percentage and is 0 whenever total slack in one gap
        /// could hold everything... weaker invariant checked here:
        /// 0 <= C1 <= 100 on arbitrary tables.
        #[test]
        fn prop_c1_bounded(cuts in proptest::collection::vec((0u8..2, 0u64..40, 0u64..30), 0..20)) {
            let arch = arch2();
            let table = random_table(&cuts);
            let slack = SlackProfile::from_table(&arch, &table);
            let f = FutureProfile::new(
                t(120), t(60), t(10),
                Histogram::point(t(25)),
                Histogram::point(4u32),
            );
            let c1 = c1_processes(&slack, &f, FitPolicy::BestFit);
            prop_assert!((0.0..=100.0).contains(&c1));
        }

        /// C2P never exceeds total processor slack, and the per-window
        /// minimum times the window count never exceeds it either.
        #[test]
        fn prop_c2_bounded_by_total_slack(cuts in proptest::collection::vec((0u8..2, 0u64..40, 0u64..30), 0..20)) {
            let arch = arch2();
            let table = random_table(&cuts);
            let slack = SlackProfile::from_table(&arch, &table);
            let c2 = c2_processes(&slack, t(120));
            prop_assert!(c2 <= slack.total_pe_slack());
            // The minimum window is by definition <= the average window.
            let windows = 480 / 120;
            prop_assert!(c2.ticks() * windows <= slack.total_pe_slack().ticks() * 2);
        }

        /// Adding load (an extra job) never *increases* C2P.
        #[test]
        fn prop_c2_monotone_under_load(
            cuts in proptest::collection::vec((0u8..2, 0u64..40, 0u64..30), 0..12),
        ) {
            let arch = arch2();
            let base = random_table(&cuts);
            let slack_a = SlackProfile::from_table(&arch, &base);
            let c2_a = c2_processes(&slack_a, t(120));

            // Append one more job in the first free gap of PE0.
            let tls = base.pe_timelines(&arch);
            let Some(&(gs, ge)) = tls[0].gaps().first() else { return Ok(()); };
            if ge - gs < t(5) { return Ok(()); }
            let mut jobs = base.jobs().to_vec();
            jobs.push(ScheduledJob {
                job: JobId::new(AppId(1), 0, 0, incdes_graph::NodeId(0)),
                pe: PeId(0),
                start: gs,
                end: gs + t(5),
                release: t(0),
                deadline: t(100_000),
            });
            let loaded = ScheduleTable::new(t(480), jobs, base.messages().to_vec());
            let slack_b = SlackProfile::from_table(&arch, &loaded);
            let c2_b = c2_processes(&slack_b, t(120));
            prop_assert!(c2_b <= c2_a, "C2P must not grow with load: {c2_a} -> {c2_b}");
        }
    }
}
