//! The combined objective function (slide 14).
//!
//! ```text
//! C = w1P·C1P + w1m·C1m + w2P·max(0, tneed − C2P) + w2m·max(0, bneed − C2m)
//! ```
//!
//! The C1 terms are percentages; the C2 penalties are time deficits. The
//! weights calibrate the two scales against each other — the paper leaves
//! them as designer inputs, and our default weighs a 1 % packing failure
//! like a one-tick periodic deficit.

use crate::binpack::FitPolicy;
use crate::c1cache::C1Cache;
use crate::criteria::{c1_messages, c1_processes, c2_messages, c2_processes};
use incdes_model::{Architecture, FutureProfile, Time};
use incdes_sched::SlackProfile;
use serde::{Deserialize, Serialize};

/// Weights of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of `C1P` (process packing failure, %).
    pub w1_processes: f64,
    /// Weight of `C1m` (message packing failure, %).
    pub w1_messages: f64,
    /// Weight of `max(0, tneed − C2P)` (periodic processor deficit, ticks).
    pub w2_processes: f64,
    /// Weight of `max(0, bneed − C2m)` (periodic bus deficit, ticks).
    pub w2_messages: f64,
    /// Bin-packing policy used inside the C1 metrics (best-fit in the
    /// paper; exposed for the ablation study).
    pub fit_policy: FitPolicy,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            w1_processes: 1.0,
            w1_messages: 1.0,
            w2_processes: 1.0,
            w2_messages: 1.0,
            fit_policy: FitPolicy::BestFit,
        }
    }
}

/// The evaluated cost of one design alternative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignCost {
    /// C1P: % of future process time that does not pack.
    pub c1_processes: f64,
    /// C1m: % of future bus time that does not pack.
    pub c1_messages: f64,
    /// C2P: sum of per-processor minimum window slack (ticks).
    pub c2_processes: Time,
    /// C2m: minimum bus window slack (ticks).
    pub c2_messages: Time,
    /// `max(0, tneed − C2P)` in ticks.
    pub penalty_processes: Time,
    /// `max(0, bneed − C2m)` in ticks.
    pub penalty_messages: Time,
    /// The weighted total `C`.
    pub total: f64,
}

impl DesignCost {
    /// A cost representing an infeasible design alternative (`+∞`): any
    /// feasible alternative compares better.
    pub fn infeasible() -> Self {
        DesignCost {
            c1_processes: f64::INFINITY,
            c1_messages: f64::INFINITY,
            c2_processes: Time::ZERO,
            c2_messages: Time::ZERO,
            penalty_processes: Time::MAX,
            penalty_messages: Time::MAX,
            total: f64::INFINITY,
        }
    }

    /// True if this cost stems from a feasible schedule.
    pub fn is_feasible(&self) -> bool {
        self.total.is_finite()
    }
}

/// Evaluates the objective on a slack profile.
pub fn evaluate(
    arch: &Architecture,
    slack: &SlackProfile,
    future: &FutureProfile,
    weights: &Weights,
) -> DesignCost {
    let c2p = c2_processes(slack, future.t_min);
    let c2m = c2_messages(slack, future.t_min);
    evaluate_with_c2(arch, slack, future, weights, c2p, c2m)
}

/// [`evaluate`] with the C2 terms supplied by the caller.
///
/// The C2 metrics are per-resource minima, so the incremental evaluation
/// engine caches the per-PE terms of processors the current application
/// never touches (their gap lists are the frozen-only ones) and the bus
/// term when no new message was scheduled, recomputing only the rest.
/// The caller-supplied values must equal [`c2_processes`] /
/// [`c2_messages`] on `slack` — the weighting arithmetic lives only here
/// so the two paths cannot diverge.
pub fn evaluate_with_c2(
    arch: &Architecture,
    slack: &SlackProfile,
    future: &FutureProfile,
    weights: &Weights,
    c2p: Time,
    c2m: Time,
) -> DesignCost {
    debug_assert_eq!(c2p, c2_processes(slack, future.t_min));
    debug_assert_eq!(c2m, c2_messages(slack, future.t_min));
    let c1p = c1_processes(slack, future, weights.fit_policy);
    let c1m = c1_messages(arch, slack, future, weights.fit_policy);
    combine(future, weights, c1p, c1m, c2p, c2m)
}

/// [`evaluate_with_c2`] with the C1 terms additionally served by the
/// incremental bin-packing bound: `cache` keeps the slack containers in
/// a patched capacity multiset (see [`C1Cache`]) and repacks only the
/// gap-list segments the delta invalidated, detected by `Arc` identity
/// of the profile's shared storage. The order-dependent
/// [`FitPolicy::FirstFit`] falls back to the full packer inside, so the
/// result is identical to [`evaluate_with_c2`] for every policy — the
/// weighting arithmetic is shared, and the debug assertion pins the C1
/// equality on every call of a debug build.
pub fn evaluate_with_c1_delta(
    arch: &Architecture,
    slack: &SlackProfile,
    future: &FutureProfile,
    weights: &Weights,
    c2p: Time,
    c2m: Time,
    cache: &mut C1Cache,
) -> DesignCost {
    debug_assert_eq!(c2p, c2_processes(slack, future.t_min));
    debug_assert_eq!(c2m, c2_messages(slack, future.t_min));
    let (c1p, c1m) = match cache.c1_terms(arch, slack, future, weights.fit_policy) {
        Some(terms) => terms,
        None => (
            c1_processes(slack, future, weights.fit_policy),
            c1_messages(arch, slack, future, weights.fit_policy),
        ),
    };
    debug_assert_eq!(c1p, c1_processes(slack, future, weights.fit_policy));
    debug_assert_eq!(c1m, c1_messages(arch, slack, future, weights.fit_policy));
    combine(future, weights, c1p, c1m, c2p, c2m)
}

/// The weighting arithmetic shared by every evaluation path, so cached,
/// incremental and fresh criteria cannot diverge in the final cost.
fn combine(
    future: &FutureProfile,
    weights: &Weights,
    c1p: f64,
    c1m: f64,
    c2p: Time,
    c2m: Time,
) -> DesignCost {
    let pen_p = future.t_need.saturating_sub(c2p);
    let pen_m = future.b_need.saturating_sub(c2m);
    let total = weights.w1_processes * c1p
        + weights.w1_messages * c1m
        + weights.w2_processes * pen_p.as_f64()
        + weights.w2_messages * pen_m.as_f64();
    DesignCost {
        c1_processes: c1p,
        c1_messages: c1m,
        c2_processes: c2p,
        c2_messages: c2m,
        penalty_processes: pen_p,
        penalty_messages: pen_m,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_graph::NodeId;
    use incdes_model::{AppId, BusConfig, Histogram, PeId};
    use incdes_sched::{JobId, ScheduleTable, ScheduledJob, SlackProfile};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn profile() -> FutureProfile {
        FutureProfile::new(
            t(120),
            t(40),
            t(10),
            Histogram::point(t(20)),
            Histogram::point(4u32),
        )
    }

    #[test]
    fn empty_system_costs_zero() {
        let arch = arch2();
        let slack = SlackProfile::from_table(&arch, &ScheduleTable::empty(t(480)));
        let cost = evaluate(&arch, &slack, &profile(), &Weights::default());
        assert_eq!(cost.total, 0.0);
        assert!(cost.is_feasible());
        assert_eq!(cost.penalty_processes, Time::ZERO);
        assert_eq!(cost.penalty_messages, Time::ZERO);
    }

    #[test]
    fn saturated_system_costs_everything() {
        let arch = arch2();
        // Both PEs fully busy.
        let jobs = vec![
            ScheduledJob {
                job: JobId::new(AppId(0), 0, 0, NodeId(0)),
                pe: PeId(0),
                start: t(0),
                end: t(480),
                release: t(0),
                deadline: t(480),
            },
            ScheduledJob {
                job: JobId::new(AppId(0), 0, 0, NodeId(1)),
                pe: PeId(1),
                start: t(0),
                end: t(480),
                release: t(0),
                deadline: t(480),
            },
        ];
        let slack = SlackProfile::from_table(&arch, &ScheduleTable::new(t(480), jobs, vec![]));
        let cost = evaluate(&arch, &slack, &profile(), &Weights::default());
        // All process items unpacked → C1P = 100; C2P = 0 → deficit 40.
        assert_eq!(cost.c1_processes, 100.0);
        assert_eq!(cost.penalty_processes, t(40));
        // Bus untouched: no message cost.
        assert_eq!(cost.c1_messages, 0.0);
        assert_eq!(cost.penalty_messages, Time::ZERO);
        assert_eq!(cost.total, 100.0 + 40.0);
    }

    #[test]
    fn weights_scale_terms() {
        let arch = arch2();
        let jobs = vec![ScheduledJob {
            job: JobId::new(AppId(0), 0, 0, NodeId(0)),
            pe: PeId(0),
            start: t(0),
            end: t(480),
            release: t(0),
            deadline: t(480),
        }];
        // PE1 free: everything packs, no penalty → only check scaling on a
        // saturated variant instead.
        let slack = SlackProfile::from_table(&arch, &ScheduleTable::new(t(480), jobs, vec![]));
        let w = Weights {
            w1_processes: 2.0,
            ..Weights::default()
        };
        let base = evaluate(&arch, &slack, &profile(), &Weights::default());
        let scaled = evaluate(&arch, &slack, &profile(), &w);
        assert!((scaled.total - (base.total + base.c1_processes)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_compares_worse() {
        let inf = DesignCost::infeasible();
        assert!(!inf.is_feasible());
        assert!(inf.total > 1e300);
    }
}
