//! Mapping strategies for incremental design (Pop et al., DAC 2001).
//!
//! Given a system whose *existing* applications are frozen in a schedule
//! table, this crate maps and schedules the *current* application so that
//!
//! * (a) its deadlines hold without touching the existing applications, and
//! * (b) the remaining slack is shaped so that *future* applications —
//!   known only through a [`incdes_model::FutureProfile`] — are likely to
//!   fit, as measured by the objective function of `incdes-metrics`.
//!
//! Three strategies are provided, matching the paper's evaluation:
//!
//! * [`Strategy::AdHoc`] (AH) — the initial mapping ([`im::initial_mapping`],
//!   derived from the Heterogeneous Critical Path algorithm) taken as-is:
//!   a good design for the current application alone, with *little support
//!   for incremental design*.
//! * [`Strategy::MappingHeuristic`] (MH) — iterative improvement that
//!   examines only the design transformations with the highest potential
//!   to improve the objective: moving a process to a different slack on
//!   the same or a different processor, and moving a message to a
//!   different slack on the bus ([`mh::mapping_heuristic`]).
//! * [`Strategy::SimulatedAnnealing`] (SA) — a slow-cooling annealer over
//!   the same design space ([`sa::simulated_annealing`]); with a generous
//!   budget it approaches the optimum and serves as the reference point
//!   of the experiments.
//!
//! # Example
//!
//! ```
//! use incdes_mapping::{run_strategy, MappingContext, Strategy};
//! use incdes_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .pe("N1")
//!     .pe("N2")
//!     .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
//!     .build()?;
//! let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
//! let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)).wcet(PeId(1), Time::new(9)));
//! let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(6)));
//! g.add_message(a, b, Message::new("m", 4))?;
//! let app = Application::new("demo", vec![g]);
//!
//! let future = FutureProfile::slide_example();
//! let weights = incdes_metrics::Weights::default();
//! let ctx = MappingContext::new(&arch, AppId(0), &app, None, Time::new(120), &future, &weights);
//! let outcome = run_strategy(&ctx, &Strategy::AdHoc)?;
//! assert!(outcome.evaluation.cost.is_feasible());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod im;
pub mod mh;
pub mod sa;
pub mod solution;
pub mod strategy;

pub use context::{Evaluation, MapError, MappingContext, SearchParallelism};
pub use im::initial_mapping;
pub use mh::{mapping_heuristic, MhConfig};
pub use sa::{simulated_annealing, SaConfig};
pub use solution::{Move, Solution};
pub use strategy::{run_strategy, Outcome, RunStats, Strategy};
