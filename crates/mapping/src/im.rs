//! Initial mapping (IM), derived from the Heterogeneous Critical Path
//! algorithm of Jorgensen & Madsen (CODES'97).
//!
//! IM constructs a first design alternative that satisfies requirement
//! (a): a complete mapping with a valid static cyclic schedule, built
//! greedily around the frozen schedules of the existing applications. It
//! is also exactly the paper's *ad-hoc approach* (AH) — a good design for
//! the current application that ignores future applications.
//!
//! The construction probes the first instance of every process graph:
//! processes are visited in decreasing partial-critical-path priority;
//! each is tentatively placed on every allowed PE and committed to the one
//! giving the earliest finish time (accounting for TDMA message delays
//! from already-placed predecessors). If the resulting full-hyperperiod
//! schedule is infeasible, IM retries with deterministic perturbations
//! (remapping random processes to their next-best PE).

use crate::context::{MapError, MappingContext};
use crate::solution::Solution;
use incdes_graph::NodeId;
use incdes_model::{PeId, ProcRef, Time};
use incdes_sched::{priority, Mapping, PeTimeline};
use incdes_tdma::BusTimeline;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of repair attempts when the probe mapping turns out infeasible
/// on the full hyperperiod.
const REPAIR_ATTEMPTS: usize = 64;

/// Builds the initial solution.
///
/// # Errors
///
/// [`MapError::EmptyApplication`] if the application has no processes;
/// [`MapError::Infeasible`] if no valid schedule was found (the system is
/// too loaded); [`MapError::InvalidInput`] for malformed inputs.
pub fn initial_mapping(ctx: &MappingContext<'_>) -> Result<Solution, MapError> {
    if ctx.app.process_count() == 0 {
        return Err(MapError::EmptyApplication);
    }
    let probe = hcp_probe(ctx)?;
    let solution = Solution::from_mapping(probe);

    // The probe only looked at instance 0 of each graph; verify on the
    // full hyperperiod and repair if needed.
    match ctx.evaluate(&solution) {
        Ok(_) => Ok(solution),
        Err(e) if !e.is_infeasible() => Err(MapError::InvalidInput(e)),
        Err(first) => repair(ctx, solution, first),
    }
}

/// Greedy HCP construction over instance 0 of every graph.
fn hcp_probe(ctx: &MappingContext<'_>) -> Result<Mapping, MapError> {
    let arch = ctx.arch;
    let app = ctx.app;

    // Frozen occupancy.
    let mut pes: Vec<PeTimeline> = match ctx.frozen {
        Some(t) => t.pe_timelines(arch),
        None => (0..arch.pe_count())
            .map(|_| PeTimeline::new(ctx.horizon))
            .collect(),
    };
    let mut bus: BusTimeline = match ctx.frozen {
        Some(t) => t.bus_timeline(arch),
        None => BusTimeline::new(arch.bus(), ctx.horizon).map_err(|_| MapError::Infeasible {
            last: incdes_sched::SchedError::BadHorizon {
                horizon: ctx.horizon,
            },
        })?,
    };

    let priorities = priority::app_priorities(arch, app);

    // Ready-list construction over all graphs (instance 0 each).
    let mut preds_left: Vec<Vec<u32>> = app
        .graphs
        .iter()
        .map(|g| {
            g.dag()
                .node_ids()
                .map(|n| g.dag().in_degree(n) as u32)
                .collect()
        })
        .collect();
    let mut finish: Vec<Vec<Option<(Time, PeId)>>> = app
        .graphs
        .iter()
        .map(|g| vec![None; g.process_count()])
        .collect();
    let mut ready: Vec<(usize, NodeId)> = Vec::new();
    for (gi, g) in app.graphs.iter().enumerate() {
        for n in g.dag().node_ids() {
            if preds_left[gi][n.index()] == 0 {
                ready.push((gi, n));
            }
        }
    }

    let mut mapping = Mapping::new();
    let total = app.process_count();
    for _ in 0..total {
        // Highest partial critical path first; deterministic tie-break.
        ready.sort_by(|&(ga, na), &(gb, nb)| {
            priorities[ga][na.index()]
                .cmp(&priorities[gb][nb.index()])
                .then_with(|| gb.cmp(&ga))
                .then_with(|| nb.cmp(&na))
        });
        let (gi, n) = ready.pop().ok_or(MapError::Infeasible {
            last: incdes_sched::SchedError::BadHorizon {
                horizon: ctx.horizon,
            },
        })?;
        let g = &app.graphs[gi];
        let proc = g.process(n);

        // Try each allowed PE; earliest finish wins.
        let mut best: Option<(Time, Time, PeId)> = None; // (finish, ready, pe)
        for (pe, wcet) in proc.wcets.iter() {
            if pe.index() >= arch.pe_count() {
                continue;
            }
            let mut data_ready = Time::ZERO;
            let mut feasible = true;
            for &e in g.dag().in_edges(n) {
                let p = g.dag().source(e);
                let (pf, ppe) = finish[gi][p.index()].expect("predecessors are placed first");
                let avail = if ppe == pe {
                    pf
                } else {
                    let tx = arch.bus().transmission_time(g.message(e).bytes);
                    match bus.peek_message(ppe, pf, tx) {
                        Ok(r) => r.arrival,
                        Err(_) => {
                            feasible = false;
                            break;
                        }
                    }
                };
                data_ready = data_ready.max(avail);
            }
            if !feasible {
                continue;
            }
            let Ok(start) = pes[pe.index()].peek_earliest(data_ready, wcet, 0) else {
                continue;
            };
            let f = start + wcet;
            let better = match best {
                None => true,
                Some((bf, _, bpe)) => {
                    f < bf
                        || (f == bf && pes[pe.index()].busy_time() < pes[bpe.index()].busy_time())
                }
            };
            if better {
                best = Some((f, data_ready, pe));
            }
        }
        let Some((_, _, pe)) = best else {
            return Err(MapError::Infeasible {
                last: incdes_sched::SchedError::NoGap {
                    job: incdes_sched::JobId::new(ctx.app_id, gi, 0, n),
                    source: incdes_sched::pe_timeline::PeTimelineError::NoGap {
                        ready: Time::ZERO,
                        duration: proc.wcets.max().unwrap_or(Time::ZERO),
                        skipped: 0,
                    },
                },
            });
        };

        // Commit: schedule the incoming messages for real, then the process.
        let wcet = proc.wcets.get(pe).expect("pe came from the table");
        let mut data_ready = Time::ZERO;
        for &e in g.dag().in_edges(n) {
            let p = g.dag().source(e);
            let (pf, ppe) = finish[gi][p.index()].expect("predecessors are placed first");
            let avail = if ppe == pe {
                pf
            } else {
                let tx = arch.bus().transmission_time(g.message(e).bytes);
                bus.schedule_message(ppe, pf, tx)
                    .map_err(|_| MapError::Infeasible {
                        last: incdes_sched::SchedError::BadHorizon {
                            horizon: ctx.horizon,
                        },
                    })?
                    .arrival
            };
            data_ready = data_ready.max(avail);
        }
        let start = pes[pe.index()]
            .reserve_earliest(data_ready, wcet, 0)
            .map_err(|source| MapError::Infeasible {
                last: incdes_sched::SchedError::NoGap {
                    job: incdes_sched::JobId::new(ctx.app_id, gi, 0, n),
                    source,
                },
            })?;
        finish[gi][n.index()] = Some((start + wcet, pe));
        mapping.assign(ProcRef::new(gi, n), pe);

        for s in g.dag().successors(n) {
            preds_left[gi][s.index()] -= 1;
            if preds_left[gi][s.index()] == 0 {
                ready.push((gi, s));
            }
        }
    }
    Ok(mapping)
}

/// Deterministic random repair: remap random processes to random allowed
/// PEs until the full-hyperperiod schedule becomes feasible.
fn repair(
    ctx: &MappingContext<'_>,
    mut solution: Solution,
    first: incdes_sched::SchedError,
) -> Result<Solution, MapError> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x1D5_C0DE);
    let procs: Vec<(ProcRef, Vec<PeId>)> = ctx
        .app
        .processes()
        .map(|(r, p)| (r, p.wcets.iter().map(|(pe, _)| pe).collect()))
        .collect();
    let mut last = first;
    for _ in 0..REPAIR_ATTEMPTS {
        let Some((pr, pes)) = procs.choose(&mut rng) else {
            break;
        };
        if pes.is_empty() {
            continue;
        }
        let pe = pes[rng.gen_range(0..pes.len())];
        let prev = solution.mapping.assign(*pr, pe);
        match ctx.evaluate(&solution) {
            Ok(_) => return Ok(solution),
            Err(e) if !e.is_infeasible() => return Err(MapError::InvalidInput(e)),
            Err(e) => {
                last = e;
                // Keep the perturbation half the time so the walk can
                // escape locally-stuck regions; otherwise undo it.
                if rng.gen_bool(0.5) {
                    if let Some(p) = prev {
                        solution.mapping.assign(*pr, p);
                    }
                }
            }
        }
    }
    Err(MapError::Infeasible { last })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;
    use incdes_model::AppId;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn chain_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        let a = g.add_process(
            Process::new("a")
                .wcet(PeId(0), Time::new(8))
                .wcet(PeId(1), Time::new(20)),
        );
        let b = g.add_process(
            Process::new("b")
                .wcet(PeId(0), Time::new(30))
                .wcet(PeId(1), Time::new(6)),
        );
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        Application::new("app", vec![g])
    }

    #[test]
    fn im_produces_feasible_solution() {
        let arch = arch2();
        let app = chain_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let sol = initial_mapping(&ctx).unwrap();
        assert_eq!(sol.mapping.len(), 2);
        let eval = ctx.evaluate(&sol).unwrap();
        assert!(eval.cost.is_feasible());
        assert!(eval.table.is_deadline_clean());
    }

    #[test]
    fn im_prefers_fast_pes() {
        // a is much faster on pe0, b on pe1, comm is cheap → expect the
        // heterogeneous split.
        let arch = arch2();
        let app = chain_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let sol = initial_mapping(&ctx).unwrap();
        assert_eq!(sol.mapping.pe_of(ProcRef::new(0, NodeId(0))), Some(PeId(0)));
        // b: on pe0 it would start at 8 and end 38; on pe1 the message
        // arrives at 24 and ends 30 → pe1 wins.
        assert_eq!(sol.mapping.pe_of(ProcRef::new(0, NodeId(1))), Some(PeId(1)));
    }

    #[test]
    fn im_empty_app_rejected() {
        let arch = arch2();
        let app = Application::new("empty", vec![]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        assert_eq!(
            initial_mapping(&ctx).unwrap_err(),
            MapError::EmptyApplication
        );
    }

    #[test]
    fn im_reports_infeasible_overload() {
        let arch = arch2();
        // 3 processes of 50 ticks, single allowed PE, period 120: 150 > 120.
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        for i in 0..3 {
            g.add_process(Process::new(format!("p{i}")).wcet(PeId(0), Time::new(50)));
        }
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        assert!(matches!(
            initial_mapping(&ctx).unwrap_err(),
            MapError::Infeasible { .. }
        ));
    }

    #[test]
    fn im_respects_frozen_schedule() {
        let arch = arch2();
        let app = chain_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        // First commit one copy.
        let ctx0 = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let sol0 = initial_mapping(&ctx0).unwrap();
        let eval0 = ctx0.evaluate(&sol0).unwrap();

        // Then map a second copy with the first frozen.
        let app2 = chain_app();
        let ctx1 = MappingContext::new(
            &arch,
            AppId(1),
            &app2,
            Some(&eval0.table),
            Time::new(120),
            &future,
            &weights,
        );
        let sol1 = initial_mapping(&ctx1).unwrap();
        let eval1 = ctx1.evaluate(&sol1).unwrap();
        // Frozen jobs unmoved.
        for j in eval0.table.jobs() {
            let same = eval1.table.job(j.job).unwrap();
            assert_eq!(same.start, j.start);
            assert_eq!(same.pe, j.pe);
        }
        assert!(eval1.table.is_deadline_clean());
    }
}
