//! Simulated annealing (SA) — the near-optimal reference.
//!
//! SA explores the same design space as MH (mappings plus slack hints)
//! with the classic Metropolis acceptance rule and geometric cooling.
//! With the default (generous) budget it approaches the optimum of the
//! objective; the paper uses it as the yardstick the other strategies'
//! *average deviation* is measured against.

use crate::context::{Evaluation, MapError, MappingContext};
use crate::solution::{Move, Solution};
use incdes_model::{PeId, ProcRef};
use incdes_sched::MsgRef;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of [`simulated_annealing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Starting temperature (in objective units).
    pub initial_temp: f64,
    /// Geometric cooling factor per temperature step, in `(0, 1)`.
    pub cooling: f64,
    /// Proposed moves per temperature step.
    pub steps_per_temp: usize,
    /// Stop when the temperature drops below this.
    pub min_temp: f64,
    /// Hard cap on schedule evaluations (the paper's SA runs for tens of
    /// minutes; cap it for experiments).
    pub max_evaluations: usize,
    /// Largest gap hint proposed.
    pub max_gap_hint: u32,
    /// Largest slot hint proposed.
    pub max_slot_hint: u32,
    /// RNG seed (SA is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temp: 50.0,
            cooling: 0.95,
            steps_per_temp: 50,
            min_temp: 0.05,
            max_evaluations: 20_000,
            max_gap_hint: 4,
            max_slot_hint: 4,
            seed: 0x0DAC_2001,
        }
    }
}

impl SaConfig {
    /// A small budget for tests and quick benchmarks.
    pub fn quick() -> Self {
        SaConfig {
            initial_temp: 25.0,
            cooling: 0.85,
            steps_per_temp: 12,
            min_temp: 0.5,
            max_evaluations: 600,
            ..SaConfig::default()
        }
    }
}

/// Result of an SA run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// The best solution seen.
    pub solution: Solution,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Moves accepted (including uphill ones).
    pub accepted: usize,
    /// Moves proposed.
    pub proposed: usize,
}

/// Runs simulated annealing from `initial` (which must be feasible).
///
/// # Errors
///
/// [`MapError::Infeasible`] if `initial` does not schedule;
/// [`MapError::InvalidInput`] for malformed inputs.
pub fn simulated_annealing(
    ctx: &MappingContext<'_>,
    initial: Solution,
    cfg: &SaConfig,
) -> Result<SaOutcome, MapError> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut current = initial;
    let mut current_eval = ctx.evaluate(&current).map_err(|e| {
        if e.is_infeasible() {
            MapError::Infeasible { last: e }
        } else {
            MapError::InvalidInput(e)
        }
    })?;
    // The best solution is tracked as (solution, cost) only — cloning the
    // full `Evaluation` (schedule table + slack profile) on every
    // improvement dominated SA's bookkeeping cost. The evaluation is
    // re-derived once at the end (a memo hit on the engine path).
    let mut best = current.clone();
    let mut best_cost = current_eval.cost;

    // Move-generation tables.
    let procs: Vec<(ProcRef, Vec<PeId>)> = ctx
        .app
        .processes()
        .map(|(r, p)| {
            let pes: Vec<PeId> = p
                .wcets
                .iter()
                .map(|(pe, _)| pe)
                .filter(|pe| pe.index() < ctx.arch.pe_count())
                .collect();
            (r, pes)
        })
        .collect();
    let msgs: Vec<MsgRef> = ctx
        .app
        .graphs
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.dag().edge_ids().map(move |e| MsgRef::new(gi, e)))
        .collect();

    let mut temp = cfg.initial_temp.max(f64::MIN_POSITIVE);
    let mut accepted = 0usize;
    let mut proposed = 0usize;
    let mut evals = 0usize;

    'outer: while temp > cfg.min_temp {
        for _ in 0..cfg.steps_per_temp {
            if evals >= cfg.max_evaluations {
                break 'outer;
            }
            let Some(mv) = propose_move(&mut rng, &current, &procs, &msgs, cfg) else {
                break 'outer; // degenerate design space
            };
            proposed += 1;
            let trial = current.with_move(&mv);
            evals += 1;
            let Ok(eval) = ctx.evaluate(&trial) else {
                continue; // infeasible proposals are always rejected
            };
            let delta = eval.cost.total - current_eval.cost.total;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                accepted += 1;
                current = trial;
                current_eval = eval;
                if current_eval.cost.total < best_cost.total - 1e-12 {
                    best = current.clone();
                    best_cost = current_eval.cost;
                }
                if best_cost.total <= f64::EPSILON {
                    break 'outer; // cannot improve on zero
                }
            }
        }
        temp *= cfg.cooling;
    }

    // Rebuild the best evaluation. The scheduler is deterministic, so a
    // solution that evaluated feasibly once evaluates feasibly again;
    // `evaluate_snapshot` leaves `evaluation_count()` untouched (this is
    // bookkeeping, not a design-space probe).
    let best_eval = if best == current {
        current_eval
    } else {
        ctx.evaluate_snapshot(&best)
            .expect("best solution was feasible when first evaluated")
    };
    debug_assert_eq!(best_eval.cost.total, best_cost.total);
    Ok(SaOutcome {
        solution: best,
        evaluation: best_eval,
        accepted,
        proposed,
    })
}

/// Draws a random design transformation: 60 % remap, 25 % process slack
/// shift, 15 % message slack shift.
fn propose_move(
    rng: &mut ChaCha8Rng,
    current: &Solution,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
) -> Option<Move> {
    if procs.is_empty() {
        return None;
    }
    for _ in 0..16 {
        let dice = rng.gen_range(0u32..100);
        if dice < 60 {
            let (pr, pes) = &procs[rng.gen_range(0..procs.len())];
            let candidates: Vec<PeId> = pes
                .iter()
                .copied()
                .filter(|&pe| current.mapping.pe_of(*pr) != Some(pe))
                .collect();
            if let Some(&to) = candidates.choose(rng) {
                return Some(Move::Remap { proc_ref: *pr, to });
            }
        } else if dice < 85 {
            let (pr, _) = &procs[rng.gen_range(0..procs.len())];
            let h = current.hints.proc_gap(*pr);
            let up = rng.gen_bool(0.5);
            if up && h < cfg.max_gap_hint {
                return Some(Move::ProcSlack {
                    proc_ref: *pr,
                    gap: h + 1,
                });
            }
            if !up && h > 0 {
                return Some(Move::ProcSlack {
                    proc_ref: *pr,
                    gap: h - 1,
                });
            }
        } else if !msgs.is_empty() {
            let mr = msgs[rng.gen_range(0..msgs.len())];
            let h = current.hints.msg_slot(mr);
            let up = rng.gen_bool(0.5);
            if up && h < cfg.max_slot_hint {
                return Some(Move::MsgSlack {
                    msg: mr,
                    slot: h + 1,
                });
            }
            if !up && h > 0 {
                return Some(Move::MsgSlack {
                    msg: mr,
                    slot: h - 1,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im::initial_mapping;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;
    use incdes_model::AppId;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn spread_app(n: usize) -> Application {
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        for i in 0..n {
            g.add_process(
                Process::new(format!("p{i}"))
                    .wcet(PeId(0), Time::new(20))
                    .wcet(PeId(1), Time::new(20)),
            );
        }
        Application::new("app", vec![g])
    }

    fn ctx_with<'a>(
        arch: &'a Architecture,
        app: &'a Application,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> MappingContext<'a> {
        MappingContext::new(arch, AppId(0), app, None, Time::new(240), future, weights)
    }

    #[test]
    fn sa_never_returns_worse_than_start() {
        let arch = arch2();
        let app = spread_app(5);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let im_cost = ctx.evaluate(&im).unwrap().cost.total;
        let out = simulated_annealing(&ctx, im, &SaConfig::quick()).unwrap();
        assert!(out.evaluation.cost.total <= im_cost + 1e-9);
        assert!(out.proposed >= out.accepted);
    }

    #[test]
    fn sa_is_deterministic_given_seed() {
        let arch = arch2();
        let app = spread_app(4);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let a = simulated_annealing(&ctx, im.clone(), &SaConfig::quick()).unwrap();
        let b = simulated_annealing(&ctx, im, &SaConfig::quick()).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.proposed, b.proposed);
    }

    #[test]
    fn sa_respects_evaluation_cap() {
        let arch = arch2();
        let app = spread_app(4);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let before = ctx.evaluation_count();
        let cfg = SaConfig {
            max_evaluations: 25,
            ..SaConfig::quick()
        };
        let _ = simulated_annealing(&ctx, im, &cfg).unwrap();
        // initial eval + at most 25 trial evals.
        assert!(ctx.evaluation_count() <= before + 26);
    }

    #[test]
    fn sa_infeasible_start_rejected() {
        let arch = arch2();
        let app = spread_app(2);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        assert!(matches!(
            simulated_annealing(&ctx, Solution::new(), &SaConfig::quick()),
            Err(MapError::InvalidInput(_))
        ));
    }
}
