//! Simulated annealing (SA) — the near-optimal reference.
//!
//! SA explores the same design space as MH (mappings plus slack hints)
//! with the classic Metropolis acceptance rule and geometric cooling.
//! With the default (generous) budget it approaches the optimum of the
//! objective; the paper uses it as the yardstick the other strategies'
//! *average deviation* is measured against.

use crate::context::{ChainCtx, Evaluation, MapError, MappingContext, SearchParallelism};
use crate::solution::{Move, Solution};
use incdes_metrics::DesignCost;
use incdes_model::{PeId, ProcRef};
use incdes_obs::{counters, phase};
use incdes_sched::MsgRef;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning knobs of [`simulated_annealing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Starting temperature (in objective units).
    pub initial_temp: f64,
    /// Geometric cooling factor per temperature step, in `(0, 1)`.
    pub cooling: f64,
    /// Proposed moves per temperature step.
    pub steps_per_temp: usize,
    /// Stop when the temperature drops below this.
    pub min_temp: f64,
    /// Hard cap on schedule evaluations (the paper's SA runs for tens of
    /// minutes; cap it for experiments).
    pub max_evaluations: usize,
    /// Largest gap hint proposed.
    pub max_gap_hint: u32,
    /// Largest slot hint proposed.
    pub max_slot_hint: u32,
    /// RNG seed (SA is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temp: 50.0,
            cooling: 0.95,
            steps_per_temp: 50,
            min_temp: 0.05,
            max_evaluations: 20_000,
            max_gap_hint: 4,
            max_slot_hint: 4,
            seed: 0x0DAC_2001,
        }
    }
}

impl SaConfig {
    /// A small budget for tests and quick benchmarks.
    pub fn quick() -> Self {
        SaConfig {
            initial_temp: 25.0,
            cooling: 0.85,
            steps_per_temp: 12,
            min_temp: 0.5,
            max_evaluations: 600,
            ..SaConfig::default()
        }
    }
}

/// Result of an SA run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// The best solution seen.
    pub solution: Solution,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Moves accepted (including uphill ones).
    pub accepted: usize,
    /// Moves proposed.
    pub proposed: usize,
}

/// Runs simulated annealing from `initial` (which must be feasible).
///
/// # Errors
///
/// [`MapError::Infeasible`] if `initial` does not schedule;
/// [`MapError::InvalidInput`] for malformed inputs.
pub fn simulated_annealing(
    ctx: &MappingContext<'_>,
    initial: Solution,
    cfg: &SaConfig,
) -> Result<SaOutcome, MapError> {
    let current_eval = ctx.evaluate(&initial).map_err(|e| {
        if e.is_infeasible() {
            MapError::Infeasible { last: e }
        } else {
            MapError::InvalidInput(e)
        }
    })?;

    // Move-generation tables (shared immutably by every chain).
    let procs: Vec<(ProcRef, Vec<PeId>)> = ctx
        .app
        .processes()
        .map(|(r, p)| {
            let pes: Vec<PeId> = p
                .wcets
                .iter()
                .map(|(pe, _)| pe)
                .filter(|pe| pe.index() < ctx.arch.pe_count())
                .collect();
            (r, pes)
        })
        .collect();
    let msgs: Vec<MsgRef> = ctx
        .app
        .graphs
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.dag().edge_ids().map(move |e| MsgRef::new(gi, e)))
        .collect();

    if let SearchParallelism::Parallel {
        threads,
        sa_chains,
        sa_exchange_period,
        ..
    } = ctx.parallelism()
    {
        if sa_chains >= 2 {
            // Falls back to the classic path when no shareable base
            // exists (naive pipeline); a single chain IS the classic
            // path, so it never takes this branch.
            if let Some(chains) = ctx.chain_contexts(sa_chains) {
                return Ok(anneal_portfolio(
                    ctx,
                    chains,
                    initial,
                    current_eval,
                    &procs,
                    &msgs,
                    cfg,
                    threads,
                    sa_exchange_period,
                ));
            }
        }
    }
    Ok(anneal_classic(
        ctx,
        initial,
        current_eval,
        &procs,
        &msgs,
        cfg,
    ))
}

/// The sequential annealing loop — byte-identical to the pre-portfolio
/// implementation (same RNG stream, same acceptance decisions, same
/// evaluation count).
fn anneal_classic(
    ctx: &MappingContext<'_>,
    initial: Solution,
    initial_eval: Evaluation,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
) -> SaOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut current = initial;
    let mut current_eval = initial_eval;
    // The best solution is tracked as (solution, cost) only — cloning the
    // full `Evaluation` (schedule table + slack profile) on every
    // improvement dominated SA's bookkeeping cost. The evaluation is
    // re-derived once at the end (a memo hit on the engine path).
    let mut best = current.clone();
    let mut best_cost = current_eval.cost;

    let mut temp = cfg.initial_temp.max(f64::MIN_POSITIVE);
    let mut accepted = 0usize;
    let mut proposed = 0usize;
    let mut evals = 0usize;

    'outer: while temp > cfg.min_temp {
        for _ in 0..cfg.steps_per_temp {
            if evals >= cfg.max_evaluations {
                break 'outer;
            }
            let Some(mv) = propose_move(&mut rng, &current, procs, msgs, cfg) else {
                break 'outer; // degenerate design space
            };
            proposed += 1;
            let trial = current.with_move(&mv);
            evals += 1;
            let Ok(eval) = ctx.evaluate(&trial) else {
                continue; // infeasible proposals are always rejected
            };
            let delta = eval.cost.total - current_eval.cost.total;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                accepted += 1;
                current = trial;
                current_eval = eval;
                if current_eval.cost.total < best_cost.total - 1e-12 {
                    best = current.clone();
                    best_cost = current_eval.cost;
                }
                if best_cost.total <= f64::EPSILON {
                    break 'outer; // cannot improve on zero
                }
            }
        }
        temp *= cfg.cooling;
    }

    // Rebuild the best evaluation. The scheduler is deterministic, so a
    // solution that evaluated feasibly once evaluates feasibly again;
    // `evaluate_snapshot` leaves `evaluation_count()` untouched (this is
    // bookkeeping, not a design-space probe).
    let best_eval = if best == current {
        current_eval
    } else {
        ctx.evaluate_snapshot(&best)
            .expect("best solution was feasible when first evaluated")
    };
    debug_assert_eq!(best_eval.cost.total, best_cost.total);
    SaOutcome {
        solution: best,
        evaluation: best_eval,
        accepted,
        proposed,
    }
}

/// One lane of the SA portfolio: a private evaluation context plus the
/// flattened annealing state (the classic `while`/`for` loop unrolled
/// into a resumable per-proposal step so chains can pause at exchange
/// barriers).
struct Chain<'a> {
    cx: ChainCtx<'a>,
    rng: ChaCha8Rng,
    current: Solution,
    current_eval: Evaluation,
    best: Solution,
    best_cost: DesignCost,
    temp: f64,
    steps_into_temp: usize,
    evals: usize,
    accepted: usize,
    proposed: usize,
    done: bool,
}

/// Advances one chain by a single proposal, mirroring one inner-loop
/// iteration of [`anneal_classic`] exactly (budget check, proposal,
/// Metropolis acceptance, temperature bookkeeping).
fn chain_step(
    lane: &mut Chain<'_>,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
    budget: usize,
) {
    if lane.evals >= budget {
        lane.done = true;
        return;
    }
    let Some(mv) = propose_move(&mut lane.rng, &lane.current, procs, msgs, cfg) else {
        lane.done = true; // degenerate design space
        return;
    };
    lane.proposed += 1;
    let trial = lane.current.with_move(&mv);
    lane.evals += 1;
    if let Ok(eval) = lane.cx.evaluate(&trial) {
        let delta = eval.cost.total - lane.current_eval.cost.total;
        let accept = delta <= 0.0 || lane.rng.gen::<f64>() < (-delta / lane.temp).exp();
        if accept {
            lane.accepted += 1;
            lane.current = trial;
            lane.current_eval = eval;
            if lane.current_eval.cost.total < lane.best_cost.total - 1e-12 {
                lane.best = lane.current.clone();
                lane.best_cost = lane.current_eval.cost;
            }
            if lane.best_cost.total <= f64::EPSILON {
                lane.done = true; // cannot improve on zero
                return;
            }
        }
    } // infeasible proposals are always rejected
    lane.steps_into_temp += 1;
    if lane.steps_into_temp >= cfg.steps_per_temp {
        lane.steps_into_temp = 0;
        lane.temp *= cfg.cooling;
        if lane.temp <= cfg.min_temp {
            lane.done = true;
        }
    }
}

/// Runs up to `segment` proposals on one chain (fewer if it finishes).
fn run_segment(
    lane: &mut Chain<'_>,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
    budget: usize,
    segment: usize,
) {
    for _ in 0..segment {
        if lane.done {
            return;
        }
        chain_step(lane, procs, msgs, cfg, budget);
    }
}

/// The SA portfolio: `chains.len()` independent annealing chains with
/// per-chain ChaCha8 streams run in segments of `sa_exchange_period`
/// proposals; at each segment barrier the strictly-best solution found
/// so far (earliest chain wins ties) is broadcast to chains whose
/// current point is worse. Chains are deterministic given their seeds
/// and exchanges happen at fixed proposal boundaries in chain order, so
/// the outcome and every counter depend only on `sa_chains` /
/// `sa_exchange_period` — never on the thread count.
#[allow(clippy::too_many_arguments)]
fn anneal_portfolio(
    ctx: &MappingContext<'_>,
    chains: Vec<ChainCtx<'_>>,
    initial: Solution,
    initial_eval: Evaluation,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
    threads: usize,
    sa_exchange_period: usize,
) -> SaOutcome {
    // Each chain gets an equal share of the evaluation budget, so the
    // portfolio probes the design space about as many times as the
    // classic path would.
    let budget = cfg.max_evaluations.div_ceil(chains.len());
    let segment = sa_exchange_period.max(1);
    let init_temp = cfg.initial_temp.max(f64::MIN_POSITIVE);
    let mut lanes: Vec<Chain<'_>> = chains
        .into_iter()
        .enumerate()
        .map(|(c, cx)| Chain {
            cx,
            // Chain 0 replays the classic seed; siblings get decorrelated
            // streams via a golden-ratio multiple (XOR keeps chain 0 exact).
            rng: ChaCha8Rng::seed_from_u64(
                cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            current: initial.clone(),
            current_eval: initial_eval.clone(),
            best: initial.clone(),
            best_cost: initial_eval.cost,
            temp: init_temp,
            steps_into_temp: 0,
            evals: 0,
            accepted: 0,
            proposed: 0,
            done: init_temp <= cfg.min_temp,
        })
        .collect();

    let worker_count = threads.max(1).min(lanes.len());
    while lanes.iter().any(|l| !l.done) {
        if worker_count == 1 {
            for lane in &mut lanes {
                run_segment(lane, procs, msgs, cfg, budget, segment);
            }
        } else {
            // Chains are partitioned over scoped workers; since each
            // lane is self-contained the partition cannot affect any
            // result, only wall-clock.
            let chunk = lanes.len().div_ceil(worker_count);
            let harvested = std::thread::scope(|s| {
                let handles: Vec<_> = lanes
                    .chunks_mut(chunk)
                    .map(|chunk_lanes| {
                        s.spawn(move || {
                            for lane in chunk_lanes {
                                run_segment(lane, procs, msgs, cfg, budget, segment);
                            }
                            // Fresh OS thread: its observability
                            // thread-locals started at zero, so the
                            // final snapshot is this worker's delta.
                            (counters::snapshot(), phase::snapshot())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("SA chain worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (worker_counters, worker_phases) in harvested {
                counters::merge_into_current(&worker_counters);
                phase::merge_into_current(&worker_phases);
            }
        }

        // Exchange barrier: broadcast the strictly-best solution.
        let mut gb = 0usize;
        for c in 1..lanes.len() {
            if lanes[c].best_cost.total < lanes[gb].best_cost.total {
                gb = c;
            }
        }
        let gb_sol = lanes[gb].best.clone();
        let gb_cost = lanes[gb].best_cost;
        for lane in &mut lanes {
            if lane.done || lane.current_eval.cost.total <= gb_cost.total {
                continue;
            }
            lane.current = gb_sol.clone();
            // Bookkeeping, not a probe: re-derive on the chain's own
            // engine (usually a memo hit after the first adoption).
            lane.current_eval = lane
                .cx
                .evaluate_snapshot(&lane.current)
                .expect("global best was feasible on a sibling chain");
            if gb_cost.total < lane.best_cost.total - 1e-12 {
                lane.best = gb_sol.clone();
                lane.best_cost = gb_cost;
            }
            if lane.best_cost.total <= f64::EPSILON {
                lane.done = true;
            }
        }
    }

    let mut gb = 0usize;
    for c in 1..lanes.len() {
        if lanes[c].best_cost.total < lanes[gb].best_cost.total {
            gb = c;
        }
    }
    let best = lanes[gb].best.clone();
    let best_cost = lanes[gb].best_cost;
    let accepted = lanes.iter().map(|l| l.accepted).sum();
    let proposed = lanes.iter().map(|l| l.proposed).sum();
    ctx.absorb_chains(lanes.into_iter().map(|l| l.cx).collect());
    // Rebuild the best evaluation on the owning context (memo hit when
    // the initial solution was never improved).
    let best_eval = ctx
        .evaluate_snapshot(&best)
        .expect("best solution was feasible when first evaluated");
    debug_assert_eq!(best_eval.cost.total, best_cost.total);
    SaOutcome {
        solution: best,
        evaluation: best_eval,
        accepted,
        proposed,
    }
}

/// Draws a random design transformation: 60 % remap, 25 % process slack
/// shift, 15 % message slack shift.
fn propose_move(
    rng: &mut ChaCha8Rng,
    current: &Solution,
    procs: &[(ProcRef, Vec<PeId>)],
    msgs: &[MsgRef],
    cfg: &SaConfig,
) -> Option<Move> {
    if procs.is_empty() {
        return None;
    }
    for _ in 0..16 {
        let dice = rng.gen_range(0u32..100);
        if dice < 60 {
            let (pr, pes) = &procs[rng.gen_range(0..procs.len())];
            let candidates: Vec<PeId> = pes
                .iter()
                .copied()
                .filter(|&pe| current.mapping.pe_of(*pr) != Some(pe))
                .collect();
            if let Some(&to) = candidates.choose(rng) {
                return Some(Move::Remap { proc_ref: *pr, to });
            }
        } else if dice < 85 {
            let (pr, _) = &procs[rng.gen_range(0..procs.len())];
            let h = current.hints.proc_gap(*pr);
            let up = rng.gen_bool(0.5);
            if up && h < cfg.max_gap_hint {
                return Some(Move::ProcSlack {
                    proc_ref: *pr,
                    gap: h + 1,
                });
            }
            if !up && h > 0 {
                return Some(Move::ProcSlack {
                    proc_ref: *pr,
                    gap: h - 1,
                });
            }
        } else if !msgs.is_empty() {
            let mr = msgs[rng.gen_range(0..msgs.len())];
            let h = current.hints.msg_slot(mr);
            let up = rng.gen_bool(0.5);
            if up && h < cfg.max_slot_hint {
                return Some(Move::MsgSlack {
                    msg: mr,
                    slot: h + 1,
                });
            }
            if !up && h > 0 {
                return Some(Move::MsgSlack {
                    msg: mr,
                    slot: h - 1,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im::initial_mapping;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;
    use incdes_model::AppId;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn spread_app(n: usize) -> Application {
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        for i in 0..n {
            g.add_process(
                Process::new(format!("p{i}"))
                    .wcet(PeId(0), Time::new(20))
                    .wcet(PeId(1), Time::new(20)),
            );
        }
        Application::new("app", vec![g])
    }

    fn ctx_with<'a>(
        arch: &'a Architecture,
        app: &'a Application,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> MappingContext<'a> {
        MappingContext::new(arch, AppId(0), app, None, Time::new(240), future, weights)
    }

    #[test]
    fn sa_never_returns_worse_than_start() {
        let arch = arch2();
        let app = spread_app(5);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let im_cost = ctx.evaluate(&im).unwrap().cost.total;
        let out = simulated_annealing(&ctx, im, &SaConfig::quick()).unwrap();
        assert!(out.evaluation.cost.total <= im_cost + 1e-9);
        assert!(out.proposed >= out.accepted);
    }

    #[test]
    fn sa_is_deterministic_given_seed() {
        let arch = arch2();
        let app = spread_app(4);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let a = simulated_annealing(&ctx, im.clone(), &SaConfig::quick()).unwrap();
        let b = simulated_annealing(&ctx, im, &SaConfig::quick()).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.proposed, b.proposed);
    }

    #[test]
    fn sa_respects_evaluation_cap() {
        let arch = arch2();
        let app = spread_app(4);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        let im = initial_mapping(&ctx).unwrap();
        let before = ctx.evaluation_count();
        let cfg = SaConfig {
            max_evaluations: 25,
            ..SaConfig::quick()
        };
        let _ = simulated_annealing(&ctx, im, &cfg).unwrap();
        // initial eval + at most 25 trial evals.
        assert!(ctx.evaluation_count() <= before + 26);
    }

    #[test]
    fn sa_portfolio_is_thread_count_invariant() {
        let arch = arch2();
        let app = spread_app(5);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let cfg = SaConfig::quick();
        let run = |threads: usize| {
            let ctx = ctx_with(&arch, &app, &future, &weights).with_parallelism(
                SearchParallelism::Parallel {
                    threads,
                    batch_cutover: 0,
                    sa_chains: 3,
                    sa_exchange_period: 16,
                },
            );
            let im = initial_mapping(&ctx).unwrap();
            let out = simulated_annealing(&ctx, im, &cfg).unwrap();
            (
                out.solution,
                out.evaluation.cost.total.to_bits(),
                out.accepted,
                out.proposed,
                ctx.evaluation_count(),
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn sa_single_chain_parallel_matches_classic() {
        let arch = arch2();
        let app = spread_app(5);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let cfg = SaConfig::quick();
        let im = initial_mapping(&ctx_with(&arch, &app, &future, &weights)).unwrap();
        let seq_ctx = ctx_with(&arch, &app, &future, &weights);
        let seq = simulated_annealing(&seq_ctx, im.clone(), &cfg).unwrap();
        // `threads(n)` keeps `sa_chains: 1`, which must stay on the
        // classic path bit-for-bit.
        let par_ctx = ctx_with(&arch, &app, &future, &weights)
            .with_parallelism(SearchParallelism::threads(4));
        let par = simulated_annealing(&par_ctx, im, &cfg).unwrap();
        assert_eq!(seq.solution, par.solution);
        assert_eq!(
            seq.evaluation.cost.total.to_bits(),
            par.evaluation.cost.total.to_bits()
        );
        assert_eq!(seq.accepted, par.accepted);
        assert_eq!(seq.proposed, par.proposed);
        assert_eq!(seq_ctx.evaluation_count(), par_ctx.evaluation_count());
    }

    #[test]
    fn sa_portfolio_never_returns_worse_than_start() {
        let arch = arch2();
        let app = spread_app(5);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights).with_parallelism(
            SearchParallelism::Parallel {
                threads: 2,
                batch_cutover: 0,
                sa_chains: 2,
                sa_exchange_period: 8,
            },
        );
        let im = initial_mapping(&ctx).unwrap();
        let im_cost = ctx.evaluate(&im).unwrap().cost.total;
        let out = simulated_annealing(&ctx, im, &SaConfig::quick()).unwrap();
        assert!(out.evaluation.cost.total <= im_cost + 1e-9);
        assert!(out.proposed >= out.accepted);
    }

    #[test]
    fn sa_infeasible_start_rejected() {
        let arch = arch2();
        let app = spread_app(2);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = ctx_with(&arch, &app, &future, &weights);
        assert!(matches!(
            simulated_annealing(&ctx, Solution::new(), &SaConfig::quick()),
            Err(MapError::InvalidInput(_))
        ));
    }
}
