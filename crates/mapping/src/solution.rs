//! Design alternatives and design transformations.

use incdes_model::{PeId, ProcRef};
use incdes_sched::{Hints, Mapping, MsgRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One design alternative: a mapping plus placement hints.
///
/// Together with the deterministic list scheduler this fully determines
/// the schedule, so comparing two `Solution`s compares two schedules.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// Process → PE assignment of the current application.
    pub mapping: Mapping,
    /// Slack-placement hints of the current application.
    pub hints: Hints,
}

impl Solution {
    /// An empty solution (nothing mapped yet).
    pub fn new() -> Self {
        Solution::default()
    }

    /// Creates a solution from a mapping with no hints.
    pub fn from_mapping(mapping: Mapping) -> Self {
        Solution {
            mapping,
            hints: Hints::empty(),
        }
    }

    /// Applies a design transformation in place.
    pub fn apply(&mut self, mv: &Move) {
        match *mv {
            Move::Remap { proc_ref, to } => {
                self.mapping.assign(proc_ref, to);
                // A process moved to another PE starts fresh in the
                // earliest slack there.
                self.hints.set_proc_gap(proc_ref, 0);
            }
            Move::ProcSlack { proc_ref, gap } => {
                self.hints.set_proc_gap(proc_ref, gap);
            }
            Move::MsgSlack { msg, slot } => {
                self.hints.set_msg_slot(msg, slot);
            }
        }
    }

    /// Returns a copy with `mv` applied.
    pub fn with_move(&self, mv: &Move) -> Solution {
        let mut s = self.clone();
        s.apply(mv);
        s
    }
}

/// A design transformation (slide 14): move a process to a different slack
/// on the same or a different processor, or move a message to a different
/// slack on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Move {
    /// Map `proc_ref` onto PE `to` (a different processor's slack).
    Remap {
        /// The process to move.
        proc_ref: ProcRef,
        /// The destination PE.
        to: PeId,
    },
    /// Keep the processor but place the process into its `gap`-th feasible
    /// slack instead of the first.
    ProcSlack {
        /// The process to move.
        proc_ref: ProcRef,
        /// The new gap hint.
        gap: u32,
    },
    /// Place the message into its `slot`-th feasible TDMA slot occurrence
    /// instead of the first.
    MsgSlack {
        /// The message to move.
        msg: MsgRef,
        /// The new slot hint.
        slot: u32,
    },
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::Remap { proc_ref, to } => write!(f, "remap {proc_ref} -> {to}"),
            Move::ProcSlack { proc_ref, gap } => write!(f, "proc-slack {proc_ref} -> gap {gap}"),
            Move::MsgSlack { msg, slot } => write!(f, "msg-slack {msg} -> slot {slot}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_graph::{EdgeId, NodeId};

    #[test]
    fn apply_remap_resets_gap_hint() {
        let mut s = Solution::new();
        let p = ProcRef::new(0, NodeId(0));
        s.mapping.assign(p, PeId(0));
        s.hints.set_proc_gap(p, 3);
        s.apply(&Move::Remap {
            proc_ref: p,
            to: PeId(1),
        });
        assert_eq!(s.mapping.pe_of(p), Some(PeId(1)));
        assert_eq!(s.hints.proc_gap(p), 0);
    }

    #[test]
    fn apply_slack_moves() {
        let mut s = Solution::new();
        let p = ProcRef::new(0, NodeId(1));
        let m = MsgRef::new(0, EdgeId(2));
        s.apply(&Move::ProcSlack {
            proc_ref: p,
            gap: 2,
        });
        s.apply(&Move::MsgSlack { msg: m, slot: 4 });
        assert_eq!(s.hints.proc_gap(p), 2);
        assert_eq!(s.hints.msg_slot(m), 4);
    }

    #[test]
    fn with_move_leaves_original_untouched() {
        let s = Solution::new();
        let p = ProcRef::new(0, NodeId(0));
        let s2 = s.with_move(&Move::ProcSlack {
            proc_ref: p,
            gap: 1,
        });
        assert_eq!(s.hints.proc_gap(p), 0);
        assert_eq!(s2.hints.proc_gap(p), 1);
    }

    #[test]
    fn move_display() {
        let p = ProcRef::new(1, NodeId(2));
        assert_eq!(
            Move::Remap {
                proc_ref: p,
                to: PeId(3)
            }
            .to_string(),
            "remap g1/n2 -> pe3"
        );
    }
}
