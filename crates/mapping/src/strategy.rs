//! Strategy dispatch: AH, MH and SA behind one entry point.

use crate::context::{Evaluation, MapError, MappingContext};
use crate::im::initial_mapping;
use crate::mh::{mapping_heuristic, MhConfig};
use crate::sa::{simulated_annealing, SaConfig};
use crate::solution::Solution;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which mapping strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// AH: the initial mapping taken as-is (good for the current
    /// application, blind to the future).
    AdHoc,
    /// MH: the paper's iterative-improvement mapping heuristic.
    MappingHeuristic(MhConfig),
    /// SA: simulated annealing, the near-optimal reference.
    SimulatedAnnealing(SaConfig),
}

impl Strategy {
    /// MH with default configuration.
    pub fn mh() -> Self {
        Strategy::MappingHeuristic(MhConfig::default())
    }

    /// SA with default (generous) configuration.
    pub fn sa() -> Self {
        Strategy::SimulatedAnnealing(SaConfig::default())
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::AdHoc => "AH",
            Strategy::MappingHeuristic(_) => "MH",
            Strategy::SimulatedAnnealing(_) => "SA",
        }
    }
}

/// Bookkeeping of one strategy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Schedule evaluations performed.
    pub evaluations: usize,
    /// Strategy-specific iteration count (MH improvement steps, SA
    /// accepted moves; 0 for AH).
    pub iterations: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Raw engine schedules behind the evaluations (memo misses).
    #[serde(default)]
    pub raw_schedules: usize,
    /// Raw schedules that took the delta path (record splicing) rather
    /// than a full reset — zero on the naive and full-engine tiers.
    #[serde(default)]
    pub delta_schedules: usize,
    /// Placement steps spliced from a run record instead of re-placed.
    #[serde(default)]
    pub spliced_steps: usize,
}

impl RunStats {
    /// Combines the stats of two (sub-)runs: counters add, wall-clock
    /// adds. `merge` is associative (and commutative), so totals folded
    /// over per-worker or per-chain stats are independent of reduction
    /// order — the property the parallel search paths rely on when they
    /// absorb worker counters.
    #[must_use]
    pub fn merge(self, other: RunStats) -> RunStats {
        RunStats {
            evaluations: self.evaluations + other.evaluations,
            iterations: self.iterations + other.iterations,
            elapsed: self.elapsed + other.elapsed,
            raw_schedules: self.raw_schedules + other.raw_schedules,
            delta_schedules: self.delta_schedules + other.delta_schedules,
            spliced_steps: self.spliced_steps + other.spliced_steps,
        }
    }
}

/// The result of running a strategy.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The chosen design alternative.
    pub solution: Solution,
    /// Its full evaluation (schedule, slack, cost).
    pub evaluation: Evaluation,
    /// Run statistics.
    pub stats: RunStats,
}

/// Runs `strategy` on `ctx`: builds the initial mapping, improves it
/// according to the strategy, and returns the final design alternative.
///
/// # Errors
///
/// [`MapError`]; in particular [`MapError::Infeasible`] when requirement
/// (a) cannot be met on the current system state.
pub fn run_strategy(ctx: &MappingContext<'_>, strategy: &Strategy) -> Result<Outcome, MapError> {
    let start = Instant::now();
    let evals_before = ctx.evaluation_count();
    let raw_before = ctx.raw_schedule_count();
    let delta_before = ctx.delta_schedule_count();
    let spliced_before = ctx.spliced_step_count();
    let initial = initial_mapping(ctx)?;
    let (solution, evaluation, iterations) = match strategy {
        Strategy::AdHoc => {
            let eval = ctx.evaluate(&initial).map_err(|e| {
                if e.is_infeasible() {
                    MapError::Infeasible { last: e }
                } else {
                    MapError::InvalidInput(e)
                }
            })?;
            (initial, eval, 0)
        }
        Strategy::MappingHeuristic(cfg) => {
            let out = mapping_heuristic(ctx, initial, cfg)?;
            (out.solution, out.evaluation, out.iterations)
        }
        Strategy::SimulatedAnnealing(cfg) => {
            let out = simulated_annealing(ctx, initial, cfg)?;
            (out.solution, out.evaluation, out.accepted)
        }
    };
    Ok(Outcome {
        solution,
        evaluation,
        stats: RunStats {
            evaluations: ctx.evaluation_count() - evals_before,
            iterations,
            elapsed: start.elapsed(),
            raw_schedules: ctx.raw_schedule_count() - raw_before,
            delta_schedules: ctx.delta_schedule_count() - delta_before,
            spliced_steps: ctx.spliced_step_count() - spliced_before,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;
    use incdes_model::AppId;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        let a = g.add_process(
            Process::new("a")
                .wcet(PeId(0), Time::new(15))
                .wcet(PeId(1), Time::new(18)),
        );
        let b = g.add_process(
            Process::new("b")
                .wcet(PeId(0), Time::new(12))
                .wcet(PeId(1), Time::new(12)),
        );
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        Application::new("app", vec![g])
    }

    #[test]
    fn all_strategies_produce_feasible_outcomes() {
        let arch = arch2();
        let app = app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        for strategy in [
            Strategy::AdHoc,
            Strategy::mh(),
            Strategy::SimulatedAnnealing(SaConfig::quick()),
        ] {
            let out = run_strategy(&ctx, &strategy).unwrap();
            assert!(
                out.evaluation.cost.is_feasible(),
                "{} failed",
                strategy.name()
            );
            assert!(out.evaluation.table.is_deadline_clean());
            assert!(out.stats.evaluations > 0);
        }
    }

    #[test]
    fn mh_and_sa_no_worse_than_ah() {
        let arch = arch2();
        let app = app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        let ah = run_strategy(&ctx, &Strategy::AdHoc).unwrap();
        let mh = run_strategy(&ctx, &Strategy::mh()).unwrap();
        let sa = run_strategy(&ctx, &Strategy::SimulatedAnnealing(SaConfig::quick())).unwrap();
        assert!(mh.evaluation.cost.total <= ah.evaluation.cost.total + 1e-9);
        assert!(sa.evaluation.cost.total <= ah.evaluation.cost.total + 1e-9);
    }

    #[test]
    fn run_stats_merge_is_associative() {
        let stats = |k: usize| RunStats {
            evaluations: k,
            iterations: 2 * k + 1,
            elapsed: Duration::from_micros(k as u64 * 37),
            raw_schedules: k / 2,
            delta_schedules: k / 3,
            spliced_steps: 5 * k,
        };
        let (a, b, c) = (stats(3), stats(8), stats(21));
        assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::AdHoc.name(), "AH");
        assert_eq!(Strategy::mh().name(), "MH");
        assert_eq!(Strategy::sa().name(), "SA");
    }
}
