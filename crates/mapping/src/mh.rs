//! The mapping heuristic (MH) — the paper's main algorithm.
//!
//! Starting from a valid solution, MH iteratively performs design
//! transformations that improve the objective `C`, *examining only the
//! transformations with the highest potential* (slide 14):
//!
//! * processes whose scheduled jobs border large slack (moving them can
//!   merge fragments into the contiguous slack C1 rewards), and
//! * processes and messages lying inside the worst `Tmin` window of their
//!   resource (moving them out raises the periodic minimum slack C2
//!   rewards)
//!
//! are the candidates; everything else is skipped. Each iteration
//! evaluates the candidate moves (remap to another PE, shift to a
//! different slack on the same PE, shift a message to a different bus
//! slot), commits the best improving one, and stops at a local optimum.

use crate::context::{Evaluation, MapError, MappingContext};
use crate::solution::{Move, Solution};
use incdes_model::{PeId, ProcRef, Time};
use incdes_sched::MsgRef;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Tuning knobs of [`mapping_heuristic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MhConfig {
    /// Stop after this many committed improvements.
    pub max_iterations: usize,
    /// Number of highest-potential processes considered per iteration.
    pub process_candidates: usize,
    /// Number of messages considered per iteration.
    pub message_candidates: usize,
    /// Largest "skip n gaps" hint explored for processes.
    pub max_gap_hint: u32,
    /// Largest "skip n slots" hint explored for messages.
    pub max_slot_hint: u32,
}

impl Default for MhConfig {
    fn default() -> Self {
        MhConfig {
            max_iterations: 64,
            process_candidates: 12,
            message_candidates: 8,
            max_gap_hint: 4,
            max_slot_hint: 4,
        }
    }
}

/// Result of an MH run.
#[derive(Debug, Clone)]
pub struct MhOutcome {
    /// The improved solution.
    pub solution: Solution,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Committed improvement steps.
    pub iterations: usize,
}

/// Runs the mapping heuristic from `initial` (which must be feasible).
///
/// # Errors
///
/// [`MapError::Infeasible`] if `initial` does not schedule;
/// [`MapError::InvalidInput`] for malformed inputs.
pub fn mapping_heuristic(
    ctx: &MappingContext<'_>,
    initial: Solution,
    cfg: &MhConfig,
) -> Result<MhOutcome, MapError> {
    let mut current = initial;
    let mut current_eval = ctx.evaluate(&current).map_err(|e| {
        if e.is_infeasible() {
            MapError::Infeasible { last: e }
        } else {
            MapError::InvalidInput(e)
        }
    })?;

    let total_procs = ctx.app.process_count().max(1);
    let mut iterations = 0usize;
    'improve: while iterations < cfg.max_iterations {
        // Early exit: nothing left to improve.
        if current_eval.cost.total <= f64::EPSILON {
            break;
        }
        // Examine the highest-potential transformations first; when none
        // of them improves, progressively widen the candidate set so MH
        // only stops at a genuine local optimum of the full move space.
        //
        // `current` is fixed while widening, so a move evaluated in a
        // narrower round cannot improve in a wider one (it would have
        // been committed on the spot) — skip the duplicates instead of
        // re-evaluating them.
        let mut widened = *cfg;
        let mut tried: HashSet<Move> = HashSet::new();
        loop {
            let moves = candidate_moves(ctx, &current, &current_eval, &widened);
            // The round's fresh (not yet tried) moves, in candidate
            // order, evaluated as one batch: sequentially or over the
            // context's worker pool, per its `SearchParallelism`. The
            // reduction below walks the results in candidate-index
            // order with first-improving acceptance, so the committed
            // move is identical at any thread count.
            let fresh: Vec<Move> = moves.into_iter().filter(|mv| tried.insert(*mv)).collect();
            let trials: Vec<Solution> = fresh.iter().map(|mv| current.with_move(mv)).collect();
            let results = ctx.evaluate_all(&trials);
            let mut best: Option<(Move, Evaluation)> = None;
            for (mv, result) in fresh.iter().zip(results) {
                let Ok(eval) = result else {
                    continue; // infeasible move — skip
                };
                let better = match &best {
                    None => eval.cost.total < current_eval.cost.total - 1e-9,
                    Some((_, b)) => eval.cost.total < b.cost.total - 1e-9,
                };
                if better {
                    best = Some((*mv, eval));
                }
            }
            if let Some((mv, eval)) = best {
                current.apply(&mv);
                current_eval = eval;
                iterations += 1;
                continue 'improve;
            }
            if widened.process_candidates >= total_procs {
                break 'improve; // local optimum of the full neighborhood
            }
            widened.process_candidates = widened
                .process_candidates
                .saturating_mul(2)
                .min(total_procs);
            widened.message_candidates = widened.message_candidates.saturating_mul(2);
        }
    }
    Ok(MhOutcome {
        solution: current,
        evaluation: current_eval,
        iterations,
    })
}

/// Builds the candidate move list for one iteration.
fn candidate_moves(
    ctx: &MappingContext<'_>,
    current: &Solution,
    eval: &Evaluation,
    cfg: &MhConfig,
) -> Vec<Move> {
    let arch = ctx.arch;
    let t_min = ctx.future.t_min;

    // Worst (minimum-slack) window per PE — the C2 bottleneck.
    let worst_window: Vec<Option<(Time, Time)>> = (0..arch.pe_count())
        .map(|i| worst_window_of(&eval.slack, PeId(i as u32), t_min))
        .collect();

    // Potential of each process of the current application.
    let mut potential: BTreeMap<ProcRef, u64> = BTreeMap::new();
    for job in eval.table.jobs() {
        if job.job.app != ctx.app_id {
            continue; // frozen applications are untouchable
        }
        let pr = job.job.proc_ref();
        let tls = &eval.slack;
        // Slack bordering this job on its PE.
        let mut border = 0u64;
        for &(gs, ge) in tls.gaps_of(job.pe) {
            if ge == job.start || gs == job.end {
                border += (ge - gs).ticks();
            }
        }
        // Bonus when the job sits in its PE's worst window.
        let bonus = match worst_window[job.pe.index()] {
            Some((ws, we)) if job.start < we && job.end > ws => {
                (job.end.min(we) - job.start.max(ws)).ticks() * 4
            }
            _ => 0,
        };
        *potential.entry(pr).or_insert(0) += border + bonus + 1;
    }

    let mut procs: Vec<(ProcRef, u64)> = potential.into_iter().collect();
    procs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    procs.truncate(cfg.process_candidates);

    let mut moves = Vec::new();
    for &(pr, _) in &procs {
        let proc = ctx.app.process(pr);
        let cur_pe = current.mapping.pe_of(pr);
        for (pe, _) in proc.wcets.iter() {
            if pe.index() >= arch.pe_count() {
                continue;
            }
            if Some(pe) != cur_pe {
                moves.push(Move::Remap {
                    proc_ref: pr,
                    to: pe,
                });
            }
        }
        let h = current.hints.proc_gap(pr);
        if h < cfg.max_gap_hint {
            moves.push(Move::ProcSlack {
                proc_ref: pr,
                gap: h + 1,
            });
        }
        if h > 0 {
            moves.push(Move::ProcSlack {
                proc_ref: pr,
                gap: h - 1,
            });
        }
    }

    // Message candidates: the current app's distinct messages, largest
    // transmissions first (they dominate both bus metrics).
    let mut msgs: BTreeSet<MsgRef> = BTreeSet::new();
    let mut sized: Vec<(Time, MsgRef)> = Vec::new();
    for m in eval.table.messages() {
        if m.app == ctx.app_id && msgs.insert(m.msg) {
            sized.push((m.reservation.duration(), m.msg));
        }
    }
    sized.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    sized.truncate(cfg.message_candidates);
    for &(_, mr) in &sized {
        let h = current.hints.msg_slot(mr);
        if h < cfg.max_slot_hint {
            moves.push(Move::MsgSlack {
                msg: mr,
                slot: h + 1,
            });
        }
        if h > 0 {
            moves.push(Move::MsgSlack {
                msg: mr,
                slot: h - 1,
            });
        }
    }
    moves
}

/// The `t_min` window of `pe` with the least slack, if any window exists.
fn worst_window_of(
    slack: &incdes_sched::SlackProfile,
    pe: PeId,
    t_min: Time,
) -> Option<(Time, Time)> {
    if t_min.is_zero() {
        return None;
    }
    let horizon = slack.horizon();
    let windows = horizon.ticks() / t_min.ticks();
    if windows == 0 {
        return Some((Time::ZERO, horizon));
    }
    (0..windows)
        .map(|k| {
            let from = Time::new(k * t_min.ticks());
            (slack.pe_slack_in(pe, from, from + t_min), from)
        })
        .min_by_key(|&(s, from)| (s, from))
        .map(|(_, from)| (from, from + t_min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im::initial_mapping;
    use incdes_metrics::Weights;
    use incdes_model::prelude::*;
    use incdes_model::AppId;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    /// Several independent processes that can run on either PE — plenty of
    /// room for MH to rearrange slack.
    fn spread_app(n: usize) -> Application {
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        for i in 0..n {
            g.add_process(
                Process::new(format!("p{i}"))
                    .wcet(PeId(0), Time::new(20))
                    .wcet(PeId(1), Time::new(20)),
            );
        }
        Application::new("app", vec![g])
    }

    #[test]
    fn mh_never_worsens_cost() {
        let arch = arch2();
        let app = spread_app(6);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        let im = initial_mapping(&ctx).unwrap();
        let im_cost = ctx.evaluate(&im).unwrap().cost.total;
        let out = mapping_heuristic(&ctx, im, &MhConfig::default()).unwrap();
        assert!(out.evaluation.cost.total <= im_cost + 1e-9);
        assert!(out.evaluation.table.is_deadline_clean());
    }

    #[test]
    fn mh_rejects_infeasible_start() {
        let arch = arch2();
        let app = spread_app(2);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        // Unmapped solution → MappingIncomplete (invalid input, not
        // infeasible).
        let err = mapping_heuristic(&ctx, Solution::new(), &MhConfig::default()).unwrap_err();
        assert!(matches!(err, MapError::InvalidInput(_)));
    }

    #[test]
    fn mh_stops_at_zero_cost() {
        let arch = arch2();
        let app = spread_app(1);
        // A tiny future application that always fits → cost 0 everywhere.
        let future = FutureProfile::new(
            Time::new(240),
            Time::new(1),
            Time::new(1),
            Histogram::point(Time::new(1)),
            Histogram::point(1u32),
        );
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        let im = initial_mapping(&ctx).unwrap();
        let evals_before = ctx.evaluation_count();
        let out = mapping_heuristic(&ctx, im, &MhConfig::default()).unwrap();
        assert_eq!(out.evaluation.cost.total, 0.0);
        assert_eq!(out.iterations, 0);
        // Only the initial evaluation should have happened.
        assert_eq!(ctx.evaluation_count(), evals_before + 1);
    }

    /// Regression test for widening re-evaluation waste: a local optimum
    /// that forces several widening rounds must evaluate each distinct
    /// move exactly once, not once per round.
    #[test]
    fn mh_widening_deduplicates_moves() {
        let arch = arch2();
        // 8 independent processes allowed on PE0 only: no remap moves,
        // and the single trailing gap makes every `ProcSlack { gap: 1 }`
        // trial infeasible — nothing improves, so MH widens 2 → 4 → 8.
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        for i in 0..8 {
            g.add_process(Process::new(format!("p{i}")).wcet(PeId(0), Time::new(20)));
        }
        let app = Application::new("app", vec![g]);
        // A future demand that can never be met keeps the cost positive
        // (no zero-cost early exit).
        let future = FutureProfile::new(
            Time::new(240),
            Time::new(10_000),
            Time::ZERO,
            Histogram::point(Time::new(240)),
            Histogram::point(1u32),
        );
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(240),
            &future,
            &weights,
        );
        let mut initial = Solution::new();
        for i in 0..8u32 {
            initial.mapping.assign(ProcRef::new(0, NodeId(i)), PeId(0));
        }
        let cfg = MhConfig {
            process_candidates: 2,
            ..MhConfig::default()
        };
        let out = mapping_heuristic(&ctx, initial, &cfg).unwrap();
        assert_eq!(out.iterations, 0, "nothing can improve");
        assert!(out.evaluation.cost.total > 0.0);
        // 1 initial evaluation + 8 distinct ProcSlack moves. The widening
        // rounds (2, 4, then 8 candidates) would re-evaluate 2 + 4 = 6 of
        // them again without dedupe (14 + 1 evaluations in total).
        assert_eq!(ctx.evaluation_count(), 1 + 8);
    }

    #[test]
    fn mh_improves_a_fragmented_start() {
        use incdes_sched::{JobId, ScheduleTable, ScheduledJob};
        let arch = arch2();
        // Frozen system: PE1 fully busy, PE0 blocked in [100, 120).
        let frozen = ScheduleTable::new(
            Time::new(240),
            vec![
                ScheduledJob {
                    job: JobId::new(AppId(99), 0, 0, NodeId(0)),
                    pe: PeId(0),
                    start: Time::new(100),
                    end: Time::new(120),
                    release: Time::ZERO,
                    deadline: Time::new(240),
                },
                ScheduledJob {
                    job: JobId::new(AppId(99), 0, 0, NodeId(1)),
                    pe: PeId(1),
                    start: Time::ZERO,
                    end: Time::new(240),
                    release: Time::ZERO,
                    deadline: Time::new(240),
                },
            ],
            vec![],
        );
        // Current app: two 40-tick processes, PE0 only.
        let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
        let p1 = g.add_process(Process::new("p1").wcet(PeId(0), Time::new(40)));
        let p2 = g.add_process(Process::new("p2").wcet(PeId(0), Time::new(40)));
        let app = Application::new("app", vec![g]);
        // Future needs one contiguous 120-tick gap.
        let future = FutureProfile::new(
            Time::new(240),
            Time::new(120),
            Time::ZERO,
            Histogram::point(Time::new(120)),
            Histogram::point(1u32),
        );
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            Some(&frozen),
            Time::new(240),
            &future,
            &weights,
        );
        // Bad start: p2 skips into the gap after the blocker, splitting the
        // big slack so the 120-tick future item no longer fits anywhere.
        let mut bad = Solution::new();
        bad.mapping.assign(ProcRef::new(0, p1), PeId(0));
        bad.mapping.assign(ProcRef::new(0, p2), PeId(0));
        bad.hints.set_proc_gap(ProcRef::new(0, p2), 1);
        let bad_cost = ctx.evaluate(&bad).unwrap().cost.total;
        assert_eq!(bad_cost, 100.0, "bad start must strand the future app");
        let out = mapping_heuristic(&ctx, bad, &MhConfig::default()).unwrap();
        assert_eq!(
            out.evaluation.cost.total, 0.0,
            "MH should pull p2 back and restore the contiguous slack"
        );
        assert!(out.iterations >= 1);
    }
}
