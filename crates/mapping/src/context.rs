//! Evaluation context shared by all mapping strategies.
//!
//! [`MappingContext::evaluate`] is the strategies' inner loop, called
//! thousands of times per scenario. It runs on the incremental
//! evaluation engine of `incdes_sched::engine`:
//!
//! * the frozen schedule is replayed and validated **once** into an
//!   `Arc<FrozenBase>` — built lazily on the first evaluation, or
//!   injected pre-built via
//!   [`MappingContext::with_frozen_base`] so the campaign runner's
//!   per-step contexts share one bake per system state;
//! * a persistent [`Scheduler`] reuses its scratch arenas (job records,
//!   ready heap, per-graph priority cache) across evaluations;
//! * **delta scheduling**: when the candidate differs from the
//!   previously scheduled solution by at most
//!   [`DELTA_MAX_CHANGED_VARS`] design variables (the single-move
//!   neighbors MH and SA explore, plus the two-move distance between
//!   consecutive trials proposed from one pivot), the engine undoes and
//!   re-places only the jobs after the first changed reservation,
//!   splicing the untouched prefix from the previous run — see the
//!   decision rules in `incdes_sched::engine`;
//! * the slack profiles are `Arc`-backed, so untouched resources alias
//!   the frozen base's (or the previous evaluation's) gap lists, and
//!   the per-resource C2 terms plus the C1 bin-packing multiset
//!   ([`incdes_metrics::C1Cache`]) are cached **by storage identity**:
//!   an aliased gap list is never re-measured or re-packed;
//! * a solution-fingerprint memo returns previously evaluated design
//!   alternatives without re-scheduling, so SA's revisited states and
//!   MH's widening rounds skip duplicate schedules.
//!
//! [`MappingContext::evaluation_count`] keeps its historical meaning —
//! every [`evaluate`](MappingContext::evaluate) call counts, memo hit or
//! not — while [`MappingContext::raw_schedule_count`] reports how many
//! schedules were actually executed and
//! [`MappingContext::delta_schedule_count`] how many of those took the
//! delta path. Two reference pipelines are retained as oracles for
//! differential tests and the `figures bench-eval` measurements:
//! [`MappingContext::with_naive_evaluation`] (one-shot `schedule()` +
//! `SlackProfile::from_table` + `objective::evaluate`, no reuse at all)
//! and [`MappingContext::with_full_evaluation`] (the PR 4 engine: base +
//! scratch reuse + memo, but every raw schedule re-places all jobs).

use crate::solution::Solution;
use incdes_metrics::objective::{self, DesignCost, Weights};
use incdes_metrics::C1Cache;
use incdes_model::{AppId, Application, Architecture, FutureProfile, PeId, ProcRef, Time};
use incdes_sched::engine::{check_horizon, ChangedVar, FrozenBase, Scheduler};
use incdes_sched::{schedule, AppSpec, MsgRef, SchedError, ScheduleTable, SlackProfile};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error from a mapping strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application has no processes to map.
    EmptyApplication,
    /// No feasible design alternative was found (requirement *a* cannot be
    /// met on this system within the strategy's search budget).
    Infeasible {
        /// The scheduler error of the last attempt.
        last: SchedError,
    },
    /// The inputs are malformed (bad horizon, disallowed PE in a caller-
    /// provided mapping, ...).
    InvalidInput(SchedError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyApplication => write!(f, "application has no processes"),
            MapError::Infeasible { last } => {
                write!(
                    f,
                    "no feasible mapping found (last scheduler error: {last})"
                )
            }
            MapError::InvalidInput(e) => write!(f, "invalid mapping input: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A fully evaluated design alternative.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The complete schedule (frozen applications + current application).
    pub table: ScheduleTable,
    /// The slack profile of that schedule.
    pub slack: SlackProfile,
    /// The objective-function value.
    pub cost: DesignCost,
}

/// Upper bound on memoized design alternatives. When the memo fills up
/// it is cleared wholesale (a generational reset): SA and MH revisit
/// *recent* states, so a bounded memo keeps the hit rate high while
/// capping the memory spent on full `Evaluation` clones.
const MEMO_CAP: usize = 512;

/// Canonical identity of a design alternative: the full mapping plus all
/// non-zero hints, in deterministic order. Two solutions with the same
/// key produce byte-identical schedules, so memo hits are exact (no
/// hashing-collision risk — the key stores the actual design variables,
/// and the hash only routes to a bucket). Doubling as the predecessor
/// snapshot the delta gate diffs against: the sorted vectors make that
/// diff a linear slice walk instead of B-tree iteration.
#[derive(Debug, Default, PartialEq, Eq, Hash)]
struct MemoKey {
    mapping: Vec<(ProcRef, PeId)>,
    proc_gaps: Vec<(ProcRef, u32)>,
    msg_slots: Vec<(MsgRef, u32)>,
}

impl Clone for MemoKey {
    fn clone(&self) -> Self {
        MemoKey {
            mapping: self.mapping.clone(),
            proc_gaps: self.proc_gaps.clone(),
            msg_slots: self.msg_slots.clone(),
        }
    }

    // The predecessor snapshot is refreshed on every raw schedule;
    // reusing its allocations keeps that free.
    fn clone_from(&mut self, source: &Self) {
        self.mapping.clone_from(&source.mapping);
        self.proc_gaps.clone_from(&source.proc_gaps);
        self.msg_slots.clone_from(&source.msg_slots);
    }
}

impl MemoKey {
    fn of(solution: &Solution) -> Self {
        MemoKey {
            mapping: solution.mapping.iter().collect(),
            proc_gaps: solution.hints.proc_gaps().collect(),
            msg_slots: solution.hints.msg_slots().collect(),
        }
    }
}

/// The FxHash mix (Firefox/rustc's default internal hasher): the memo
/// keys are trusted program state, not attacker input, so the DoS
/// resistance of SipHash buys nothing here and its cost is paid on
/// every evaluation.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Largest number of changed design variables (mapping entries + gap
/// hints + slot hints, counted as a symmetric difference) for which the
/// delta-scheduling path is attempted. A remap touches at most two
/// variables (the mapping entry plus its reset gap hint), so 4 covers
/// two design transformations — the distance between consecutive SA/MH
/// trials proposed from one pivot solution (undo the rejected move,
/// apply the next). Larger diffs take the full-engine path.
pub const DELTA_MAX_CHANGED_VARS: usize = 4;

/// Walks the symmetric difference of two sorted key→value iterators,
/// invoking `on_diff` for every differing key; gives up (returns
/// `false`) as soon as more than `cap` differences accumulate in
/// `count`.
fn sym_diff<K: Ord + Copy, V: PartialEq>(
    a: impl Iterator<Item = (K, V)>,
    b: impl Iterator<Item = (K, V)>,
    cap: usize,
    count: &mut usize,
    mut on_diff: impl FnMut(K),
) -> bool {
    let mut a = a.peekable();
    let mut b = b.peekable();
    loop {
        let key = match (a.peek(), b.peek()) {
            (None, None) => return true,
            (Some(&(ka, _)), None) => {
                a.next();
                Some(ka)
            }
            (None, Some(&(kb, _))) => {
                b.next();
                Some(kb)
            }
            (Some(&(ka, _)), Some(&(kb, _))) => match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    a.next();
                    Some(ka)
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                    Some(kb)
                }
                std::cmp::Ordering::Equal => {
                    let (_, va) = a.next().expect("peeked");
                    let (_, vb) = b.next().expect("peeked");
                    if va != vb {
                        Some(ka)
                    } else {
                        None
                    }
                }
            },
        };
        if let Some(k) = key {
            *count += 1;
            if *count > cap {
                return false;
            }
            on_diff(k);
        }
    }
}

/// Collects the design variables differing between two solution keys
/// into `vars` (sorted, deduplicated, ready for
/// `Scheduler::schedule_delta_hinted_with_slack`). Returns `false` —
/// and leaves `vars` unspecified — when more than `cap` variables
/// differ; the caller then takes the full-engine path. Both keys store
/// their variables sorted, so this is a linear slice walk.
fn collect_key_delta(
    prev: &MemoKey,
    cur: &MemoKey,
    cap: usize,
    vars: &mut Vec<ChangedVar>,
) -> bool {
    vars.clear();
    let mut count = 0usize;
    let proc_var = |pr: ProcRef| ChangedVar::Proc {
        spec: 0,
        graph: pr.graph,
        node: pr.node,
    };
    if !sym_diff(
        prev.mapping.iter().copied(),
        cur.mapping.iter().copied(),
        cap,
        &mut count,
        |k| vars.push(proc_var(k)),
    ) {
        return false;
    }
    if !sym_diff(
        prev.proc_gaps.iter().copied(),
        cur.proc_gaps.iter().copied(),
        cap,
        &mut count,
        |k| vars.push(proc_var(k)),
    ) {
        return false;
    }
    if !sym_diff(
        prev.msg_slots.iter().copied(),
        cur.msg_slots.iter().copied(),
        cap,
        &mut count,
        |m: MsgRef| {
            vars.push(ChangedVar::Msg {
                spec: 0,
                graph: m.graph,
                edge: m.edge,
            })
        },
    ) {
        return false;
    }
    // A remap and its hint reset touch the same process twice; the
    // engine wants each variable once, in expansion order.
    vars.sort_unstable();
    vars.dedup();
    true
}

/// The per-context evaluation engine state: baked frozen base, scheduler
/// scratch, objective-term caches and the solution memo.
#[derive(Debug, Default)]
struct EvalEngine {
    /// Lazily built (or injected) frozen base, shared via `Arc` when the
    /// caller reuses one bake across contexts.
    base: Option<Result<Arc<FrozenBase>, SchedError>>,
    scheduler: Scheduler,
    memo: HashMap<MemoKey, Result<Evaluation, SchedError>, FxBuild>,
    /// The key of the most recent raw schedule — the predecessor
    /// snapshot the delta gate diffs candidates against.
    last_key: Option<MemoKey>,
    /// Per-PE C2 terms keyed by the gap storage they were measured on
    /// (holding the `Arc` keeps the storage alive, making pointer
    /// identity a sound cache key).
    c2_pe: Vec<Option<(Arc<Vec<(Time, Time)>>, Time)>>,
    /// Bus C2 term, keyed likewise.
    c2_bus: Option<(Arc<Vec<(Time, Time)>>, Time)>,
    /// Incremental C1 bin-packing state, patched by storage identity.
    c1: C1Cache,
    /// Scratch for the collected solution diff (no per-eval allocation).
    vars_scratch: Vec<ChangedVar>,
}

/// Everything a strategy needs to evaluate design alternatives for one
/// *current application* on one system state.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// The hardware platform.
    pub arch: &'a Architecture,
    /// Id the current application's jobs will carry.
    pub app_id: AppId,
    /// The current application.
    pub app: &'a Application,
    /// Frozen schedule of the existing applications, already replicated to
    /// `horizon`. `None` for an empty system.
    pub frozen: Option<&'a ScheduleTable>,
    /// The system hyperperiod (LCM of all periods, old and new).
    pub horizon: Time,
    /// Characterization of the future applications.
    pub future: &'a FutureProfile,
    /// Objective-function weights.
    pub weights: &'a Weights,
    evaluations: Cell<usize>,
    raw_schedules: Cell<usize>,
    memo_hits: Cell<usize>,
    naive: bool,
    full_engine: bool,
    engine: RefCell<EvalEngine>,
}

impl<'a> MappingContext<'a> {
    /// Creates a context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arch: &'a Architecture,
        app_id: AppId,
        app: &'a Application,
        frozen: Option<&'a ScheduleTable>,
        horizon: Time,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> Self {
        MappingContext {
            arch,
            app_id,
            app,
            frozen,
            horizon,
            future,
            weights,
            evaluations: Cell::new(0),
            raw_schedules: Cell::new(0),
            memo_hits: Cell::new(0),
            naive: false,
            full_engine: false,
            engine: RefCell::new(EvalEngine::default()),
        }
    }

    /// Switches this context to the naive evaluation pipeline
    /// (`schedule()` + `SlackProfile::from_table` +
    /// `objective::evaluate`, no frozen-base reuse, no memo). The
    /// results are identical to the engine path; this exists as the
    /// reference for differential tests and the `figures bench-eval`
    /// speedup measurement.
    #[must_use]
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Disables the delta-scheduling path: every raw schedule resets the
    /// timelines from the frozen base and places all jobs (the PR 4
    /// engine behavior). Results are identical to the default delta
    /// path; this is the mid-tier oracle for differential tests and the
    /// `figures bench-eval` delta column.
    #[must_use]
    pub fn with_full_evaluation(mut self) -> Self {
        self.full_engine = true;
        self
    }

    /// Seeds this context with a pre-built frozen base, shared across
    /// contexts via `Arc` — the campaign runner bakes the frozen
    /// schedule once per system state instead of once per step. The
    /// base **must** have been built with this context's architecture,
    /// frozen table and horizon; the horizon is checked eagerly, the
    /// rest is the caller's contract (the result would silently describe
    /// the wrong system otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `base` covers a different horizon than this context.
    #[must_use]
    pub fn with_frozen_base(self, base: Arc<FrozenBase>) -> Self {
        assert_eq!(
            base.horizon(),
            self.horizon,
            "shared frozen base horizon mismatch"
        );
        self.engine.borrow_mut().base = Some(Ok(base));
        self
    }

    /// Schedules and scores one design alternative.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SchedError`]; use
    /// [`SchedError::is_infeasible`] to distinguish "does not fit" from
    /// "malformed input".
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluations.set(self.evaluations.get() + 1);
        self.evaluate_inner(solution)
    }

    /// [`evaluate`](Self::evaluate) without touching
    /// [`evaluation_count`](Self::evaluation_count) — bookkeeping
    /// re-derivations (SA rebuilding its best snapshot at the end) must
    /// not perturb the evaluation counts the paper tables report.
    pub(crate) fn evaluate_snapshot(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluate_inner(solution)
    }

    fn evaluate_inner(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        if self.naive {
            return self.evaluate_naive(solution);
        }
        let mut engine = self.engine.borrow_mut();
        let key = MemoKey::of(solution);
        if let Some(hit) = engine.memo.get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return hit.clone();
        }
        let result = self.evaluate_raw(&mut engine, solution, &key);
        if engine.memo.len() >= MEMO_CAP {
            engine.memo.clear();
        }
        engine.memo.insert(key, result.clone());
        result
    }

    /// One full engine evaluation (memo miss).
    fn evaluate_raw(
        &self,
        engine: &mut EvalEngine,
        solution: &Solution,
        key: &MemoKey,
    ) -> Result<Evaluation, SchedError> {
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        // Validated before the base is consulted so error precedence
        // matches the naive pipeline exactly.
        check_horizon(&[spec], self.horizon)?;
        let EvalEngine {
            base,
            scheduler,
            last_key,
            c2_pe,
            c2_bus,
            c1,
            vars_scratch,
            ..
        } = engine;
        let base = base.get_or_insert_with(|| {
            FrozenBase::new(self.arch, self.frozen, self.horizon).map(Arc::new)
        });
        let base = match base {
            Ok(b) => b,
            Err(e) => return Err(e.clone()),
        };
        self.raw_schedules.set(self.raw_schedules.get() + 1);

        // Delta gate: small diffs against the previously scheduled
        // solution take the splice path, with the collected variable
        // list letting the engine patch its job arena in place;
        // everything else (first raw schedule, big jumps,
        // `with_full_evaluation`) resets from the base.
        let use_delta = !self.full_engine
            && last_key.as_ref().is_some_and(|prev| {
                collect_key_delta(prev, key, DELTA_MAX_CHANGED_VARS, vars_scratch)
            });
        let run = if use_delta {
            scheduler.schedule_delta_hinted_with_slack(self.arch, &[spec], base, vars_scratch)
        } else {
            scheduler.schedule_with_slack(self.arch, &[spec], base)
        };
        // Successful or not, the engine's record now describes this
        // solution (failed runs keep their completed prefix as a splice
        // source), so future candidates diff against it.
        match last_key {
            Some(prev) => prev.clone_from(key),
            None => *last_key = Some(key.clone()),
        }
        let (table, slack) = run?;

        // C2 terms cached by storage identity: gap lists aliased from
        // the frozen base (untouched PEs) or the previous evaluation
        // (PEs unchanged by the delta) are never re-measured.
        let t_min = self.future.t_min;
        if c2_pe.len() != slack.pe_count() {
            c2_pe.clear();
            c2_pe.resize(slack.pe_count(), None);
        }
        let mut c2p = Time::ZERO;
        for (i, slot) in c2_pe.iter_mut().enumerate() {
            let shared = slack.gaps_shared(PeId(i as u32));
            c2p += match slot {
                Some((arc, val)) if Arc::ptr_eq(arc, shared) => *val,
                _ => {
                    let val = incdes_metrics::c2_intervals(shared, self.horizon, t_min);
                    *slot = Some((Arc::clone(shared), val));
                    val
                }
            };
        }
        let shared_bus = slack.bus_windows_shared();
        let c2m = match c2_bus {
            Some((arc, val)) if Arc::ptr_eq(arc, shared_bus) => *val,
            _ => {
                let val = incdes_metrics::c2_intervals(shared_bus, self.horizon, t_min);
                *c2_bus = Some((Arc::clone(shared_bus), val));
                val
            }
        };
        let cost = objective::evaluate_with_c1_delta(
            self.arch,
            &slack,
            self.future,
            self.weights,
            c2p,
            c2m,
            c1,
        );
        Ok(Evaluation { table, slack, cost })
    }

    /// The reference pipeline (no base, no scratch, no memo).
    fn evaluate_naive(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.raw_schedules.set(self.raw_schedules.get() + 1);
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        let table = schedule(self.arch, &[spec], self.frozen, self.horizon)?;
        let slack = SlackProfile::from_table(self.arch, &table);
        let cost = objective::evaluate(self.arch, &slack, self.future, self.weights);
        Ok(Evaluation { table, slack, cost })
    }

    /// Number of schedule evaluations performed through this context
    /// (every [`evaluate`](Self::evaluate) call, memo hit or not — the
    /// historical semantics the paper tables rely on).
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.get()
    }

    /// Number of raw schedules actually executed: evaluations that
    /// missed the memo and ran the scheduler. Always ≤
    /// [`evaluation_count`](Self::evaluation_count) on the engine path.
    pub fn raw_schedule_count(&self) -> usize {
        self.raw_schedules.get()
    }

    /// Number of evaluations answered from the solution memo.
    pub fn memo_hit_count(&self) -> usize {
        self.memo_hits.get()
    }

    /// Number of raw schedules that took the delta-scheduling path
    /// (spliced the previous run instead of resetting from the base).
    /// Always ≤ [`raw_schedule_count`](Self::raw_schedule_count); zero
    /// on the naive and full-engine pipelines.
    pub fn delta_schedule_count(&self) -> usize {
        self.engine.borrow().scheduler.delta_schedule_count()
    }

    /// Total placement steps the delta path spliced verbatim from run
    /// records (diagnostics for benches and tests).
    pub fn spliced_step_count(&self) -> usize {
        self.engine.borrow().scheduler.spliced_step_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        Application::new("app", vec![g])
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol = Solution::from_mapping(mapping);
        assert_eq!(ctx.evaluation_count(), 0);
        let eval = ctx.evaluate(&sol).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        assert!(eval.cost.is_feasible());
        assert_eq!(eval.table.jobs().len(), 1);
    }

    #[test]
    fn evaluate_surfaces_infeasibility() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(4));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let err = ctx.evaluate(&Solution::from_mapping(mapping)).unwrap_err();
        assert!(err.is_infeasible());
    }
}
