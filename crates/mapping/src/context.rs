//! Evaluation context shared by all mapping strategies.
//!
//! [`MappingContext::evaluate`] is the strategies' inner loop, called
//! thousands of times per scenario. It runs on the incremental
//! evaluation engine of `incdes_sched::engine`:
//!
//! * the frozen schedule is replayed and validated **once** into a
//!   [`FrozenBase`], built lazily on the first evaluation;
//! * a persistent [`Scheduler`] reuses its scratch arenas (job records,
//!   ready heap, per-graph priority cache) across evaluations and
//!   derives the slack profile incrementally (untouched PEs reuse the
//!   baked frozen-only gap lists);
//! * the per-PE and bus C2 objective terms of untouched resources are
//!   cached across evaluations;
//! * a solution-fingerprint memo returns previously evaluated design
//!   alternatives without re-scheduling, so SA's revisited states and
//!   MH's widening rounds skip duplicate schedules.
//!
//! [`MappingContext::evaluation_count`] keeps its historical meaning —
//! every [`evaluate`](MappingContext::evaluate) call counts, memo hit or
//! not — while [`MappingContext::raw_schedule_count`] reports how many
//! schedules were actually executed. The engine is observationally
//! equivalent to the naive `schedule()` + `SlackProfile::from_table` +
//! `objective::evaluate` pipeline, which remains available behind
//! [`MappingContext::with_naive_evaluation`] for differential tests and
//! benchmarks.

use crate::solution::Solution;
use incdes_metrics::objective::{self, DesignCost, Weights};
use incdes_model::{AppId, Application, Architecture, FutureProfile, PeId, ProcRef, Time};
use incdes_sched::engine::{check_horizon, FrozenBase, Scheduler};
use incdes_sched::{schedule, AppSpec, MsgRef, SchedError, ScheduleTable, SlackProfile};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;

/// Error from a mapping strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application has no processes to map.
    EmptyApplication,
    /// No feasible design alternative was found (requirement *a* cannot be
    /// met on this system within the strategy's search budget).
    Infeasible {
        /// The scheduler error of the last attempt.
        last: SchedError,
    },
    /// The inputs are malformed (bad horizon, disallowed PE in a caller-
    /// provided mapping, ...).
    InvalidInput(SchedError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyApplication => write!(f, "application has no processes"),
            MapError::Infeasible { last } => {
                write!(
                    f,
                    "no feasible mapping found (last scheduler error: {last})"
                )
            }
            MapError::InvalidInput(e) => write!(f, "invalid mapping input: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A fully evaluated design alternative.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The complete schedule (frozen applications + current application).
    pub table: ScheduleTable,
    /// The slack profile of that schedule.
    pub slack: SlackProfile,
    /// The objective-function value.
    pub cost: DesignCost,
}

/// Upper bound on memoized design alternatives. When the memo fills up
/// it is cleared wholesale (a generational reset): SA and MH revisit
/// *recent* states, so a bounded memo keeps the hit rate high while
/// capping the memory spent on full `Evaluation` clones.
const MEMO_CAP: usize = 512;

/// Canonical identity of a design alternative: the full mapping plus all
/// non-zero hints, in deterministic order. Two solutions with the same
/// key produce byte-identical schedules, so memo hits are exact (no
/// hashing-collision risk — the key stores the actual design variables).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    mapping: Vec<(ProcRef, PeId)>,
    proc_gaps: Vec<(ProcRef, u32)>,
    msg_slots: Vec<(MsgRef, u32)>,
}

impl MemoKey {
    fn of(solution: &Solution) -> Self {
        MemoKey {
            mapping: solution.mapping.iter().collect(),
            proc_gaps: solution.hints.proc_gaps().collect(),
            msg_slots: solution.hints.msg_slots().collect(),
        }
    }
}

/// The per-context evaluation engine state: baked frozen base, scheduler
/// scratch, objective-term caches and the solution memo.
#[derive(Debug, Default)]
struct EvalEngine {
    /// Lazily built frozen base (or the error building it produced).
    base: Option<Result<FrozenBase, SchedError>>,
    scheduler: Scheduler,
    memo: HashMap<MemoKey, Result<Evaluation, SchedError>>,
    /// Frozen-only per-PE C2 terms, filled on first use.
    c2_pe: Vec<Option<Time>>,
    /// Frozen-only bus C2 term, filled on first use.
    c2_bus: Option<Time>,
}

/// Everything a strategy needs to evaluate design alternatives for one
/// *current application* on one system state.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// The hardware platform.
    pub arch: &'a Architecture,
    /// Id the current application's jobs will carry.
    pub app_id: AppId,
    /// The current application.
    pub app: &'a Application,
    /// Frozen schedule of the existing applications, already replicated to
    /// `horizon`. `None` for an empty system.
    pub frozen: Option<&'a ScheduleTable>,
    /// The system hyperperiod (LCM of all periods, old and new).
    pub horizon: Time,
    /// Characterization of the future applications.
    pub future: &'a FutureProfile,
    /// Objective-function weights.
    pub weights: &'a Weights,
    evaluations: Cell<usize>,
    raw_schedules: Cell<usize>,
    memo_hits: Cell<usize>,
    naive: bool,
    engine: RefCell<EvalEngine>,
}

impl<'a> MappingContext<'a> {
    /// Creates a context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arch: &'a Architecture,
        app_id: AppId,
        app: &'a Application,
        frozen: Option<&'a ScheduleTable>,
        horizon: Time,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> Self {
        MappingContext {
            arch,
            app_id,
            app,
            frozen,
            horizon,
            future,
            weights,
            evaluations: Cell::new(0),
            raw_schedules: Cell::new(0),
            memo_hits: Cell::new(0),
            naive: false,
            engine: RefCell::new(EvalEngine::default()),
        }
    }

    /// Switches this context to the naive evaluation pipeline
    /// (`schedule()` + `SlackProfile::from_table` +
    /// `objective::evaluate`, no frozen-base reuse, no memo). The
    /// results are identical to the engine path; this exists as the
    /// reference for differential tests and the `figures bench-eval`
    /// speedup measurement.
    #[must_use]
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Schedules and scores one design alternative.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SchedError`]; use
    /// [`SchedError::is_infeasible`] to distinguish "does not fit" from
    /// "malformed input".
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluations.set(self.evaluations.get() + 1);
        self.evaluate_inner(solution)
    }

    /// [`evaluate`](Self::evaluate) without touching
    /// [`evaluation_count`](Self::evaluation_count) — bookkeeping
    /// re-derivations (SA rebuilding its best snapshot at the end) must
    /// not perturb the evaluation counts the paper tables report.
    pub(crate) fn evaluate_snapshot(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluate_inner(solution)
    }

    fn evaluate_inner(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        if self.naive {
            return self.evaluate_naive(solution);
        }
        let mut engine = self.engine.borrow_mut();
        let key = MemoKey::of(solution);
        if let Some(hit) = engine.memo.get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return hit.clone();
        }
        let result = self.evaluate_raw(&mut engine, solution);
        if engine.memo.len() >= MEMO_CAP {
            engine.memo.clear();
        }
        engine.memo.insert(key, result.clone());
        result
    }

    /// One full engine evaluation (memo miss).
    fn evaluate_raw(
        &self,
        engine: &mut EvalEngine,
        solution: &Solution,
    ) -> Result<Evaluation, SchedError> {
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        // Validated before the base is consulted so error precedence
        // matches the naive pipeline exactly.
        check_horizon(&[spec], self.horizon)?;
        let EvalEngine {
            base,
            scheduler,
            c2_pe,
            c2_bus,
            ..
        } = engine;
        let base =
            base.get_or_insert_with(|| FrozenBase::new(self.arch, self.frozen, self.horizon));
        let base = match base {
            Ok(b) => b,
            Err(e) => return Err(e.clone()),
        };
        self.raw_schedules.set(self.raw_schedules.get() + 1);
        let (table, slack) = scheduler.schedule_with_slack(self.arch, &[spec], base)?;

        // C2 terms: untouched resources keep their frozen-only values,
        // cached across evaluations; only touched ones are recomputed.
        let t_min = self.future.t_min;
        let touched = scheduler.touched_pes();
        if c2_pe.len() != slack.pe_count() {
            c2_pe.clear();
            c2_pe.resize(slack.pe_count(), None);
        }
        let mut c2p = Time::ZERO;
        for i in 0..slack.pe_count() {
            let pe = PeId(i as u32);
            c2p += if touched[i] {
                incdes_metrics::c2_intervals(slack.gaps_of(pe), self.horizon, t_min)
            } else {
                *c2_pe[i].get_or_insert_with(|| {
                    incdes_metrics::c2_intervals(base.gaps_of(pe), self.horizon, t_min)
                })
            };
        }
        let c2m = if scheduler.bus_touched() {
            incdes_metrics::c2_intervals(slack.bus_windows(), self.horizon, t_min)
        } else {
            *c2_bus.get_or_insert_with(|| {
                incdes_metrics::c2_intervals(base.bus_windows(), self.horizon, t_min)
            })
        };
        let cost =
            objective::evaluate_with_c2(self.arch, &slack, self.future, self.weights, c2p, c2m);
        Ok(Evaluation { table, slack, cost })
    }

    /// The reference pipeline (no base, no scratch, no memo).
    fn evaluate_naive(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.raw_schedules.set(self.raw_schedules.get() + 1);
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        let table = schedule(self.arch, &[spec], self.frozen, self.horizon)?;
        let slack = SlackProfile::from_table(self.arch, &table);
        let cost = objective::evaluate(self.arch, &slack, self.future, self.weights);
        Ok(Evaluation { table, slack, cost })
    }

    /// Number of schedule evaluations performed through this context
    /// (every [`evaluate`](Self::evaluate) call, memo hit or not — the
    /// historical semantics the paper tables rely on).
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.get()
    }

    /// Number of raw schedules actually executed: evaluations that
    /// missed the memo and ran the scheduler. Always ≤
    /// [`evaluation_count`](Self::evaluation_count) on the engine path.
    pub fn raw_schedule_count(&self) -> usize {
        self.raw_schedules.get()
    }

    /// Number of evaluations answered from the solution memo.
    pub fn memo_hit_count(&self) -> usize {
        self.memo_hits.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        Application::new("app", vec![g])
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol = Solution::from_mapping(mapping);
        assert_eq!(ctx.evaluation_count(), 0);
        let eval = ctx.evaluate(&sol).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        assert!(eval.cost.is_feasible());
        assert_eq!(eval.table.jobs().len(), 1);
    }

    #[test]
    fn evaluate_surfaces_infeasibility() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(4));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let err = ctx.evaluate(&Solution::from_mapping(mapping)).unwrap_err();
        assert!(err.is_infeasible());
    }
}
