//! Evaluation context shared by all mapping strategies.

use crate::solution::Solution;
use incdes_metrics::objective::{self, DesignCost, Weights};
use incdes_model::{AppId, Application, Architecture, FutureProfile, Time};
use incdes_sched::{schedule, AppSpec, SchedError, ScheduleTable, SlackProfile};
use std::cell::Cell;
use std::fmt;

/// Error from a mapping strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application has no processes to map.
    EmptyApplication,
    /// No feasible design alternative was found (requirement *a* cannot be
    /// met on this system within the strategy's search budget).
    Infeasible {
        /// The scheduler error of the last attempt.
        last: SchedError,
    },
    /// The inputs are malformed (bad horizon, disallowed PE in a caller-
    /// provided mapping, ...).
    InvalidInput(SchedError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyApplication => write!(f, "application has no processes"),
            MapError::Infeasible { last } => {
                write!(
                    f,
                    "no feasible mapping found (last scheduler error: {last})"
                )
            }
            MapError::InvalidInput(e) => write!(f, "invalid mapping input: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A fully evaluated design alternative.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The complete schedule (frozen applications + current application).
    pub table: ScheduleTable,
    /// The slack profile of that schedule.
    pub slack: SlackProfile,
    /// The objective-function value.
    pub cost: DesignCost,
}

/// Everything a strategy needs to evaluate design alternatives for one
/// *current application* on one system state.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// The hardware platform.
    pub arch: &'a Architecture,
    /// Id the current application's jobs will carry.
    pub app_id: AppId,
    /// The current application.
    pub app: &'a Application,
    /// Frozen schedule of the existing applications, already replicated to
    /// `horizon`. `None` for an empty system.
    pub frozen: Option<&'a ScheduleTable>,
    /// The system hyperperiod (LCM of all periods, old and new).
    pub horizon: Time,
    /// Characterization of the future applications.
    pub future: &'a FutureProfile,
    /// Objective-function weights.
    pub weights: &'a Weights,
    evaluations: Cell<usize>,
}

impl<'a> MappingContext<'a> {
    /// Creates a context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arch: &'a Architecture,
        app_id: AppId,
        app: &'a Application,
        frozen: Option<&'a ScheduleTable>,
        horizon: Time,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> Self {
        MappingContext {
            arch,
            app_id,
            app,
            frozen,
            horizon,
            future,
            weights,
            evaluations: Cell::new(0),
        }
    }

    /// Schedules and scores one design alternative.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SchedError`]; use
    /// [`SchedError::is_infeasible`] to distinguish "does not fit" from
    /// "malformed input".
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluations.set(self.evaluations.get() + 1);
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        let table = schedule(self.arch, &[spec], self.frozen, self.horizon)?;
        let slack = SlackProfile::from_table(self.arch, &table);
        let cost = objective::evaluate(self.arch, &slack, self.future, self.weights);
        Ok(Evaluation { table, slack, cost })
    }

    /// Number of schedule evaluations performed through this context.
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        Application::new("app", vec![g])
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol = Solution::from_mapping(mapping);
        assert_eq!(ctx.evaluation_count(), 0);
        let eval = ctx.evaluate(&sol).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        assert!(eval.cost.is_feasible());
        assert_eq!(eval.table.jobs().len(), 1);
    }

    #[test]
    fn evaluate_surfaces_infeasibility() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(4));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let err = ctx.evaluate(&Solution::from_mapping(mapping)).unwrap_err();
        assert!(err.is_infeasible());
    }
}
