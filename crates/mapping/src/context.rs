//! Evaluation context shared by all mapping strategies.
//!
//! [`MappingContext::evaluate`] is the strategies' inner loop, called
//! thousands of times per scenario. It runs on the incremental
//! evaluation engine of `incdes_sched::engine`:
//!
//! * the frozen schedule is replayed and validated **once** into an
//!   `Arc<FrozenBase>` — built lazily on the first evaluation, or
//!   injected pre-built via
//!   [`MappingContext::with_frozen_base`] so the campaign runner's
//!   per-step contexts share one bake per system state;
//! * a persistent [`Scheduler`] reuses its scratch arenas (job records,
//!   ready heap, per-graph priority cache) across evaluations;
//! * **delta scheduling**: the context keeps the solution keys of the
//!   last [`RECORD_CACHE_CAP`] raw schedules next to the scheduler's
//!   fingerprint-keyed record cache. When a candidate differs from
//!   *any* of those recorded solutions by at most
//!   [`DELTA_MAX_CHANGED_VARS`] design variables (the single-move
//!   neighbors MH and SA explore, plus the two-move distance between
//!   consecutive trials proposed from one pivot), the engine splices
//!   from the record with the **smallest diff** — an A→B→A revisit
//!   chain splices B→A from A's own record with a near-zero suffix
//!   instead of undoing everything B touched. Delta only engages after
//!   [`DELTA_MIN_CHAIN`] raw schedules: shorter runs (AH's
//!   two-candidate probes) can never amortize the record bookkeeping.
//!   See the decision rules in `incdes_sched::engine`;
//! * the slack profiles are `Arc`-backed, so untouched resources alias
//!   the frozen base's (or the previous evaluation's) gap lists, and
//!   the per-resource C2 terms ([`incdes_metrics::C2Cache`]) plus the
//!   C1 bin-packing multiset ([`incdes_metrics::C1Cache`]) are cached
//!   **by storage identity**: an aliased gap list is never re-measured
//!   or re-packed — and a gap list that *did* change re-measures only
//!   the `t_min` windows its diff span intersects;
//! * a solution-fingerprint memo returns previously evaluated design
//!   alternatives without re-scheduling, so SA's revisited states and
//!   MH's widening rounds skip duplicate schedules.
//!
//! [`MappingContext::evaluation_count`] keeps its historical meaning —
//! every [`evaluate`](MappingContext::evaluate) call counts, memo hit or
//! not — while [`MappingContext::raw_schedule_count`] reports how many
//! schedules were actually executed and
//! [`MappingContext::delta_schedule_count`] how many of those took the
//! delta path. Two reference pipelines are retained as oracles for
//! differential tests and the `figures bench-eval` measurements:
//! [`MappingContext::with_naive_evaluation`] (one-shot `schedule()` +
//! `SlackProfile::from_table` + `objective::evaluate`, no reuse at all)
//! and [`MappingContext::with_full_evaluation`] (the PR 4 engine: base +
//! scratch reuse + memo, but every raw schedule re-places all jobs).

use crate::solution::Solution;
use incdes_metrics::objective::{self, DesignCost, Weights};
use incdes_metrics::{C1Cache, C2Cache};
use incdes_model::{AppId, Application, Architecture, FutureProfile, PeId, ProcRef, Time};
use incdes_sched::engine::{check_horizon, ChangedVar, FrozenBase, Scheduler, RECORD_CACHE_CAP};
use incdes_sched::{schedule, AppSpec, MsgRef, SchedError, ScheduleTable, SlackProfile};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Error from a mapping strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application has no processes to map.
    EmptyApplication,
    /// No feasible design alternative was found (requirement *a* cannot be
    /// met on this system within the strategy's search budget).
    Infeasible {
        /// The scheduler error of the last attempt.
        last: SchedError,
    },
    /// The inputs are malformed (bad horizon, disallowed PE in a caller-
    /// provided mapping, ...).
    InvalidInput(SchedError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyApplication => write!(f, "application has no processes"),
            MapError::Infeasible { last } => {
                write!(
                    f,
                    "no feasible mapping found (last scheduler error: {last})"
                )
            }
            MapError::InvalidInput(e) => write!(f, "invalid mapping input: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A fully evaluated design alternative.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The complete schedule (frozen applications + current application).
    pub table: ScheduleTable,
    /// The slack profile of that schedule.
    pub slack: SlackProfile,
    /// The objective-function value.
    pub cost: DesignCost,
}

/// Upper bound on memoized design alternatives. When the memo fills up
/// the stale half is evicted (entries whose last hit is at or below the
/// median stamp): SA and MH revisit *recent* states, so the LRU-ish
/// policy keeps the hit rate high while capping the memory spent on
/// full `Evaluation` clones — and, unlike a wholesale clear, it keeps
/// the recently raw-scheduled predecessors resident, coherent with the
/// scheduler's record cache.
const MEMO_CAP: usize = 512;

/// Minimum number of raw schedules in a context's lifetime before the
/// delta-splice path engages. A two-evaluation probe (AH scoring each
/// PE once) pays the record bookkeeping on the first run and then never
/// amortizes it; short chains take the plain full-engine path.
pub const DELTA_MIN_CHAIN: usize = 3;

/// Canonical identity of a design alternative: the full mapping plus all
/// non-zero hints, in deterministic order. Two solutions with the same
/// key produce byte-identical schedules, so memo hits are exact (no
/// hashing-collision risk — the key stores the actual design variables,
/// and the hash only routes to a bucket). Doubling as the predecessor
/// snapshot the delta gate diffs against: the sorted vectors make that
/// diff a linear slice walk instead of B-tree iteration.
#[derive(Debug, Default, PartialEq, Eq, Hash)]
struct MemoKey {
    mapping: Vec<(ProcRef, PeId)>,
    proc_gaps: Vec<(ProcRef, u32)>,
    msg_slots: Vec<(MsgRef, u32)>,
}

impl Clone for MemoKey {
    fn clone(&self) -> Self {
        MemoKey {
            mapping: self.mapping.clone(),
            proc_gaps: self.proc_gaps.clone(),
            msg_slots: self.msg_slots.clone(),
        }
    }

    // The predecessor snapshot is refreshed on every raw schedule;
    // reusing its allocations keeps that free.
    fn clone_from(&mut self, source: &Self) {
        self.mapping.clone_from(&source.mapping);
        self.proc_gaps.clone_from(&source.proc_gaps);
        self.msg_slots.clone_from(&source.msg_slots);
    }
}

impl MemoKey {
    fn of(solution: &Solution) -> Self {
        MemoKey {
            mapping: solution.mapping.iter().collect(),
            proc_gaps: solution.hints.proc_gaps().collect(),
            msg_slots: solution.hints.msg_slots().collect(),
        }
    }
}

/// A memoized evaluation with the clock tick of its last hit, for the
/// LRU-ish eviction at [`MEMO_CAP`].
#[derive(Debug)]
struct MemoEntry {
    result: Result<Evaluation, SchedError>,
    stamp: u64,
}

/// The solution fingerprint shared with the scheduler's record cache:
/// the FxHash of the full memo key. Collisions are harmless — the
/// engine recomputes the exact divergence against any record it picks,
/// so a wrong `prefer` only costs a longer splice, never a wrong
/// schedule.
fn fingerprint(key: &MemoKey) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// The FxHash mix (Firefox/rustc's default internal hasher): the memo
/// keys are trusted program state, not attacker input, so the DoS
/// resistance of SipHash buys nothing here and its cost is paid on
/// every evaluation.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Largest number of changed design variables (mapping entries + gap
/// hints + slot hints, counted as a symmetric difference) for which the
/// delta-scheduling path is attempted. A remap touches at most two
/// variables (the mapping entry plus its reset gap hint), so 4 covers
/// two design transformations — the distance between consecutive SA/MH
/// trials proposed from one pivot solution (undo the rejected move,
/// apply the next). Larger diffs take the full-engine path.
pub const DELTA_MAX_CHANGED_VARS: usize = 4;

/// Walks the symmetric difference of two sorted key→value slices,
/// invoking `on_diff` for every differing key; gives up (returns
/// `false`) as soon as more than `cap` differences accumulate in
/// `count`. A plain two-pointer walk: the solution-ranking loop calls
/// this up to `3 × RECORD_CACHE_CAP` times per raw schedule, so the
/// per-element cost is on the strategy critical path.
fn sym_diff<K: Ord + Copy, V: PartialEq>(
    a: &[(K, V)],
    b: &[(K, V)],
    cap: usize,
    count: &mut usize,
    mut on_diff: impl FnMut(K),
) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ka, va) = &a[i];
        let (kb, vb) = &b[j];
        let k = match ka.cmp(kb) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                if va == vb {
                    continue;
                }
                *ka
            }
            std::cmp::Ordering::Less => {
                i += 1;
                *ka
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                *kb
            }
        };
        *count += 1;
        if *count > cap {
            return false;
        }
        on_diff(k);
    }
    for &(k, _) in a[i..].iter().chain(&b[j..]) {
        *count += 1;
        if *count > cap {
            return false;
        }
        on_diff(k);
    }
    true
}

/// Collects the design variables differing between two solution keys
/// into `vars` (sorted, deduplicated, ready for
/// `Scheduler::schedule_delta_hinted_with_slack`). Returns `false` —
/// and leaves `vars` unspecified — when more than `cap` variables
/// differ; the caller then takes the full-engine path. Both keys store
/// their variables sorted, so this is a linear slice walk.
fn collect_key_delta(
    prev: &MemoKey,
    cur: &MemoKey,
    cap: usize,
    vars: &mut Vec<ChangedVar>,
) -> bool {
    vars.clear();
    let mut count = 0usize;
    let proc_var = |pr: ProcRef| ChangedVar::Proc {
        spec: 0,
        graph: pr.graph,
        node: pr.node,
    };
    if !sym_diff(&prev.mapping, &cur.mapping, cap, &mut count, |k| {
        vars.push(proc_var(k))
    }) {
        return false;
    }
    if !sym_diff(&prev.proc_gaps, &cur.proc_gaps, cap, &mut count, |k| {
        vars.push(proc_var(k))
    }) {
        return false;
    }
    if !sym_diff(
        &prev.msg_slots,
        &cur.msg_slots,
        cap,
        &mut count,
        |m: MsgRef| {
            vars.push(ChangedVar::Msg {
                spec: 0,
                graph: m.graph,
                edge: m.edge,
            })
        },
    ) {
        return false;
    }
    // A remap and its hint reset touch the same process twice; the
    // engine wants each variable once, in expansion order.
    vars.sort_unstable();
    vars.dedup();
    true
}

/// Count-only twin of [`collect_key_delta`]: the number of differing
/// design variables between two solution keys, or `None` when more than
/// `cap` differ. Used to rank the recorded solutions as splice sources
/// without materializing their variable lists.
fn count_key_delta(prev: &MemoKey, cur: &MemoKey, cap: usize) -> Option<usize> {
    let mut count = 0usize;
    let ok = sym_diff(&prev.mapping, &cur.mapping, cap, &mut count, |_| {})
        && sym_diff(&prev.proc_gaps, &cur.proc_gaps, cap, &mut count, |_| {})
        && sym_diff(&prev.msg_slots, &cur.msg_slots, cap, &mut count, |_| {});
    ok.then_some(count)
}

/// The per-context evaluation engine state: baked frozen base, scheduler
/// scratch, objective-term caches and the solution memo.
#[derive(Debug, Default)]
struct EvalEngine {
    /// Lazily built (or injected) frozen base, shared via `Arc` when the
    /// caller reuses one bake across contexts.
    base: Option<Result<Arc<FrozenBase>, SchedError>>,
    scheduler: Scheduler,
    memo: HashMap<MemoKey, MemoEntry, FxBuild>,
    /// Monotone clock stamping memo hits, for the LRU-ish eviction.
    memo_clock: u64,
    /// Keys of the most recent raw schedules, most recent first — the
    /// context-side mirror of the scheduler's record cache. The front
    /// entry is the solution the scheduler's job arena currently
    /// describes (the arena-patch diff target); the best-diff entry
    /// names the splice source via its fingerprint. The two caches may
    /// drift (the scheduler evicts by its own stamps): a `prefer`
    /// fingerprint the scheduler no longer holds silently falls back to
    /// its live record, which is always correct.
    recent: Vec<(u64, MemoKey)>,
    /// Per-resource C2 terms with window-level incremental updates:
    /// aliased gap lists hit by storage identity, changed lists
    /// re-measure only the `t_min` windows their diff span intersects.
    c2: C2Cache,
    /// Incremental C1 bin-packing state, patched by storage identity.
    c1: C1Cache,
    /// Scratch for the collected solution diff (no per-eval allocation).
    vars_scratch: Vec<ChangedVar>,
}

/// Records a raw schedule of `key` (fingerprint `fp`) in the recency
/// list: the chosen splice source (if any) is bumped ahead of the LRU
/// tail first — a run of rejected trials must not evict the pivot they
/// all splice from — then the current key takes the front slot,
/// recycling the evicted entry's allocations.
fn note_raw_schedule(
    recent: &mut Vec<(u64, MemoKey)>,
    fp: u64,
    key: &MemoKey,
    chosen: Option<u64>,
) {
    if let Some(pf) = chosen.filter(|&pf| pf != fp) {
        if let Some(i) = recent.iter().position(|&(f, _)| f == pf) {
            if i > 0 {
                let e = recent.remove(i);
                recent.insert(0, e);
            }
        }
    }
    if let Some(i) = recent.iter().position(|&(f, _)| f == fp) {
        let mut e = recent.remove(i);
        e.1.clone_from(key);
        recent.insert(0, e);
    } else if recent.len() >= RECORD_CACHE_CAP {
        let mut e = recent.pop().expect("len checked");
        e.0 = fp;
        e.1.clone_from(key);
        recent.insert(0, e);
    } else {
        recent.insert(0, (fp, key.clone()));
    }
}

/// Everything a strategy needs to evaluate design alternatives for one
/// *current application* on one system state.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// The hardware platform.
    pub arch: &'a Architecture,
    /// Id the current application's jobs will carry.
    pub app_id: AppId,
    /// The current application.
    pub app: &'a Application,
    /// Frozen schedule of the existing applications, already replicated to
    /// `horizon`. `None` for an empty system.
    pub frozen: Option<&'a ScheduleTable>,
    /// The system hyperperiod (LCM of all periods, old and new).
    pub horizon: Time,
    /// Characterization of the future applications.
    pub future: &'a FutureProfile,
    /// Objective-function weights.
    pub weights: &'a Weights,
    evaluations: Cell<usize>,
    raw_schedules: Cell<usize>,
    memo_hits: Cell<usize>,
    naive: bool,
    full_engine: bool,
    engine: RefCell<EvalEngine>,
}

impl<'a> MappingContext<'a> {
    /// Creates a context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arch: &'a Architecture,
        app_id: AppId,
        app: &'a Application,
        frozen: Option<&'a ScheduleTable>,
        horizon: Time,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> Self {
        let ctx = MappingContext {
            arch,
            app_id,
            app,
            frozen,
            horizon,
            future,
            weights,
            evaluations: Cell::new(0),
            raw_schedules: Cell::new(0),
            memo_hits: Cell::new(0),
            naive: false,
            full_engine: false,
            engine: RefCell::new(EvalEngine::default()),
        };
        // Test/CI hook: `INCDES_RECORD_CACHE_CAP` overrides the
        // scheduler's record-cache capacity so the differential suites
        // can force eviction churn (small cap) or disable cached-record
        // splicing entirely (0) without an API change.
        if let Some(cap) = std::env::var("INCDES_RECORD_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            ctx.engine
                .borrow_mut()
                .scheduler
                .set_record_cache_capacity(cap);
        }
        ctx
    }

    /// Switches this context to the naive evaluation pipeline
    /// (`schedule()` + `SlackProfile::from_table` +
    /// `objective::evaluate`, no frozen-base reuse, no memo). The
    /// results are identical to the engine path; this exists as the
    /// reference for differential tests and the `figures bench-eval`
    /// speedup measurement.
    #[must_use]
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Disables the delta-scheduling path: every raw schedule resets the
    /// timelines from the frozen base and places all jobs (the PR 4
    /// engine behavior). Results are identical to the default delta
    /// path; this is the mid-tier oracle for differential tests and the
    /// `figures bench-eval` delta column.
    #[must_use]
    pub fn with_full_evaluation(mut self) -> Self {
        self.full_engine = true;
        self
    }

    /// Seeds this context with a pre-built frozen base, shared across
    /// contexts via `Arc` — the campaign runner bakes the frozen
    /// schedule once per system state instead of once per step. The
    /// base **must** have been built with this context's architecture,
    /// frozen table and horizon; the horizon is checked eagerly, the
    /// rest is the caller's contract (the result would silently describe
    /// the wrong system otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `base` covers a different horizon than this context.
    #[must_use]
    pub fn with_frozen_base(self, base: Arc<FrozenBase>) -> Self {
        assert_eq!(
            base.horizon(),
            self.horizon,
            "shared frozen base horizon mismatch"
        );
        self.engine.borrow_mut().base = Some(Ok(base));
        self
    }

    /// Schedules and scores one design alternative.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SchedError`]; use
    /// [`SchedError::is_infeasible`] to distinguish "does not fit" from
    /// "malformed input".
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluations.set(self.evaluations.get() + 1);
        self.evaluate_inner(solution)
    }

    /// [`evaluate`](Self::evaluate) without touching
    /// [`evaluation_count`](Self::evaluation_count) — bookkeeping
    /// re-derivations (SA rebuilding its best snapshot at the end) must
    /// not perturb the evaluation counts the paper tables report.
    pub(crate) fn evaluate_snapshot(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluate_inner(solution)
    }

    fn evaluate_inner(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        if self.naive {
            return self.evaluate_naive(solution);
        }
        let mut engine = self.engine.borrow_mut();
        let key = MemoKey::of(solution);
        engine.memo_clock += 1;
        let stamp = engine.memo_clock;
        if let Some(hit) = engine.memo.get_mut(&key) {
            hit.stamp = stamp;
            self.memo_hits.set(self.memo_hits.get() + 1);
            return hit.result.clone();
        }
        let result = self.evaluate_raw(&mut engine, solution, &key);
        if engine.memo.len() >= MEMO_CAP {
            // LRU-ish eviction: drop the stale half (last hit at or
            // below the median stamp). The recently raw-scheduled
            // predecessors carry fresh stamps and stay resident, so the
            // memo never forgets the solutions the record cache can
            // still splice from.
            let mut stamps: Vec<u64> = engine.memo.values().map(|e| e.stamp).collect();
            stamps.sort_unstable();
            let cutoff = stamps[stamps.len() / 2];
            engine.memo.retain(|_, e| e.stamp > cutoff);
        }
        engine.memo.insert(
            key,
            MemoEntry {
                result: result.clone(),
                stamp,
            },
        );
        result
    }

    /// One full engine evaluation (memo miss).
    fn evaluate_raw(
        &self,
        engine: &mut EvalEngine,
        solution: &Solution,
        key: &MemoKey,
    ) -> Result<Evaluation, SchedError> {
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        // Validated before the base is consulted so error precedence
        // matches the naive pipeline exactly.
        check_horizon(&[spec], self.horizon)?;
        let EvalEngine {
            base,
            scheduler,
            recent,
            c2,
            c1,
            vars_scratch,
            ..
        } = engine;
        let base = base.get_or_insert_with(|| {
            FrozenBase::new(self.arch, self.frozen, self.horizon).map(Arc::new)
        });
        let base = match base {
            Ok(b) => b,
            Err(e) => return Err(e.clone()),
        };
        self.raw_schedules.set(self.raw_schedules.get() + 1);
        let fp = fingerprint(key);

        // Delta gate: once the chain is long enough to amortize record
        // bookkeeping, rank every recorded solution by its diff against
        // the candidate and splice from the closest one (ties favor the
        // most recent). A revisit chain A→B→A finds A's own record at
        // distance ~0. Everything else (short chains, big jumps,
        // `with_full_evaluation`) resets from the base. Records enter
        // the scheduler's cache by promotion: the first trial that
        // names a solution as its predecessor snapshots the live
        // record before the run replaces it.
        let mut best: Option<(usize, usize)> = None;
        if !self.full_engine && self.raw_schedules.get() >= DELTA_MIN_CHAIN {
            for (i, (rec_fp, rec_key)) in recent.iter().enumerate() {
                if *rec_fp == fp {
                    // Bit-identical revisit (usually one the memo
                    // evicted, or a failed-run retry): distance zero by
                    // definition, no counting walk needed. A fingerprint
                    // collision would only pick a farther predecessor —
                    // splicing stays correct for any choice.
                    best = Some((0, i));
                    break;
                }
                if let Some(diff) = count_key_delta(rec_key, key, DELTA_MAX_CHANGED_VARS) {
                    if best.is_none_or(|(best_diff, _)| diff < best_diff) {
                        best = Some((diff, i));
                        if diff == 0 {
                            // An exact revisit cannot be beaten.
                            break;
                        }
                    }
                }
            }
        }
        let chosen = best.map(|(_, i)| recent[i].0);
        let run = match chosen {
            Some(prefer) => {
                // The job arena still describes the *front* (most
                // recent) key; the patch hint must diff against it even
                // when the splice source is an older record.
                let patch = recent
                    .first()
                    .is_some_and(|(_, front)| {
                        collect_key_delta(front, key, DELTA_MAX_CHANGED_VARS, vars_scratch)
                    })
                    .then_some(vars_scratch.as_slice());
                scheduler.schedule_delta_keyed_with_slack(
                    self.arch,
                    &[spec],
                    base,
                    patch,
                    fp,
                    Some(prefer),
                )
            }
            None => scheduler.schedule_keyed_with_slack(self.arch, &[spec], base, fp),
        };
        // Successful or not, the engine's live record now describes
        // this solution (failed runs keep their completed prefix as a
        // splice source), so future candidates diff against it. The
        // full-engine tier never consults the list and skips the
        // bookkeeping.
        if !self.full_engine {
            note_raw_schedule(recent, fp, key, chosen);
        }
        let (table, slack) = run?;

        // C2 terms: gap lists aliased from the frozen base (untouched
        // PEs) or the previous evaluation (PEs unchanged by the delta)
        // hit by storage identity; changed lists re-measure only the
        // windows their diff span intersects.
        let t_min = self.future.t_min;
        c2.set_pe_count(slack.pe_count());
        let mut c2p = Time::ZERO;
        for i in 0..slack.pe_count() {
            let shared = slack.gaps_shared(PeId(i as u32));
            c2p += c2.pe_term(i, shared, self.horizon, t_min);
        }
        let c2m = c2.bus_term(slack.bus_windows_shared(), self.horizon, t_min);
        let cost = objective::evaluate_with_c1_delta(
            self.arch,
            &slack,
            self.future,
            self.weights,
            c2p,
            c2m,
            c1,
        );
        Ok(Evaluation { table, slack, cost })
    }

    /// The reference pipeline (no base, no scratch, no memo).
    fn evaluate_naive(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.raw_schedules.set(self.raw_schedules.get() + 1);
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        let table = schedule(self.arch, &[spec], self.frozen, self.horizon)?;
        let slack = SlackProfile::from_table(self.arch, &table);
        let cost = objective::evaluate(self.arch, &slack, self.future, self.weights);
        Ok(Evaluation { table, slack, cost })
    }

    /// Number of schedule evaluations performed through this context
    /// (every [`evaluate`](Self::evaluate) call, memo hit or not — the
    /// historical semantics the paper tables rely on).
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.get()
    }

    /// Number of raw schedules actually executed: evaluations that
    /// missed the memo and ran the scheduler. Always ≤
    /// [`evaluation_count`](Self::evaluation_count) on the engine path.
    pub fn raw_schedule_count(&self) -> usize {
        self.raw_schedules.get()
    }

    /// Number of evaluations answered from the solution memo.
    pub fn memo_hit_count(&self) -> usize {
        self.memo_hits.get()
    }

    /// Number of raw schedules that took the delta-scheduling path
    /// (spliced the previous run instead of resetting from the base).
    /// Always ≤ [`raw_schedule_count`](Self::raw_schedule_count); zero
    /// on the naive and full-engine pipelines.
    pub fn delta_schedule_count(&self) -> usize {
        self.engine.borrow().scheduler.delta_schedule_count()
    }

    /// Total placement steps the delta path spliced verbatim from run
    /// records (diagnostics for benches and tests).
    pub fn spliced_step_count(&self) -> usize {
        self.engine.borrow().scheduler.spliced_step_count()
    }

    /// Total placement steps replayed from *cached* records: the part
    /// of a splice source's prefix the live record did not share.
    /// Always ≤ [`spliced_step_count`](Self::spliced_step_count); zero
    /// when every delta spliced from the live record.
    pub fn replayed_step_count(&self) -> usize {
        self.engine.borrow().scheduler.replayed_step_count()
    }

    /// Caps the scheduler's record cache (test hook: a small cap forces
    /// eviction churn; `0` disables cached-record splicing entirely,
    /// falling back to live-record-only deltas).
    pub fn set_record_cache_capacity(&self, cap: usize) {
        self.engine
            .borrow_mut()
            .scheduler
            .set_record_cache_capacity(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        Application::new("app", vec![g])
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol = Solution::from_mapping(mapping);
        assert_eq!(ctx.evaluation_count(), 0);
        let eval = ctx.evaluate(&sol).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        assert!(eval.cost.is_feasible());
        assert_eq!(eval.table.jobs().len(), 1);
    }

    #[test]
    fn evaluate_surfaces_infeasibility() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(4));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let err = ctx.evaluate(&Solution::from_mapping(mapping)).unwrap_err();
        assert!(err.is_infeasible());
    }
}
