//! Evaluation context shared by all mapping strategies.
//!
//! [`MappingContext::evaluate`] is the strategies' inner loop, called
//! thousands of times per scenario. It runs on the incremental
//! evaluation engine of `incdes_sched::engine`:
//!
//! * the frozen schedule is replayed and validated **once** into an
//!   `Arc<FrozenBase>` — built lazily on the first evaluation, or
//!   injected pre-built via
//!   [`MappingContext::with_frozen_base`] so the campaign runner's
//!   per-step contexts share one bake per system state;
//! * a persistent [`Scheduler`] reuses its scratch arenas (job records,
//!   ready heap, per-graph priority cache) across evaluations;
//! * **delta scheduling**: the context keeps the solution keys of the
//!   last [`RECORD_CACHE_CAP`] raw schedules next to the scheduler's
//!   fingerprint-keyed record cache. When a candidate differs from
//!   *any* of those recorded solutions by at most
//!   [`DELTA_MAX_CHANGED_VARS`] design variables (the single-move
//!   neighbors MH and SA explore, plus the two-move distance between
//!   consecutive trials proposed from one pivot), the engine splices
//!   from the record with the **smallest diff** — an A→B→A revisit
//!   chain splices B→A from A's own record with a near-zero suffix
//!   instead of undoing everything B touched. Delta only engages after
//!   [`DELTA_MIN_CHAIN`] raw schedules: shorter runs (AH's
//!   two-candidate probes) can never amortize the record bookkeeping.
//!   See the decision rules in `incdes_sched::engine`;
//! * the slack profiles are `Arc`-backed, so untouched resources alias
//!   the frozen base's (or the previous evaluation's) gap lists, and
//!   the per-resource C2 terms ([`incdes_metrics::C2Cache`]) plus the
//!   C1 bin-packing multiset ([`incdes_metrics::C1Cache`]) are cached
//!   **by storage identity**: an aliased gap list is never re-measured
//!   or re-packed — and a gap list that *did* change re-measures only
//!   the `t_min` windows its diff span intersects;
//! * a solution-fingerprint memo returns previously evaluated design
//!   alternatives without re-scheduling, so SA's revisited states and
//!   MH's widening rounds skip duplicate schedules.
//!
//! [`MappingContext::evaluation_count`] keeps its historical meaning —
//! every [`evaluate`](MappingContext::evaluate) call counts, memo hit or
//! not — while [`MappingContext::raw_schedule_count`] reports how many
//! schedules were actually executed and
//! [`MappingContext::delta_schedule_count`] how many of those took the
//! delta path. Two reference pipelines are retained as oracles for
//! differential tests and the `figures bench-eval` measurements:
//! [`MappingContext::with_naive_evaluation`] (one-shot `schedule()` +
//! `SlackProfile::from_table` + `objective::evaluate`, no reuse at all)
//! and [`MappingContext::with_full_evaluation`] (the PR 4 engine: base +
//! scratch reuse + memo, but every raw schedule re-places all jobs).

use crate::solution::Solution;
use incdes_graph::{EdgeId, NodeId};
use incdes_metrics::objective::{self, DesignCost, Weights};
use incdes_metrics::{C1Cache, C2Cache};
use incdes_model::{AppId, Application, Architecture, FutureProfile, PeId, Time};
use incdes_obs::counters::{self, Counter};
use incdes_obs::phase::{self, Phase};
use incdes_sched::engine::{check_horizon, ChangedVar, FrozenBase, Scheduler, RECORD_CACHE_CAP};
use incdes_sched::{schedule, AppSpec, SchedError, ScheduleTable, SlackProfile};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::{Arc, OnceLock};

/// How a mapping strategy parallelizes trial evaluation within one
/// scenario.
///
/// The contract of [`SearchParallelism::Parallel`] is that `threads`
/// only multiplexes *execution*: every search-visible result — the
/// accepted MH move, the solutions and costs, `evaluation_count()`, the
/// iteration counts, every campaign report — is byte-identical for any
/// thread count ≥ 1. Batch evaluation reduces candidates in
/// candidate-index order, SA runs a fixed number of chains (set by
/// `sa_chains`, not by `threads`) with per-chain deterministic RNG
/// streams, and worker engines evaluate against the shared
/// `Arc<FrozenBase>` on the full (splice-free) path so no counter
/// depends on how candidates were partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchParallelism {
    /// The historical single-threaded path: candidates are evaluated one
    /// by one on the context's own engine (memo + delta splicing). The
    /// default; behaves exactly as before this type existed.
    Sequential,
    /// Deterministic parallel in-scenario search.
    Parallel {
        /// Worker threads for MH candidate batches and SA chain
        /// multiplexing. Clamped to ≥ 1; `1` runs the identical batch
        /// semantics inline.
        threads: usize,
        /// Dispatched batches with fewer deduped candidates than this
        /// run on the single inline worker instead of spawning
        /// threads — same batch protocol, same bytes, no per-batch
        /// thread-spawn cost that used to swamp small-system MH
        /// batches. `0` (the serde default, so old specs keep their
        /// key) means [`SearchParallelism::DEFAULT_BATCH_CUTOVER`].
        /// Like `threads`, this multiplexes execution only and is
        /// normalized out of campaign fingerprints.
        #[serde(default)]
        batch_cutover: usize,
        /// Number of concurrent SA chains (per-chain ChaCha8 streams,
        /// periodic best-exchange). Clamped to ≥ 1; `1` keeps the
        /// classic single-chain SA.
        sa_chains: usize,
        /// Proposals each SA chain runs between best-exchange barriers.
        /// Clamped to ≥ 1.
        sa_exchange_period: usize,
    },
}

impl Default for SearchParallelism {
    fn default() -> Self {
        SearchParallelism::Sequential
    }
}

impl SearchParallelism {
    /// Default [`batch_cutover`](SearchParallelism::Parallel::batch_cutover):
    /// below ~16 deduped misses the per-batch `thread::scope` spawn
    /// costs more than the evaluations it parallelizes.
    pub const DEFAULT_BATCH_CUTOVER: usize = 16;

    /// Parallel candidate evaluation over `n` threads with the classic
    /// single-chain SA (the configuration the `INCDES_SEARCH_THREADS`
    /// differential-CI hook uses).
    #[must_use]
    pub fn threads(n: usize) -> Self {
        SearchParallelism::Parallel {
            threads: n.max(1),
            batch_cutover: 0,
            sa_chains: 1,
            sa_exchange_period: 64,
        }
    }

    /// The effective small-batch cutover: the configured value, with
    /// `0` resolved to [`Self::DEFAULT_BATCH_CUTOVER`].
    #[must_use]
    pub fn effective_batch_cutover(&self) -> usize {
        match *self {
            SearchParallelism::Sequential => 0,
            SearchParallelism::Parallel {
                batch_cutover: 0, ..
            } => Self::DEFAULT_BATCH_CUTOVER,
            SearchParallelism::Parallel { batch_cutover, .. } => batch_cutover,
        }
    }
}

/// Deterministic worker count for one dispatched miss batch: one
/// worker per job up to `threads`, capped at the machine's available
/// parallelism (oversubscribing a batch of schedules onto fewer cores
/// only adds context switches), and collapsed to the inline worker for
/// batches below `cutover`. Pure so the rule is unit-testable; only
/// wall-clock depends on it — results and counters are identical for
/// every return value ≥ 1 by the batch-protocol contract.
fn batch_worker_count(threads: usize, jobs: usize, cutover: usize, hw: usize) -> usize {
    if jobs < cutover {
        1
    } else {
        threads.min(jobs).min(hw.max(1)).max(1)
    }
}

/// Process-wide default parallelism, for differential CI runs:
/// `INCDES_SEARCH_THREADS=N` makes every context built without an
/// explicit [`MappingContext::with_parallelism`] evaluate MH batches
/// over `N` threads (SA stays single-chain so strategy results keep
/// their sequential trajectories). Unset or `0` means sequential; an
/// unparsable value warns once on stderr and is ignored.
fn env_parallelism() -> SearchParallelism {
    static CACHE: OnceLock<SearchParallelism> = OnceLock::new();
    *CACHE.get_or_init(|| {
        match incdes_obs::diag::env_usize(
            "INCDES_SEARCH_THREADS",
            "expected a thread count (0 or unset = sequential)",
        ) {
            Some(0) | None => SearchParallelism::Sequential,
            Some(n) => SearchParallelism::threads(n),
        }
    })
}

/// Error from a mapping strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The application has no processes to map.
    EmptyApplication,
    /// No feasible design alternative was found (requirement *a* cannot be
    /// met on this system within the strategy's search budget).
    Infeasible {
        /// The scheduler error of the last attempt.
        last: SchedError,
    },
    /// The inputs are malformed (bad horizon, disallowed PE in a caller-
    /// provided mapping, ...).
    InvalidInput(SchedError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyApplication => write!(f, "application has no processes"),
            MapError::Infeasible { last } => {
                write!(
                    f,
                    "no feasible mapping found (last scheduler error: {last})"
                )
            }
            MapError::InvalidInput(e) => write!(f, "invalid mapping input: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A fully evaluated design alternative.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The complete schedule (frozen applications + current application).
    pub table: ScheduleTable,
    /// The slack profile of that schedule.
    pub slack: SlackProfile,
    /// The objective-function value.
    pub cost: DesignCost,
}

/// Upper bound on memoized design alternatives. When the memo fills up
/// the stale half is evicted (entries whose last hit is at or below the
/// median stamp): SA and MH revisit *recent* states, so the LRU-ish
/// policy keeps the hit rate high while capping the memory spent on
/// full `Evaluation` clones — and, unlike a wholesale clear, it keeps
/// the recently raw-scheduled predecessors resident, coherent with the
/// scheduler's record cache.
const MEMO_CAP: usize = 512;

/// Minimum number of raw schedules in a context's lifetime before the
/// delta-splice path engages. A two-evaluation probe (AH scoring each
/// PE once) pays the record bookkeeping on the first run and then never
/// amortizes it; short chains take the plain full-engine path.
pub const DELTA_MIN_CHAIN: usize = 3;

/// Canonical identity of a design alternative: the full mapping plus all
/// non-zero hints, in deterministic order. Two solutions with the same
/// key produce byte-identical schedules, so memo hits are exact (no
/// hashing-collision risk — the key stores the actual design variables,
/// and the hash only routes to a bucket). Doubling as the predecessor
/// snapshot the delta gate diffs against.
///
/// Stored flat: every variable is one `(word, value)` pair, with the
/// three sections (mapping entries, process gap hints, message slot
/// hints) back to back at the `split` boundaries. The word packs
/// `graph << 32 | node-or-edge`, which preserves the per-section
/// `(graph, index)` sort order, so the delta diff is a single-word
/// two-pointer walk and the whole key is one contiguous allocation —
/// one clone per memo miss, one memcmp-shaped compare per probe.
#[derive(Debug, Default, PartialEq, Eq)]
struct MemoKey {
    items: Vec<(u64, u32)>,
    split: [u32; 2],
}

impl Clone for MemoKey {
    fn clone(&self) -> Self {
        MemoKey {
            items: self.items.clone(),
            split: self.split,
        }
    }

    // The predecessor snapshot is refreshed on every raw schedule;
    // reusing its allocation keeps that free.
    fn clone_from(&mut self, source: &Self) {
        self.items.clone_from(&source.items);
        self.split = source.split;
    }
}

/// Packs a per-graph variable index into one order-preserving word.
/// Graph counts are bounded far below `u32::MAX` by memory alone; the
/// assert documents the losslessness the exact-hit contract relies on.
#[inline]
fn pack_var(graph: usize, index: u32) -> u64 {
    debug_assert!(graph <= u32::MAX as usize);
    ((graph as u64) << 32) | index as u64
}

impl MemoKey {
    /// Refills the key in place from `solution`, reusing the one
    /// vector allocation — the key build runs once per evaluation
    /// (hit or miss), so the engine keeps one scratch key alive
    /// instead of allocating here.
    fn assign(&mut self, solution: &Solution) {
        self.items.clear();
        self.items.extend(
            solution
                .mapping
                .iter()
                .map(|(pr, pe)| (pack_var(pr.graph, pr.node.0), pe.0)),
        );
        self.split[0] = self.items.len() as u32;
        self.items.extend(
            solution
                .hints
                .proc_gaps()
                .map(|(pr, gap)| (pack_var(pr.graph, pr.node.0), gap)),
        );
        self.split[1] = self.items.len() as u32;
        self.items.extend(
            solution
                .hints
                .msg_slots()
                .map(|(mr, slot)| (pack_var(mr.graph, mr.edge.0), slot)),
        );
    }

    fn mapping(&self) -> &[(u64, u32)] {
        &self.items[..self.split[0] as usize]
    }

    fn proc_gaps(&self) -> &[(u64, u32)] {
        &self.items[self.split[0] as usize..self.split[1] as usize]
    }

    fn msg_slots(&self) -> &[(u64, u32)] {
        &self.items[self.split[1] as usize..]
    }
}

/// A memoized evaluation with the clock tick of its last hit, for the
/// LRU-ish eviction at [`MEMO_CAP`].
#[derive(Debug)]
struct MemoEntry {
    result: Result<Evaluation, SchedError>,
    stamp: u64,
}

/// The solution memo, bucketed by the 64-bit solution fingerprint —
/// the same FxHash of the full key that routes the scheduler's record
/// cache. One fingerprint computation per evaluation serves bucket
/// routing, in-batch duplicate detection *and* keyed splicing, where
/// the old `HashMap<MemoKey, _>` re-hashed the full key on every probe
/// and again on insert. Buckets store the exact keys, so a hit still
/// compares the actual design variables: a fingerprint collision only
/// costs a short in-bucket scan, never a wrong answer.
#[derive(Debug, Default)]
struct Memo {
    buckets: HashMap<u64, Vec<(MemoKey, MemoEntry)>, FxBuild>,
    entries: usize,
}

impl Memo {
    fn len(&self) -> usize {
        self.entries
    }

    fn get_mut(&mut self, fp: u64, key: &MemoKey) -> Option<&mut MemoEntry> {
        self.buckets
            .get_mut(&fp)?
            .iter_mut()
            .find_map(|(k, e)| (k == key).then_some(e))
    }

    fn insert(&mut self, fp: u64, key: MemoKey, entry: MemoEntry) {
        self.buckets.entry(fp).or_default().push((key, entry));
        self.entries += 1;
    }

    #[cfg(test)]
    fn contains(&self, fp: u64, key: &MemoKey) -> bool {
        self.buckets
            .get(&fp)
            .is_some_and(|b| b.iter().any(|(k, _)| k == key))
    }

    /// Last-hit stamps of every entry, in arbitrary order (eviction
    /// input).
    fn stamps(&self) -> Vec<u64> {
        self.buckets
            .values()
            .flatten()
            .map(|(_, e)| e.stamp)
            .collect()
    }

    fn retain(&mut self, mut keep: impl FnMut(&MemoKey, &MemoEntry) -> bool) {
        let mut kept = 0;
        self.buckets.retain(|_, bucket| {
            bucket.retain(|(k, e)| keep(k, e));
            kept += bucket.len();
            !bucket.is_empty()
        });
        self.entries = kept;
    }
}

/// The solution fingerprint shared with the scheduler's record cache:
/// the FxHash of the full memo key. Collisions are harmless — the
/// engine recomputes the exact divergence against any record it picks,
/// so a wrong `prefer` only costs a longer splice, never a wrong
/// schedule.
fn fingerprint(key: &MemoKey) -> u64 {
    let mut h = FxHasher::default();
    h.add(((key.split[0] as u64) << 32) | key.split[1] as u64);
    h.add(key.items.len() as u64);
    for &(word, value) in &key.items {
        h.add(word);
        h.add(value as u64);
    }
    h.finish()
}

/// The FxHash mix (Firefox/rustc's default internal hasher): the memo
/// keys are trusted program state, not attacker input, so the DoS
/// resistance of SipHash buys nothing here and its cost is paid on
/// every evaluation.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Largest number of changed design variables (mapping entries + gap
/// hints + slot hints, counted as a symmetric difference) for which the
/// delta-scheduling path is attempted. A remap touches at most two
/// variables (the mapping entry plus its reset gap hint), so 4 covers
/// two design transformations — the distance between consecutive SA/MH
/// trials proposed from one pivot solution (undo the rejected move,
/// apply the next). Larger diffs take the full-engine path.
pub const DELTA_MAX_CHANGED_VARS: usize = 4;

/// Walks the symmetric difference of two sorted key→value slices,
/// invoking `on_diff` for every differing key; gives up (returns
/// `false`) as soon as more than `cap` differences accumulate in
/// `count`. A plain two-pointer walk: the solution-ranking loop calls
/// this up to `3 × RECORD_CACHE_CAP` times per raw schedule, so the
/// per-element cost is on the strategy critical path.
fn sym_diff<K: Ord + Copy, V: PartialEq>(
    a: &[(K, V)],
    b: &[(K, V)],
    cap: usize,
    count: &mut usize,
    mut on_diff: impl FnMut(K),
) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ka, va) = &a[i];
        let (kb, vb) = &b[j];
        let k = match ka.cmp(kb) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                if va == vb {
                    continue;
                }
                *ka
            }
            std::cmp::Ordering::Less => {
                i += 1;
                *ka
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                *kb
            }
        };
        *count += 1;
        if *count > cap {
            return false;
        }
        on_diff(k);
    }
    for &(k, _) in a[i..].iter().chain(&b[j..]) {
        *count += 1;
        if *count > cap {
            return false;
        }
        on_diff(k);
    }
    true
}

/// Collects the design variables differing between two solution keys
/// into `vars` (sorted, deduplicated, ready for
/// `Scheduler::schedule_delta_hinted_with_slack`). Returns the raw
/// symmetric-difference count — the exact number
/// [`count_key_delta`] would report, *before* deduplication — or
/// `None` (leaving `vars` unspecified) when more than `cap` variables
/// differ; the caller then takes the full-engine path. Returning the
/// count lets the ranking loop seed its branch-and-bound bound from
/// this walk instead of counting the front record a second time. Both
/// keys store their variables sorted, so this is a linear slice walk.
fn collect_key_delta(
    prev: &MemoKey,
    cur: &MemoKey,
    cap: usize,
    vars: &mut Vec<ChangedVar>,
) -> Option<usize> {
    vars.clear();
    let mut count = 0usize;
    let proc_var = |word: u64| ChangedVar::Proc {
        spec: 0,
        graph: (word >> 32) as usize,
        node: NodeId(word as u32),
    };
    if !sym_diff(prev.mapping(), cur.mapping(), cap, &mut count, |k| {
        vars.push(proc_var(k))
    }) {
        return None;
    }
    if !sym_diff(prev.proc_gaps(), cur.proc_gaps(), cap, &mut count, |k| {
        vars.push(proc_var(k))
    }) {
        return None;
    }
    if !sym_diff(
        prev.msg_slots(),
        cur.msg_slots(),
        cap,
        &mut count,
        |word: u64| {
            vars.push(ChangedVar::Msg {
                spec: 0,
                graph: (word >> 32) as usize,
                edge: EdgeId(word as u32),
            })
        },
    ) {
        return None;
    }
    // A remap and its hint reset touch the same process twice; the
    // engine wants each variable once, in expansion order.
    vars.sort_unstable();
    vars.dedup();
    Some(count)
}

/// Count-only twin of [`collect_key_delta`]: the number of differing
/// design variables between two solution keys, or `None` when more than
/// `cap` differ. Used to rank the recorded solutions as splice sources
/// without materializing their variable lists.
fn count_key_delta(prev: &MemoKey, cur: &MemoKey, cap: usize) -> Option<usize> {
    let mut count = 0usize;
    let ok = sym_diff(prev.mapping(), cur.mapping(), cap, &mut count, |_| {})
        && sym_diff(prev.proc_gaps(), cur.proc_gaps(), cap, &mut count, |_| {})
        && sym_diff(prev.msg_slots(), cur.msg_slots(), cap, &mut count, |_| {});
    ok.then_some(count)
}

/// The per-context evaluation engine state: baked frozen base, scheduler
/// scratch, objective-term caches and the solution memo.
#[derive(Debug, Default)]
struct EvalEngine {
    /// Lazily built (or injected) frozen base, shared via `Arc` when the
    /// caller reuses one bake across contexts.
    base: Option<Result<Arc<FrozenBase>, SchedError>>,
    scheduler: Scheduler,
    memo: Memo,
    /// Monotone clock stamping memo hits, for the LRU-ish eviction.
    memo_clock: u64,
    /// Reused key allocation for the per-evaluation memo probe.
    key_scratch: MemoKey,
    /// Keys of the most recent raw schedules, most recent first — the
    /// context-side mirror of the scheduler's record cache. The front
    /// entry is the solution the scheduler's job arena currently
    /// describes (the arena-patch diff target); the best-diff entry
    /// names the splice source via its fingerprint. The two caches may
    /// drift (the scheduler evicts by its own stamps): a `prefer`
    /// fingerprint the scheduler no longer holds silently falls back to
    /// its live record, which is always correct.
    recent: Vec<(u64, MemoKey)>,
    /// Per-resource C2 terms with window-level incremental updates:
    /// aliased gap lists hit by storage identity, changed lists
    /// re-measure only the `t_min` windows their diff span intersects.
    c2: C2Cache,
    /// Incremental C1 bin-packing state, patched by storage identity.
    c1: C1Cache,
    /// Scratch for the collected solution diff (no per-eval allocation).
    vars_scratch: Vec<ChangedVar>,
}

/// Records a raw schedule of `key` (fingerprint `fp`) in the recency
/// list: the chosen splice source (if any) is bumped ahead of the LRU
/// tail first — a run of rejected trials must not evict the pivot they
/// all splice from — then the current key takes the front slot,
/// recycling the evicted entry's allocations.
fn note_raw_schedule(
    recent: &mut Vec<(u64, MemoKey)>,
    fp: u64,
    key: &MemoKey,
    chosen: Option<u64>,
) {
    if let Some(pf) = chosen.filter(|&pf| pf != fp) {
        if let Some(i) = recent.iter().position(|&(f, _)| f == pf) {
            if i > 0 {
                let e = recent.remove(i);
                recent.insert(0, e);
            }
        }
    }
    if let Some(i) = recent.iter().position(|&(f, _)| f == fp) {
        let mut e = recent.remove(i);
        e.1.clone_from(key);
        recent.insert(0, e);
    } else if recent.len() >= RECORD_CACHE_CAP {
        let mut e = recent.pop().expect("len checked");
        e.0 = fp;
        e.1.clone_from(key);
        recent.insert(0, e);
    } else {
        recent.insert(0, (fp, key.clone()));
    }
}

impl EvalEngine {
    /// LRU-ish memo eviction at [`MEMO_CAP`]: drop the stale half
    /// (entries whose last hit is at or below the median stamp) —
    /// *except* entries still named by the `recent` record-cache
    /// mirror. Those keys are the predecessor snapshots the delta gate
    /// diffs candidates against and the fingerprints the scheduler can
    /// still splice from; evicting one silently degrades its keyed
    /// splices to the live-record fallback, so every cached-record
    /// fingerprint stays answerable after eviction.
    fn evict_if_full(&mut self) {
        if self.memo.len() < MEMO_CAP {
            return;
        }
        let mut stamps = self.memo.stamps();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        let EvalEngine { memo, recent, .. } = self;
        let before = memo.len();
        memo.retain(|k, e| e.stamp > cutoff || recent.iter().any(|(_, rk)| rk == k));
        counters::add(Counter::MemoEvictions, (before - memo.len()) as u64);
    }
}

/// The immutable, thread-shareable view of one evaluation problem: the
/// architecture, the current application, the frozen schedule and the
/// objective inputs. Everything behind these references is plain data
/// (the workspace forbids interior mutability below `mapping`), so a
/// `Scene` can be handed to scoped worker threads while each worker
/// keeps its own private [`EvalEngine`] scratch.
#[derive(Clone, Copy)]
struct Scene<'a> {
    arch: &'a Architecture,
    app_id: AppId,
    app: &'a Application,
    frozen: Option<&'a ScheduleTable>,
    horizon: Time,
    future: &'a FutureProfile,
    weights: &'a Weights,
}

/// The three evaluation counters, grouped so the engine functions can
/// take one `&mut` and SA chains can merge their tallies back in chain
/// order.
#[derive(Debug, Default, Clone, Copy)]
struct EngineCounts {
    evaluations: usize,
    raw_schedules: usize,
    memo_hits: usize,
}

/// Scheduler diagnostics absorbed from worker/chain engines (the main
/// context's accessors add these to its own scheduler's counts).
#[derive(Debug, Default, Clone, Copy)]
struct SchedDiag {
    delta_schedules: usize,
    spliced_steps: usize,
    replayed_steps: usize,
}

/// The objective terms of a freshly scheduled slack profile, through the
/// given engine's identity-keyed C2/C1 caches. Shared by the main
/// evaluation path and the parallel batch workers — the caches are
/// behavior-transparent, so whichever engine scores a solution produces
/// bit-identical costs.
fn score_slack(
    scene: &Scene<'_>,
    c2: &mut C2Cache,
    c1: &mut C1Cache,
    slack: &SlackProfile,
) -> DesignCost {
    let _objective = phase::scope(Phase::Objective);
    let t_min = scene.future.t_min;
    c2.set_pe_count(slack.pe_count());
    let mut c2p = Time::ZERO;
    for i in 0..slack.pe_count() {
        let shared = slack.gaps_shared(PeId(i as u32));
        c2p += c2.pe_term(i, shared, scene.horizon, t_min);
    }
    let c2m = c2.bus_term(slack.bus_windows_shared(), scene.horizon, t_min);
    objective::evaluate_with_c1_delta(scene.arch, slack, scene.future, scene.weights, c2p, c2m, c1)
}

/// One memoized engine evaluation (the body of
/// [`MappingContext::evaluate`], factored over an explicit engine +
/// counter pair so SA portfolio chains can run it on their private
/// engines).
fn engine_evaluate(
    scene: &Scene<'_>,
    engine: &mut EvalEngine,
    counts: &mut EngineCounts,
    full_engine: bool,
    solution: &Solution,
) -> Result<Evaluation, SchedError> {
    let lookup_scope = phase::scope(Phase::Memo);
    let mut key = std::mem::take(&mut engine.key_scratch);
    key.assign(solution);
    let fp = fingerprint(&key);
    engine.memo_clock += 1;
    let stamp = engine.memo_clock;
    if let Some(hit) = engine.memo.get_mut(fp, &key) {
        hit.stamp = stamp;
        counts.memo_hits += 1;
        counters::bump(Counter::MemoHits);
        let result = hit.result.clone();
        engine.key_scratch = key;
        return result;
    }
    drop(lookup_scope);
    let result = engine_evaluate_raw(scene, engine, counts, full_engine, solution, &key, fp);
    let _store_scope = phase::scope(Phase::Memo);
    engine.evict_if_full();
    engine.memo.insert(
        fp,
        key.clone(),
        MemoEntry {
            result: result.clone(),
            stamp,
        },
    );
    engine.key_scratch = key;
    counters::bump(Counter::MemoInserts);
    result
}

/// One full engine evaluation (memo miss) — the body of the historical
/// `MappingContext::evaluate_raw`.
fn engine_evaluate_raw(
    scene: &Scene<'_>,
    engine: &mut EvalEngine,
    counts: &mut EngineCounts,
    full_engine: bool,
    solution: &Solution,
    key: &MemoKey,
    fp: u64,
) -> Result<Evaluation, SchedError> {
    // Spec assembly and validation are the delta machinery's
    // front-end, like expansion inside the engine: charge them to the
    // splice phase (closed before the engine call so its own splice
    // scope never nests).
    let setup_scope = phase::scope(Phase::Splice);
    let spec = AppSpec::new(scene.app_id, scene.app, &solution.mapping, &solution.hints);
    // Validated before the base is consulted so error precedence
    // matches the naive pipeline exactly.
    check_horizon(&[spec], scene.horizon)?;
    drop(setup_scope);
    let EvalEngine {
        base,
        scheduler,
        recent,
        c2,
        c1,
        vars_scratch,
        ..
    } = engine;
    let base = base.get_or_insert_with(|| {
        FrozenBase::new(scene.arch, scene.frozen, scene.horizon).map(Arc::new)
    });
    let base = match base {
        Ok(b) => b,
        Err(e) => return Err(e.clone()),
    };
    counts.raw_schedules += 1;

    // Delta gate: once the chain is long enough to amortize record
    // bookkeeping, rank every recorded solution by its diff against
    // the candidate and splice from the closest one (ties favor the
    // most recent). A revisit chain A→B→A finds A's own record at
    // distance ~0. Everything else (short chains, big jumps,
    // `with_full_evaluation`) resets from the base. Records enter
    // the scheduler's cache by promotion: the first trial that
    // names a solution as its predecessor snapshots the live
    // record before the run replaces it.
    let ranking_scope = phase::scope(Phase::Splice);
    let mut best: Option<(usize, usize)> = None;
    let mut front_delta_ok = false;
    if !full_engine && counts.raw_schedules >= DELTA_MIN_CHAIN {
        // The job arena still describes the *front* (most recent) key,
        // so the patch hint must diff against it no matter which record
        // wins the ranking below. One collecting walk serves both
        // purposes: `collect_key_delta` reports the same raw
        // symmetric-difference count `count_key_delta` would, so
        // seeding the ranking with it leaves the winner unchanged
        // while sparing the front record a second full-length walk.
        if let Some((front_fp, front_key)) = recent.first() {
            if let Some(diff) =
                collect_key_delta(front_key, key, DELTA_MAX_CHANGED_VARS, vars_scratch)
            {
                front_delta_ok = true;
                best = Some((diff, 0));
            }
            if *front_fp == fp {
                // Bit-identical revisit (usually one the memo evicted,
                // or a failed-run retry): distance zero by definition.
                // A fingerprint collision would only pick a farther
                // predecessor — splicing stays correct for any choice.
                best = Some((0, 0));
            }
        }
        if best.is_none_or(|(d, _)| d != 0) {
            for (i, (rec_fp, rec_key)) in recent.iter().enumerate().skip(1) {
                if *rec_fp == fp {
                    // Same zero-distance shortcut as the front above.
                    best = Some((0, i));
                    break;
                }
                // Branch-and-bound: a record can only win with a
                // strictly smaller diff, so once a best is held the
                // counting walk may give up at `best - 1` instead of
                // the full cap — records iterate most-recent-first and
                // ties keep the earlier (more recent) holder, so the
                // winner is unchanged.
                let cap = best.map_or(DELTA_MAX_CHANGED_VARS, |(d, _)| {
                    d.saturating_sub(1).min(DELTA_MAX_CHANGED_VARS)
                });
                if let Some(diff) = count_key_delta(rec_key, key, cap) {
                    if best.is_none_or(|(best_diff, _)| diff < best_diff) {
                        best = Some((diff, i));
                        if diff == 0 {
                            // An exact revisit cannot be beaten.
                            break;
                        }
                    }
                }
            }
        }
    }
    let chosen = best.map(|(_, i)| recent[i].0);
    let patch_hint = chosen.is_some() && front_delta_ok;
    drop(ranking_scope);
    let run = match chosen {
        Some(prefer) => scheduler.schedule_delta_keyed_with_slack(
            scene.arch,
            &[spec],
            base,
            patch_hint.then_some(vars_scratch.as_slice()),
            fp,
            Some(prefer),
        ),
        None => scheduler.schedule_keyed_with_slack(scene.arch, &[spec], base, fp),
    };
    // Successful or not, the engine's live record now describes
    // this solution (failed runs keep their completed prefix as a
    // splice source), so future candidates diff against it. The
    // full-engine tier never consults the list and skips the
    // bookkeeping.
    if !full_engine {
        // Record-list maintenance (clones the key) is splice-plane
        // bookkeeping too.
        let _bookkeeping_scope = phase::scope(Phase::Splice);
        note_raw_schedule(recent, fp, key, chosen);
    }
    let (table, slack) = run?;
    // C2 terms: gap lists aliased from the frozen base (untouched
    // PEs) or the previous evaluation (PEs unchanged by the delta)
    // hit by storage identity; changed lists re-measure only the
    // windows their diff span intersects.
    let cost = score_slack(scene, c2, c1, &slack);
    Ok(Evaluation { table, slack, cost })
}

/// A batch worker's evaluation: the full (splice-free) path against the
/// shared frozen base, no memo, no record bookkeeping. Every call costs
/// exactly one raw schedule and zero delta/spliced/replayed steps, so
/// the batch's counters are a function of the hit/miss pattern alone —
/// independent of how candidates were partitioned over threads.
fn evaluate_shared_full(
    scene: &Scene<'_>,
    base: &Arc<FrozenBase>,
    worker: &mut EvalEngine,
    solution: &Solution,
    fp: u64,
) -> Result<Evaluation, SchedError> {
    let spec = AppSpec::new(scene.app_id, scene.app, &solution.mapping, &solution.hints);
    let (table, slack) =
        worker
            .scheduler
            .schedule_keyed_with_slack(scene.arch, &[spec], base, fp)?;
    let cost = score_slack(scene, &mut worker.c2, &mut worker.c1, &slack);
    Ok(Evaluation { table, slack, cost })
}

/// Everything a strategy needs to evaluate design alternatives for one
/// *current application* on one system state.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// The hardware platform.
    pub arch: &'a Architecture,
    /// Id the current application's jobs will carry.
    pub app_id: AppId,
    /// The current application.
    pub app: &'a Application,
    /// Frozen schedule of the existing applications, already replicated to
    /// `horizon`. `None` for an empty system.
    pub frozen: Option<&'a ScheduleTable>,
    /// The system hyperperiod (LCM of all periods, old and new).
    pub horizon: Time,
    /// Characterization of the future applications.
    pub future: &'a FutureProfile,
    /// Objective-function weights.
    pub weights: &'a Weights,
    counts: Cell<EngineCounts>,
    /// Scheduler diagnostics merged in from worker/chain engines.
    absorbed: Cell<SchedDiag>,
    naive: bool,
    full_engine: bool,
    parallelism: SearchParallelism,
    engine: RefCell<EvalEngine>,
    /// Idle batch-worker engines, recycled across parallel rounds.
    workers: RefCell<Vec<EvalEngine>>,
}

impl<'a> MappingContext<'a> {
    /// Creates a context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arch: &'a Architecture,
        app_id: AppId,
        app: &'a Application,
        frozen: Option<&'a ScheduleTable>,
        horizon: Time,
        future: &'a FutureProfile,
        weights: &'a Weights,
    ) -> Self {
        let ctx = MappingContext {
            arch,
            app_id,
            app,
            frozen,
            horizon,
            future,
            weights,
            counts: Cell::new(EngineCounts::default()),
            absorbed: Cell::new(SchedDiag::default()),
            naive: false,
            full_engine: false,
            parallelism: env_parallelism(),
            engine: RefCell::new(EvalEngine::default()),
            workers: RefCell::new(Vec::new()),
        };
        // Test/CI hook: `INCDES_RECORD_CACHE_CAP` overrides the
        // scheduler's record-cache capacity so the differential suites
        // can force eviction churn (small cap) or disable cached-record
        // splicing entirely (0) without an API change. Accepted values
        // are base-10 integers ≥ 0: `0` disables cached-record splicing
        // entirely, `1..` caps the number of retained run records (the
        // built-in default is `RECORD_CACHE_CAP` = 4; larger values only
        // grow memory, never change results). Anything unparsable is
        // ignored with one warning per process — a silently dropped
        // override would make a differential run test the wrong
        // configuration.
        if let Some(cap) = incdes_obs::diag::env_usize(
            "INCDES_RECORD_CACHE_CAP",
            &format!(
                "expected a non-negative integer (0 disables cached-record splicing; \
                 the built-in cap is {RECORD_CACHE_CAP})"
            ),
        ) {
            ctx.engine
                .borrow_mut()
                .scheduler
                .set_record_cache_capacity(cap);
        }
        ctx
    }

    /// Sets how this context parallelizes strategy trial evaluation.
    /// Overrides the `INCDES_SEARCH_THREADS` process default.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: SearchParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The parallelism mode strategies should run under.
    pub fn parallelism(&self) -> SearchParallelism {
        self.parallelism
    }

    /// Switches this context to the naive evaluation pipeline
    /// (`schedule()` + `SlackProfile::from_table` +
    /// `objective::evaluate`, no frozen-base reuse, no memo). The
    /// results are identical to the engine path; this exists as the
    /// reference for differential tests and the `figures bench-eval`
    /// speedup measurement.
    #[must_use]
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Disables the delta-scheduling path: every raw schedule resets the
    /// timelines from the frozen base and places all jobs (the PR 4
    /// engine behavior). Results are identical to the default delta
    /// path; this is the mid-tier oracle for differential tests and the
    /// `figures bench-eval` delta column.
    #[must_use]
    pub fn with_full_evaluation(mut self) -> Self {
        self.full_engine = true;
        self
    }

    /// Seeds this context with a pre-built frozen base, shared across
    /// contexts via `Arc` — the campaign runner bakes the frozen
    /// schedule once per system state instead of once per step. The
    /// base **must** have been built with this context's architecture,
    /// frozen table and horizon; the horizon is checked eagerly, the
    /// rest is the caller's contract (the result would silently describe
    /// the wrong system otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `base` covers a different horizon than this context.
    #[must_use]
    pub fn with_frozen_base(self, base: Arc<FrozenBase>) -> Self {
        assert_eq!(
            base.horizon(),
            self.horizon,
            "shared frozen base horizon mismatch"
        );
        self.engine.borrow_mut().base = Some(Ok(base));
        self
    }

    /// Schedules and scores one design alternative.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SchedError`]; use
    /// [`SchedError::is_infeasible`] to distinguish "does not fit" from
    /// "malformed input".
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        let mut counts = self.counts.get();
        counts.evaluations += 1;
        self.counts.set(counts);
        self.evaluate_inner(solution)
    }

    /// [`evaluate`](Self::evaluate) without touching
    /// [`evaluation_count`](Self::evaluation_count) — bookkeeping
    /// re-derivations (SA rebuilding its best snapshot at the end) must
    /// not perturb the evaluation counts the paper tables report.
    pub(crate) fn evaluate_snapshot(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.evaluate_inner(solution)
    }

    fn evaluate_inner(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        if self.naive {
            return self.evaluate_naive(solution);
        }
        let mut engine = self.engine.borrow_mut();
        let mut counts = self.counts.get();
        let result = engine_evaluate(
            &self.scene(),
            &mut engine,
            &mut counts,
            self.full_engine,
            solution,
        );
        self.counts.set(counts);
        result
    }

    /// The immutable scene the engine functions (and worker threads)
    /// evaluate against.
    fn scene(&self) -> Scene<'a> {
        Scene {
            arch: self.arch,
            app_id: self.app_id,
            app: self.app,
            frozen: self.frozen,
            horizon: self.horizon,
            future: self.future,
            weights: self.weights,
        }
    }

    /// The reference pipeline (no base, no scratch, no memo).
    fn evaluate_naive(&self, solution: &Solution) -> Result<Evaluation, SchedError> {
        let mut counts = self.counts.get();
        counts.raw_schedules += 1;
        self.counts.set(counts);
        let spec = AppSpec::new(self.app_id, self.app, &solution.mapping, &solution.hints);
        let table = schedule(self.arch, &[spec], self.frozen, self.horizon)?;
        let slack = SlackProfile::from_table(self.arch, &table);
        let cost = objective::evaluate(self.arch, &slack, self.future, self.weights);
        Ok(Evaluation { table, slack, cost })
    }

    /// Number of schedule evaluations performed through this context
    /// (every [`evaluate`](Self::evaluate) call, memo hit or not — the
    /// historical semantics the paper tables rely on).
    pub fn evaluation_count(&self) -> usize {
        self.counts.get().evaluations
    }

    /// Number of raw schedules actually executed: evaluations that
    /// missed the memo and ran the scheduler. Always ≤
    /// [`evaluation_count`](Self::evaluation_count) on the engine path.
    pub fn raw_schedule_count(&self) -> usize {
        self.counts.get().raw_schedules
    }

    /// Number of evaluations answered from the solution memo.
    pub fn memo_hit_count(&self) -> usize {
        self.counts.get().memo_hits
    }

    /// Number of raw schedules that took the delta-scheduling path
    /// (spliced the previous run instead of resetting from the base),
    /// including those of absorbed SA portfolio chains. Always ≤
    /// [`raw_schedule_count`](Self::raw_schedule_count); zero on the
    /// naive and full-engine pipelines.
    pub fn delta_schedule_count(&self) -> usize {
        self.engine.borrow().scheduler.delta_schedule_count() + self.absorbed.get().delta_schedules
    }

    /// Total placement steps the delta path spliced verbatim from run
    /// records (diagnostics for benches and tests).
    pub fn spliced_step_count(&self) -> usize {
        self.engine.borrow().scheduler.spliced_step_count() + self.absorbed.get().spliced_steps
    }

    /// Total placement steps replayed from *cached* records: the part
    /// of a splice source's prefix the live record did not share.
    /// Always ≤ [`spliced_step_count`](Self::spliced_step_count); zero
    /// when every delta spliced from the live record.
    pub fn replayed_step_count(&self) -> usize {
        self.engine.borrow().scheduler.replayed_step_count() + self.absorbed.get().replayed_steps
    }

    /// Caps the scheduler's record cache (test hook: a small cap forces
    /// eviction churn; `0` disables cached-record splicing entirely,
    /// falling back to live-record-only deltas).
    pub fn set_record_cache_capacity(&self, cap: usize) {
        self.engine
            .borrow_mut()
            .scheduler
            .set_record_cache_capacity(cap);
    }

    /// Evaluates a whole candidate batch, honoring this context's
    /// [`SearchParallelism`]. Sequential mode (and the naive pipeline)
    /// evaluates in candidate-index order through
    /// [`evaluate`](Self::evaluate), so the results — and every counter
    /// — are exactly what the per-candidate loop produced before this
    /// API existed. Parallel mode runs the deterministic batch protocol
    /// of [`evaluate_batch`](Self::evaluate_batch).
    pub(crate) fn evaluate_all(&self, trials: &[Solution]) -> Vec<Result<Evaluation, SchedError>> {
        match self.parallelism {
            SearchParallelism::Parallel { threads, .. } if !self.naive && !trials.is_empty() => {
                self.evaluate_batch(
                    trials,
                    threads.max(1),
                    self.parallelism.effective_batch_cutover(),
                )
            }
            _ => trials.iter().map(|t| self.evaluate(t)).collect(),
        }
    }

    /// The deterministic parallel batch protocol. Three ordered passes:
    ///
    /// 1. **Prefilter** (main thread, candidate-index order): each
    ///    candidate ticks the memo clock and counts one evaluation; memo
    ///    hits are re-stamped and answered immediately, misses are
    ///    horizon-checked and queued.
    /// 2. **Dispatch**: queued misses are evaluated on worker engines
    ///    (`std::thread::scope`) against the shared `Arc<FrozenBase>`,
    ///    on the full splice-free path — each miss costs exactly one
    ///    raw schedule and zero delta steps, and its result depends only
    ///    on the shared base, never on which worker ran it or what that
    ///    worker evaluated before.
    /// 3. **Reduce** (main thread, candidate-index order): results are
    ///    inserted into the main memo with the stamps assigned in pass
    ///    1, running the same eviction rule a sequential insertion
    ///    sequence would.
    ///
    /// Every counter is a function of the hit/miss pattern alone, so the
    /// returned results *and* all diagnostics are byte-identical for any
    /// `threads ≥ 1` and any `batch_cutover` — the cutover (and the
    /// available-parallelism cap) only collapse the dispatch onto the
    /// inline single-worker arm, which runs the same protocol.
    fn evaluate_batch(
        &self,
        trials: &[Solution],
        threads: usize,
        batch_cutover: usize,
    ) -> Vec<Result<Evaluation, SchedError>> {
        struct Miss {
            idx: usize,
            key: MemoKey,
            stamp: u64,
            fp: u64,
            /// `false` when the horizon precheck (or a failed base
            /// bake) already produced this miss's error.
            run: bool,
        }
        enum Plan {
            /// Memo hit — answered in the prefilter.
            Hit,
            /// Slot in the miss queue.
            Miss(usize),
            /// Same key as an earlier in-batch miss: (source candidate
            /// index, this candidate's stamp, the shared fingerprint
            /// and key).
            Dup(usize, u64, u64, MemoKey),
        }
        let scene = self.scene();
        let mut engine = self.engine.borrow_mut();
        let mut counts = self.counts.get();
        let n = trials.len();
        let mut out: Vec<Option<Result<Evaluation, SchedError>>> = (0..n).map(|_| None).collect();
        let mut plans: Vec<Plan> = Vec::with_capacity(n);
        let mut misses: Vec<Miss> = Vec::new();

        // Pass 1: prefilter.
        let mut scratch = std::mem::take(&mut engine.key_scratch);
        for (i, solution) in trials.iter().enumerate() {
            counts.evaluations += 1;
            engine.memo_clock += 1;
            let stamp = engine.memo_clock;
            scratch.assign(solution);
            let fp = fingerprint(&scratch);
            if let Some(hit) = engine.memo.get_mut(fp, &scratch) {
                hit.stamp = stamp;
                counts.memo_hits += 1;
                counters::bump(Counter::MemoHits);
                out[i] = Some(hit.result.clone());
                plans.push(Plan::Hit);
                continue;
            }
            // MH batches never contain duplicate solutions (distinct
            // moves on one pivot), but the protocol stays correct for
            // any caller: an in-batch duplicate is a memo hit on the
            // earlier miss's (future) entry. Batches are small, so a
            // fingerprint-gated linear scan beats building a side
            // table.
            if let Some(m) = misses.iter().find(|m| m.fp == fp && m.key == scratch) {
                counts.memo_hits += 1;
                counters::bump(Counter::MemoHits);
                plans.push(Plan::Dup(m.idx, stamp, fp, scratch.clone()));
                continue;
            }
            let spec = AppSpec::new(scene.app_id, scene.app, &solution.mapping, &solution.hints);
            let run = match check_horizon(&[spec], scene.horizon) {
                Ok(()) => true,
                Err(e) => {
                    out[i] = Some(Err(e));
                    false
                }
            };
            plans.push(Plan::Miss(misses.len()));
            misses.push(Miss {
                idx: i,
                key: scratch.clone(),
                stamp,
                fp,
                run,
            });
        }
        engine.key_scratch = scratch;

        // Pass 2: dispatch the runnable misses to worker engines.
        if misses.iter().any(|m| m.run) {
            let base = engine.base.get_or_insert_with(|| {
                FrozenBase::new(scene.arch, scene.frozen, scene.horizon).map(Arc::new)
            });
            match base {
                Err(e) => {
                    // Base errors precede the raw-schedule count, as in
                    // the sequential path.
                    let e = e.clone();
                    for m in misses.iter_mut().filter(|m| m.run) {
                        out[m.idx] = Some(Err(e.clone()));
                        m.run = false;
                    }
                }
                Ok(base) => {
                    let base = Arc::clone(base);
                    let jobs: Vec<(usize, u64)> = misses
                        .iter()
                        .filter(|m| m.run)
                        .map(|m| (m.idx, m.fp))
                        .collect();
                    counts.raw_schedules += jobs.len();
                    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
                    let worker_count = batch_worker_count(threads, jobs.len(), batch_cutover, hw);
                    let mut engines: Vec<EvalEngine> = {
                        let mut pool = self.workers.borrow_mut();
                        (0..worker_count)
                            .map(|_| pool.pop().unwrap_or_default())
                            .collect()
                    };
                    let produced: Vec<(usize, Result<Evaluation, SchedError>)> = if worker_count
                        == 1
                    {
                        let eng = &mut engines[0];
                        jobs.iter()
                            .map(|&(idx, fp)| {
                                (
                                    idx,
                                    evaluate_shared_full(&scene, &base, eng, &trials[idx], fp),
                                )
                            })
                            .collect()
                    } else {
                        let jobs = &jobs;
                        let scene = &scene;
                        let base = &base;
                        let finished: Vec<(EvalEngine, Vec<_>, _, _)> = std::thread::scope(|s| {
                            let handles: Vec<_> = engines
                                .drain(..)
                                .enumerate()
                                .map(|(w, mut eng)| {
                                    s.spawn(move || {
                                        let mut produced = Vec::new();
                                        let mut k = w;
                                        while k < jobs.len() {
                                            let (idx, fp) = jobs[k];
                                            produced.push((
                                                idx,
                                                evaluate_shared_full(
                                                    scene,
                                                    base,
                                                    &mut eng,
                                                    &trials[idx],
                                                    fp,
                                                ),
                                            ));
                                            k += worker_count;
                                        }
                                        // A scoped worker is a fresh OS
                                        // thread, so its thread-local
                                        // observability cells started at
                                        // zero: the final snapshot *is*
                                        // the worker's contribution.
                                        (eng, produced, counters::snapshot(), phase::snapshot())
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("search worker panicked"))
                                .collect()
                        });
                        let mut collected = Vec::with_capacity(jobs.len());
                        for (eng, produced, worker_counters, worker_phases) in finished {
                            engines.push(eng);
                            collected.extend(produced);
                            counters::merge_into_current(&worker_counters);
                            phase::merge_into_current(&worker_phases);
                        }
                        collected
                    };
                    self.workers.borrow_mut().append(&mut engines);
                    for (idx, res) in produced {
                        out[idx] = Some(res);
                    }
                }
            }
        }

        // Pass 3: reduce into the memo in candidate-index order, with
        // the prefilter stamps — the exact insertion/eviction sequence
        // a sequential run of these misses would have produced.
        for (i, plan) in plans.iter_mut().enumerate() {
            match plan {
                Plan::Hit => {}
                Plan::Miss(m) => {
                    let miss = &mut misses[*m];
                    let result = out[i].clone().expect("miss evaluated in pass 2");
                    engine.evict_if_full();
                    engine.memo.insert(
                        miss.fp,
                        std::mem::take(&mut miss.key),
                        MemoEntry {
                            result,
                            stamp: miss.stamp,
                        },
                    );
                    counters::bump(Counter::MemoInserts);
                }
                Plan::Dup(of, stamp, fp, key) => {
                    out[i] = out[*of].clone();
                    if let Some(hit) = engine.memo.get_mut(*fp, key) {
                        hit.stamp = *stamp;
                    }
                }
            }
        }
        self.counts.set(counts);
        out.into_iter()
            .map(|r| r.expect("every candidate planned"))
            .collect()
    }

    /// Builds `n` private chain lanes for the SA portfolio, each with
    /// its own [`EvalEngine`] (delta splicing enabled) sharing this
    /// context's `Arc<FrozenBase>`. Returns `None` when no shareable
    /// base exists (naive pipeline, or the bake failed — the classic
    /// path's initial evaluation surfaces the same error).
    pub(crate) fn chain_contexts(&self, n: usize) -> Option<Vec<ChainCtx<'a>>> {
        if self.naive {
            return None;
        }
        let mut engine = self.engine.borrow_mut();
        let base = engine.base.get_or_insert_with(|| {
            FrozenBase::new(self.arch, self.frozen, self.horizon).map(Arc::new)
        });
        let base = match base {
            Ok(b) => Arc::clone(b),
            Err(_) => return None,
        };
        let scene = self.scene();
        Some(
            (0..n)
                .map(|_| ChainCtx {
                    scene,
                    engine: EvalEngine {
                        base: Some(Ok(Arc::clone(&base))),
                        ..EvalEngine::default()
                    },
                    counts: EngineCounts::default(),
                    full_engine: self.full_engine,
                })
                .collect(),
        )
    }

    /// Merges finished chain lanes back into this context's counters.
    /// Callers pass chains in chain-index order; since addition is
    /// order-independent the totals are identical for any execution
    /// interleaving — the counters a portfolio run reports depend only
    /// on the per-chain trajectories, never on the thread count.
    pub(crate) fn absorb_chains(&self, chains: Vec<ChainCtx<'_>>) {
        let mut counts = self.counts.get();
        let mut diag = self.absorbed.get();
        for c in chains {
            counts.evaluations += c.counts.evaluations;
            counts.raw_schedules += c.counts.raw_schedules;
            counts.memo_hits += c.counts.memo_hits;
            diag.delta_schedules += c.engine.scheduler.delta_schedule_count();
            diag.spliced_steps += c.engine.scheduler.spliced_step_count();
            diag.replayed_steps += c.engine.scheduler.replayed_step_count();
        }
        self.counts.set(counts);
        self.absorbed.set(diag);
    }
}

/// A private evaluation lane for one SA portfolio chain: its own engine
/// (scheduler + record cache + memo + objective caches, delta splicing
/// enabled) sharing the scenario's `Arc<FrozenBase>`, plus its own
/// counters. `ChainCtx` is `Send`, so chain segments execute on scoped
/// worker threads; the owning context absorbs the counters afterwards
/// via [`MappingContext::absorb_chains`].
pub(crate) struct ChainCtx<'a> {
    scene: Scene<'a>,
    engine: EvalEngine,
    counts: EngineCounts,
    full_engine: bool,
}

impl ChainCtx<'_> {
    /// Schedules and scores one design alternative on this chain's
    /// private engine, counting one evaluation.
    pub(crate) fn evaluate(&mut self, solution: &Solution) -> Result<Evaluation, SchedError> {
        self.counts.evaluations += 1;
        engine_evaluate(
            &self.scene,
            &mut self.engine,
            &mut self.counts,
            self.full_engine,
            solution,
        )
    }

    /// Re-derives an evaluation for exchange bookkeeping without
    /// counting a design-space probe (the portfolio analogue of
    /// [`MappingContext::evaluate_snapshot`]).
    pub(crate) fn evaluate_snapshot(
        &mut self,
        solution: &Solution,
    ) -> Result<Evaluation, SchedError> {
        engine_evaluate(
            &self.scene,
            &mut self.engine,
            &mut self.counts,
            self.full_engine,
            solution,
        )
    }
}

/// Compile-time pins for the guarantees the scoped-thread code relies
/// on: the scene is shared immutably across workers, engines and
/// results move between threads. (`thread::scope` would reject the code
/// anyway — this states the contract in one place.)
#[allow(dead_code)]
fn parallel_safety_asserts(scene: Scene<'_>, engine: EvalEngine, chain: ChainCtx<'_>) {
    fn assert_send<T: Send>(_: T) {}
    fn assert_sync<T: Sync>(_: T) {}
    assert_sync(scene);
    assert_send(engine);
    assert_send(chain);
    let _ = assert_send::<Result<Evaluation, SchedError>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::prelude::*;
    use incdes_sched::Mapping;

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn one_proc_app() -> Application {
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        Application::new("app", vec![g])
    }

    #[test]
    fn evaluate_counts_and_scores() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol = Solution::from_mapping(mapping);
        assert_eq!(ctx.evaluation_count(), 0);
        let eval = ctx.evaluate(&sol).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        assert!(eval.cost.is_feasible());
        assert_eq!(eval.table.jobs().len(), 1);
    }

    #[test]
    fn observability_counters_pin_the_memo() {
        // Evaluate A, B, A: exactly one memo hit (the revisit) and two
        // inserts (the distinct solutions), pinned through the
        // deterministic counter registry.
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(120));
        g.add_process(
            Process::new("a")
                .wcet(PeId(0), Time::new(8))
                .wcet(PeId(1), Time::new(6)),
        );
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut map_a = Mapping::new();
        map_a.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let sol_a = Solution::from_mapping(map_a);
        let mut map_b = Mapping::new();
        map_b.assign(ProcRef::new(0, NodeId(0)), PeId(1));
        let sol_b = Solution::from_mapping(map_b);

        let before = counters::snapshot();
        ctx.evaluate(&sol_a).unwrap();
        ctx.evaluate(&sol_b).unwrap();
        ctx.evaluate(&sol_a).unwrap();
        let d = counters::snapshot().delta_since(&before);
        assert_eq!(d.get(Counter::MemoHits), 1, "only the revisit hits");
        assert_eq!(d.get(Counter::MemoInserts), 2, "two distinct solutions");
        assert_eq!(d.get(Counter::MemoEvictions), 0, "far below MEMO_CAP");
        // The registry agrees with the context's own diagnostics.
        assert_eq!(ctx.memo_hit_count() as u64, d.get(Counter::MemoHits));
        assert_eq!(ctx.evaluation_count(), 3);
    }

    #[test]
    fn evaluate_surfaces_infeasibility() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", Time::new(120), Time::new(4));
        g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
        let app = Application::new("app", vec![g]);
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let err = ctx.evaluate(&Solution::from_mapping(mapping)).unwrap_err();
        assert!(err.is_infeasible());
    }

    // `INCDES_RECORD_CACHE_CAP` / `INCDES_SEARCH_THREADS` parsing is
    // covered by the unit tests of `incdes_obs::diag`, which both
    // overrides now share.

    #[test]
    fn batch_worker_count_rule() {
        // Below the cutover: inline, regardless of threads or cores.
        assert_eq!(batch_worker_count(8, 3, 16, 64), 1);
        assert_eq!(batch_worker_count(8, 15, 16, 64), 1);
        // At or above the cutover: one worker per job up to threads...
        assert_eq!(batch_worker_count(8, 16, 16, 64), 8);
        assert_eq!(batch_worker_count(8, 100, 16, 64), 8);
        assert_eq!(batch_worker_count(8, 20, 16, 64), 8);
        assert_eq!(batch_worker_count(32, 20, 16, 64), 20);
        // ...capped at the machine's parallelism.
        assert_eq!(batch_worker_count(8, 100, 16, 2), 2);
        assert_eq!(batch_worker_count(8, 100, 16, 1), 1);
        // Degenerate inputs stay sane.
        assert_eq!(batch_worker_count(8, 100, 16, 0), 1);
        assert_eq!(batch_worker_count(0, 100, 0, 4), 1);
        // Cutover 0 never collapses (`effective_batch_cutover` resolves
        // the spec-level 0 to the default before this rule runs).
        assert_eq!(batch_worker_count(4, 1, 0, 4), 1); // min(jobs)
        assert_eq!(batch_worker_count(4, 2, 0, 4), 2);
    }

    #[test]
    fn effective_batch_cutover_resolves_default() {
        assert_eq!(SearchParallelism::Sequential.effective_batch_cutover(), 0);
        assert_eq!(
            SearchParallelism::threads(4).effective_batch_cutover(),
            SearchParallelism::DEFAULT_BATCH_CUTOVER
        );
        let explicit = SearchParallelism::Parallel {
            threads: 4,
            batch_cutover: 7,
            sa_chains: 1,
            sa_exchange_period: 64,
        };
        assert_eq!(explicit.effective_batch_cutover(), 7);
    }

    #[test]
    fn memo_eviction_retains_recent_record_keys() {
        let arch = arch2();
        let app = one_proc_app();
        let future = FutureProfile::slide_example();
        let weights = Weights::default();
        let ctx = MappingContext::new(
            &arch,
            AppId(0),
            &app,
            None,
            Time::new(120),
            &future,
            &weights,
        );
        let pr = ProcRef::new(0, NodeId(0));
        let mut mapping = Mapping::new();
        mapping.assign(pr, PeId(0));
        let base = Solution::from_mapping(mapping);
        let sol =
            |gap: u32| base.with_move(&crate::solution::Move::ProcSlack { proc_ref: pr, gap });
        // Fill the memo exactly to capacity with distinct solutions
        // (stamps 1..=MEMO_CAP); the record cache ends up naming the
        // last RECORD_CACHE_CAP of them.
        for gap in 0..MEMO_CAP as u32 {
            let _ = ctx.evaluate(&sol(gap));
        }
        // Freshen an old prefix so the "stale half" cutoff lands above
        // the stamps of the solutions the record cache still names.
        for gap in 0..300u32 {
            let _ = ctx.evaluate(&sol(gap));
        }
        // One more distinct solution triggers eviction on its miss.
        let _ = ctx.evaluate(&sol(MEMO_CAP as u32));
        let engine = ctx.engine.borrow();
        assert!(!engine.recent.is_empty());
        for (fp, key) in &engine.recent {
            assert!(
                engine.memo.contains(*fp, key),
                "record-cache fingerprint {fp:#x} names an evicted memo key"
            );
        }
    }
}
