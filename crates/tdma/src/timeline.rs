//! Concrete bus timeline over a scheduling horizon.

use incdes_model::{BusConfig, PeId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A flattened slot within one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlatSlot {
    owner: PeId,
    /// Offset of the slot start from the cycle start.
    offset: Time,
    length: Time,
}

/// One appearance of a slot on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotOccurrence {
    /// Global occurrence index: `cycle * slots_per_cycle + flat_index`.
    pub index: u64,
    /// Owning node.
    pub owner: PeId,
    /// Absolute start time.
    pub start: Time,
    /// Slot length.
    pub length: Time,
}

impl SlotOccurrence {
    /// Absolute end time of the slot.
    pub fn end(&self) -> Time {
        self.start + self.length
    }
}

/// A committed message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusReservation {
    /// The slot occurrence carrying the message.
    pub occurrence: u64,
    /// Transmitting node (slot owner).
    pub owner: PeId,
    /// Absolute time transmission of this message begins.
    pub transmit_start: Time,
    /// Absolute time the message has fully arrived (receiver may start).
    pub arrival: Time,
}

impl BusReservation {
    /// Transmission duration.
    pub fn duration(&self) -> Time {
        self.arrival - self.transmit_start
    }
}

/// Error from bus timeline operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusTimelineError {
    /// The horizon is zero or not a multiple of the bus cycle (a static
    /// cyclic schedule must wrap around exactly).
    BadHorizon {
        /// Requested horizon.
        horizon: Time,
        /// Cycle length of the bus.
        cycle: Time,
    },
    /// No slot occurrence of the node can carry the message before the
    /// horizon ends.
    NoSlot {
        /// The transmitting node.
        owner: PeId,
        /// Earliest allowed slot start.
        ready: Time,
        /// Required transmission time.
        duration: Time,
    },
    /// The message is longer than every slot of the node.
    MessageTooLong {
        /// The transmitting node.
        owner: PeId,
        /// Required transmission time.
        duration: Time,
    },
    /// An explicit reservation referenced an occurrence that does not
    /// belong to the stated owner or lies beyond the horizon.
    BadOccurrence {
        /// The occurrence index.
        occurrence: u64,
    },
}

impl fmt::Display for BusTimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusTimelineError::BadHorizon { horizon, cycle } => write!(
                f,
                "horizon {horizon} is zero or not a multiple of the bus cycle {cycle}"
            ),
            BusTimelineError::NoSlot { owner, ready, duration } => write!(
                f,
                "no free slot of {owner} from {ready} fits a transmission of {duration} before the horizon"
            ),
            BusTimelineError::MessageTooLong { owner, duration } => write!(
                f,
                "transmission of {duration} exceeds every slot of {owner}"
            ),
            BusTimelineError::BadOccurrence { occurrence } => {
                write!(f, "invalid slot occurrence {occurrence}")
            }
        }
    }
}

impl std::error::Error for BusTimelineError {}

/// Per-occurrence occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SlotUse {
    used: Time,
    messages: u32,
}

/// The bus timeline: slot occurrences over a horizon plus their occupancy.
///
/// Construction is cheap (occupancy is sparse); the mapping heuristics
/// rebuild a timeline for every candidate solution they evaluate.
/// Occupancy is a `Vec` sorted by occurrence index rather than a tree:
/// it stays small (one entry per occupied frame), lookups are a binary
/// search over contiguous memory, and [`reset_from`](Self::reset_from)
/// — called once per evaluation by the delta engine — restores it with
/// a flat `clone_from` instead of a node-by-node tree clone.
#[derive(Debug, Clone)]
pub struct BusTimeline {
    /// Slot geometry, immutable after construction: every mutating
    /// operation touches only `occupancy`. Shared behind `Arc`s so
    /// clones and per-evaluation resets are pointer bumps, not deep
    /// copies of the per-cycle slot tables.
    flat: Arc<[FlatSlot]>,
    /// Flat indices owned by each PE, in cycle order.
    by_owner: Arc<[Vec<usize>]>,
    cycle: Time,
    horizon: Time,
    cycles: u64,
    /// Sorted by occurrence index; only occupied frames have entries.
    occupancy: Vec<(u64, SlotUse)>,
}

impl BusTimeline {
    /// Builds a timeline for `bus` covering `[0, horizon)`.
    ///
    /// # Errors
    ///
    /// Returns [`BusTimelineError::BadHorizon`] if `horizon` is zero or
    /// not a multiple of the bus cycle length.
    pub fn new(bus: &BusConfig, horizon: Time) -> Result<Self, BusTimelineError> {
        let cycle = bus.cycle_length();
        if horizon.is_zero() || !(horizon % cycle).is_zero() {
            return Err(BusTimelineError::BadHorizon { horizon, cycle });
        }
        let mut flat = Vec::new();
        let mut offset = Time::ZERO;
        let mut max_pe = 0usize;
        for round in &bus.rounds {
            for slot in &round.slots {
                flat.push(FlatSlot {
                    owner: slot.owner,
                    offset,
                    length: slot.length,
                });
                max_pe = max_pe.max(slot.owner.index() + 1);
                offset += slot.length;
            }
        }
        let mut by_owner = vec![Vec::new(); max_pe];
        for (i, s) in flat.iter().enumerate() {
            by_owner[s.owner.index()].push(i);
        }
        let cycles = horizon.ticks() / cycle.ticks();
        Ok(BusTimeline {
            flat: flat.into(),
            by_owner: by_owner.into(),
            cycle,
            horizon,
            cycles,
            occupancy: Vec::new(),
        })
    }

    /// Occupancy entry of occurrence `index`, if occupied.
    fn occupancy_get(&self, index: u64) -> Option<&SlotUse> {
        self.occupancy
            .binary_search_by_key(&index, |&(i, _)| i)
            .ok()
            .map(|p| &self.occupancy[p].1)
    }

    /// Occupancy entry of occurrence `index`, inserted empty if absent.
    fn occupancy_entry(&mut self, index: u64) -> &mut SlotUse {
        let p = match self.occupancy.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(p) => p,
            Err(p) => {
                self.occupancy.insert(p, (index, SlotUse::default()));
                p
            }
        };
        &mut self.occupancy[p].1
    }

    /// The scheduling horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The bus cycle length.
    pub fn cycle_length(&self) -> Time {
        self.cycle
    }

    /// Number of slot occurrences on the timeline.
    pub fn occurrence_count(&self) -> u64 {
        self.cycles * self.flat.len() as u64
    }

    /// The occurrence with global index `index`.
    ///
    /// # Errors
    ///
    /// Returns [`BusTimelineError::BadOccurrence`] if beyond the horizon.
    pub fn occurrence(&self, index: u64) -> Result<SlotOccurrence, BusTimelineError> {
        if index >= self.occurrence_count() {
            return Err(BusTimelineError::BadOccurrence { occurrence: index });
        }
        let per = self.flat.len() as u64;
        let cycle_idx = index / per;
        let flat_idx = (index % per) as usize;
        let s = self.flat[flat_idx];
        Ok(SlotOccurrence {
            index,
            owner: s.owner,
            start: Time::new(cycle_idx * self.cycle.ticks()) + s.offset,
            length: s.length,
        })
    }

    /// Time already used inside occurrence `index`.
    pub fn used(&self, index: u64) -> Time {
        self.occupancy_get(index).map_or(Time::ZERO, |u| u.used)
    }

    /// Number of messages packed into occurrence `index`.
    pub fn message_count(&self, index: u64) -> u32 {
        self.occupancy_get(index).map_or(0, |u| u.messages)
    }

    /// Iterator over the occurrences owned by `pe`, in time order,
    /// starting from the first occurrence whose start is ≥ `from`.
    pub fn occurrences_of(
        &self,
        pe: PeId,
        from: Time,
    ) -> impl Iterator<Item = SlotOccurrence> + '_ {
        let slots: &[usize] = self
            .by_owner
            .get(pe.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let per = self.flat.len() as u64;
        let start_cycle = (from.ticks() / self.cycle.ticks().max(1)).saturating_sub(1);
        let cycles = self.cycles;
        let cycle_len = self.cycle;
        let flat = &self.flat;
        (start_cycle..cycles)
            .flat_map(move |c| slots.iter().map(move |&fi| (c, fi)))
            .filter_map(move |(c, fi)| {
                let s = flat[fi];
                let start = Time::new(c * cycle_len.ticks()) + s.offset;
                if start < from {
                    return None;
                }
                Some(SlotOccurrence {
                    index: c * per + fi as u64,
                    owner: s.owner,
                    start,
                    length: s.length,
                })
            })
    }

    /// Schedules a message of transmission time `duration` from node `pe`,
    /// ready at `ready`: the earliest slot occurrence of `pe` that starts
    /// at or after `ready` and still has `duration` of room.
    ///
    /// # Errors
    ///
    /// [`BusTimelineError::MessageTooLong`] if no slot of `pe` is long
    /// enough even when empty; [`BusTimelineError::NoSlot`] if all fitting
    /// occurrences before the horizon are full.
    pub fn schedule_message(
        &mut self,
        pe: PeId,
        ready: Time,
        duration: Time,
    ) -> Result<BusReservation, BusTimelineError> {
        self.schedule_message_nth(pe, ready, duration, 0)
    }

    /// Like [`schedule_message`](Self::schedule_message) but skips the
    /// first `skip` feasible occurrences — the "move a message to a
    /// different slack on the bus" design transformation of the paper.
    ///
    /// # Errors
    ///
    /// As [`schedule_message`](Self::schedule_message); `skip` beyond the
    /// last feasible occurrence yields [`BusTimelineError::NoSlot`].
    pub fn schedule_message_nth(
        &mut self,
        pe: PeId,
        ready: Time,
        duration: Time,
        skip: usize,
    ) -> Result<BusReservation, BusTimelineError> {
        let fits_any = self
            .by_owner
            .get(pe.index())
            .is_some_and(|slots| slots.iter().any(|&fi| self.flat[fi].length >= duration));
        if !fits_any {
            return Err(BusTimelineError::MessageTooLong {
                owner: pe,
                duration,
            });
        }
        let mut remaining = skip;
        let mut chosen: Option<SlotOccurrence> = None;
        for occ in self.occurrences_of(pe, ready) {
            let used = self.used(occ.index);
            if used + duration <= occ.length {
                if remaining == 0 {
                    chosen = Some(occ);
                    break;
                }
                remaining -= 1;
            }
        }
        let occ = chosen.ok_or(BusTimelineError::NoSlot {
            owner: pe,
            ready,
            duration,
        })?;
        let entry = self.occupancy_entry(occ.index);
        let transmit_start = occ.start + entry.used;
        entry.used += duration;
        entry.messages += 1;
        Ok(BusReservation {
            occurrence: occ.index,
            owner: pe,
            transmit_start,
            arrival: transmit_start + duration,
        })
    }

    /// Non-mutating version of [`schedule_message`](Self::schedule_message):
    /// where *would* the message be placed?
    ///
    /// # Errors
    ///
    /// As [`schedule_message`](Self::schedule_message).
    pub fn peek_message(
        &self,
        pe: PeId,
        ready: Time,
        duration: Time,
    ) -> Result<BusReservation, BusTimelineError> {
        let fits_any = self
            .by_owner
            .get(pe.index())
            .is_some_and(|slots| slots.iter().any(|&fi| self.flat[fi].length >= duration));
        if !fits_any {
            return Err(BusTimelineError::MessageTooLong {
                owner: pe,
                duration,
            });
        }
        for occ in self.occurrences_of(pe, ready) {
            let used = self.used(occ.index);
            if used + duration <= occ.length {
                let transmit_start = occ.start + used;
                return Ok(BusReservation {
                    occurrence: occ.index,
                    owner: pe,
                    transmit_start,
                    arrival: transmit_start + duration,
                });
            }
        }
        Err(BusTimelineError::NoSlot {
            owner: pe,
            ready,
            duration,
        })
    }

    /// Replays a committed reservation into this timeline (used when a
    /// fresh timeline is rebuilt around the frozen schedules of existing
    /// applications). The message is appended to the occurrence's frame.
    ///
    /// # Errors
    ///
    /// [`BusTimelineError::BadOccurrence`] if the occurrence is out of
    /// range or not owned by `pe`; [`BusTimelineError::NoSlot`] if the
    /// occurrence no longer has room.
    pub fn reserve_in_occurrence(
        &mut self,
        pe: PeId,
        occurrence: u64,
        duration: Time,
    ) -> Result<BusReservation, BusTimelineError> {
        let occ = self.occurrence(occurrence)?;
        if occ.owner != pe {
            return Err(BusTimelineError::BadOccurrence { occurrence });
        }
        let entry = self.occupancy_entry(occurrence);
        if entry.used + duration > occ.length {
            return Err(BusTimelineError::NoSlot {
                owner: pe,
                ready: occ.start,
                duration,
            });
        }
        let transmit_start = occ.start + entry.used;
        entry.used += duration;
        entry.messages += 1;
        Ok(BusReservation {
            occurrence,
            owner: pe,
            transmit_start,
            arrival: transmit_start + duration,
        })
    }

    /// Undoes the most recent reservation of occurrence `occurrence` —
    /// which must be the *tail* of the frame (TTP frames pack
    /// contiguously, so reservations can only be unwound in reverse
    /// order). The delta-scheduling engine uses this to undo the previous
    /// evaluation's messages instead of resetting the whole occupancy
    /// from the frozen base.
    ///
    /// # Panics
    ///
    /// Panics if the occurrence carries no reservation or if `reservation`
    /// is not its current tail — the engine only unwinds reservations it
    /// recorded, in reverse order, so a mismatch is a bookkeeping bug.
    pub fn unreserve_tail(&mut self, reservation: &BusReservation) {
        let occ = self
            .occurrence(reservation.occurrence)
            .expect("unreserve_tail of an occurrence beyond the horizon");
        let p = self
            .occupancy
            .binary_search_by_key(&reservation.occurrence, |&(i, _)| i)
            .expect("unreserve_tail of an empty occurrence");
        let entry = &mut self.occupancy[p].1;
        assert_eq!(
            occ.start + entry.used,
            reservation.arrival,
            "unreserve_tail out of order: reservation is not the frame tail"
        );
        entry.used -= reservation.duration();
        entry.messages -= 1;
        if entry.used.is_zero() && entry.messages == 0 {
            self.occupancy.remove(p);
        }
    }

    /// Resets this timeline to an exact copy of `other`, reusing the
    /// geometry allocations. The scheduling engine calls this once per
    /// evaluation to restore the baked frozen bus occupancy instead of
    /// rebuilding the timeline from the bus config.
    pub fn reset_from(&mut self, other: &BusTimeline) {
        // Geometry is immutable, so the reset aliases the source's
        // tables; only the (sparse) occupancy is actually copied.
        self.flat = Arc::clone(&other.flat);
        self.by_owner = Arc::clone(&other.by_owner);
        self.cycle = other.cycle;
        self.horizon = other.horizon;
        self.cycles = other.cycles;
        self.occupancy.clone_from(&other.occupancy);
    }

    /// Total bus time reserved so far.
    pub fn total_used(&self) -> Time {
        self.occupancy.iter().map(|(_, u)| u.used).sum()
    }

    /// Total slot capacity on the timeline (sum of slot lengths over all
    /// occurrences). Inter-slot gaps are protocol overhead, not capacity.
    pub fn total_capacity(&self) -> Time {
        let per_cycle: Time = self.flat.iter().map(|s| s.length).sum();
        Time::new(per_cycle.ticks() * self.cycles)
    }

    /// Fraction of slot capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap.is_zero() {
            0.0
        } else {
            self.total_used().as_f64() / cap.as_f64()
        }
    }

    /// The free tail of every slot occurrence, as `(start, end)` windows
    /// in time order. These are the *bus slack* containers handed to the
    /// C1m bin-packer.
    pub fn free_windows(&self) -> Vec<(Time, Time)> {
        let mut out = Vec::new();
        for idx in 0..self.occurrence_count() {
            let occ = self.occurrence(idx).expect("index < count");
            let used = self.used(idx);
            if used < occ.length {
                out.push((occ.start + used, occ.end()));
            }
        }
        out
    }

    /// Total free slot time inside the window `[from, to)` — used by the
    /// C2m periodic-slack metric.
    pub fn free_time_in(&self, from: Time, to: Time) -> Time {
        let mut total = Time::ZERO;
        for idx in 0..self.occurrence_count() {
            let occ = self.occurrence(idx).expect("index < count");
            if occ.start >= to {
                break;
            }
            let free_start = occ.start + self.used(idx);
            let free_end = occ.end();
            let lo = free_start.max(from);
            let hi = free_end.min(to);
            if lo < hi {
                total += hi - lo;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::{BusConfig, Round, Slot};

    /// 2 PEs, slot 10 ticks each, 1 round per cycle → cycle 20 ticks.
    fn simple() -> BusTimeline {
        let bus = BusConfig::uniform_round(2, Time::new(10), 1).unwrap();
        BusTimeline::new(&bus, Time::new(100)).unwrap()
    }

    #[test]
    fn horizon_must_be_cycle_multiple() {
        let bus = BusConfig::uniform_round(2, Time::new(10), 1).unwrap();
        assert!(matches!(
            BusTimeline::new(&bus, Time::new(30)),
            Err(BusTimelineError::BadHorizon { .. })
        ));
        assert!(matches!(
            BusTimeline::new(&bus, Time::ZERO),
            Err(BusTimelineError::BadHorizon { .. })
        ));
    }

    #[test]
    fn occurrence_math() {
        let t = simple();
        assert_eq!(t.occurrence_count(), 10); // 5 cycles * 2 slots
        let o0 = t.occurrence(0).unwrap();
        assert_eq!(o0.owner, PeId(0));
        assert_eq!(o0.start, Time::ZERO);
        let o1 = t.occurrence(1).unwrap();
        assert_eq!(o1.owner, PeId(1));
        assert_eq!(o1.start, Time::new(10));
        let o4 = t.occurrence(4).unwrap();
        assert_eq!(o4.owner, PeId(0));
        assert_eq!(o4.start, Time::new(40));
        assert!(t.occurrence(10).is_err());
    }

    #[test]
    fn first_fit_in_first_slot() {
        let mut t = simple();
        let r = t
            .schedule_message(PeId(0), Time::ZERO, Time::new(4))
            .unwrap();
        assert_eq!(r.occurrence, 0);
        assert_eq!(r.transmit_start, Time::ZERO);
        assert_eq!(r.arrival, Time::new(4));
        assert_eq!(r.duration(), Time::new(4));
    }

    #[test]
    fn ready_after_slot_start_waits_for_next_cycle() {
        let mut t = simple();
        // PE0's slots start at 0, 20, 40, ... Ready at 3 → slot at 20.
        let r = t
            .schedule_message(PeId(0), Time::new(3), Time::new(4))
            .unwrap();
        assert_eq!(r.transmit_start, Time::new(20));
        assert_eq!(r.arrival, Time::new(24));
    }

    #[test]
    fn messages_pack_into_one_frame() {
        let mut t = simple();
        let r1 = t
            .schedule_message(PeId(1), Time::ZERO, Time::new(4))
            .unwrap();
        let r2 = t
            .schedule_message(PeId(1), Time::ZERO, Time::new(5))
            .unwrap();
        // PE1's first slot starts at 10.
        assert_eq!(r1.transmit_start, Time::new(10));
        assert_eq!(r2.transmit_start, Time::new(14));
        assert_eq!(r2.arrival, Time::new(19));
        assert_eq!(r1.occurrence, r2.occurrence);
        assert_eq!(t.message_count(r1.occurrence), 2);
        assert_eq!(t.used(r1.occurrence), Time::new(9));
    }

    #[test]
    fn full_slot_overflows_to_next_occurrence() {
        let mut t = simple();
        t.schedule_message(PeId(0), Time::ZERO, Time::new(8))
            .unwrap();
        let r = t
            .schedule_message(PeId(0), Time::ZERO, Time::new(4))
            .unwrap();
        assert_eq!(r.transmit_start, Time::new(20));
    }

    #[test]
    fn message_longer_than_slot_rejected() {
        let mut t = simple();
        assert!(matches!(
            t.schedule_message(PeId(0), Time::ZERO, Time::new(11)),
            Err(BusTimelineError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn horizon_exhaustion_reported() {
        let mut t = simple();
        // Fill all five occurrences of PE0 completely.
        for _ in 0..5 {
            t.schedule_message(PeId(0), Time::ZERO, Time::new(10))
                .unwrap();
        }
        assert!(matches!(
            t.schedule_message(PeId(0), Time::ZERO, Time::new(1)),
            Err(BusTimelineError::NoSlot { .. })
        ));
    }

    #[test]
    fn nth_slot_transformation() {
        let mut t = simple();
        let r = t
            .schedule_message_nth(PeId(0), Time::ZERO, Time::new(4), 2)
            .unwrap();
        // Skip occurrences at 0 and 20 → land at 40.
        assert_eq!(r.transmit_start, Time::new(40));
        // Earlier occurrences remain untouched.
        assert_eq!(t.used(0), Time::ZERO);
    }

    #[test]
    fn nth_beyond_horizon_is_no_slot() {
        let mut t = simple();
        assert!(matches!(
            t.schedule_message_nth(PeId(0), Time::ZERO, Time::new(4), 50),
            Err(BusTimelineError::NoSlot { .. })
        ));
    }

    #[test]
    fn peek_matches_schedule_and_does_not_mutate() {
        let mut t = simple();
        t.schedule_message(PeId(0), Time::ZERO, Time::new(8))
            .unwrap();
        let peeked = t.peek_message(PeId(0), Time::ZERO, Time::new(4)).unwrap();
        assert_eq!(t.used(0), Time::new(8), "peek must not mutate");
        let real = t
            .schedule_message(PeId(0), Time::ZERO, Time::new(4))
            .unwrap();
        assert_eq!(peeked, real);
        assert!(matches!(
            t.peek_message(PeId(0), Time::ZERO, Time::new(11)),
            Err(BusTimelineError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn reserve_in_occurrence_replays() {
        let mut t = simple();
        let r = t.reserve_in_occurrence(PeId(1), 3, Time::new(6)).unwrap();
        // Occurrence 3 = cycle 1, slot 1 → starts at 30.
        assert_eq!(r.transmit_start, Time::new(30));
        assert_eq!(t.used(3), Time::new(6));
        // Wrong owner rejected.
        assert!(matches!(
            t.reserve_in_occurrence(PeId(0), 3, Time::new(1)),
            Err(BusTimelineError::BadOccurrence { .. })
        ));
        // Overfill rejected.
        assert!(matches!(
            t.reserve_in_occurrence(PeId(1), 3, Time::new(5)),
            Err(BusTimelineError::NoSlot { .. })
        ));
    }

    #[test]
    fn capacity_and_utilization() {
        let mut t = simple();
        assert_eq!(t.total_capacity(), Time::new(100));
        assert_eq!(t.utilization(), 0.0);
        t.schedule_message(PeId(0), Time::ZERO, Time::new(10))
            .unwrap();
        assert_eq!(t.total_used(), Time::new(10));
        assert!((t.utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn free_windows_reflect_packing() {
        let mut t = simple();
        t.schedule_message(PeId(0), Time::ZERO, Time::new(6))
            .unwrap();
        let w = t.free_windows();
        // First window is the tail of occurrence 0: [6, 10).
        assert_eq!(w[0], (Time::new(6), Time::new(10)));
        // Second is PE1's untouched slot: [10, 20).
        assert_eq!(w[1], (Time::new(10), Time::new(20)));
        // Full occupancy removes the window.
        let mut t2 = simple();
        t2.schedule_message(PeId(0), Time::ZERO, Time::new(10))
            .unwrap();
        assert!(t2.free_windows().iter().all(|&(s, _)| s != Time::ZERO));
    }

    #[test]
    fn free_time_in_window() {
        let mut t = simple();
        // Whole timeline free: [0,20) covers slot0 + slot1 = 20 of slot time.
        assert_eq!(t.free_time_in(Time::ZERO, Time::new(20)), Time::new(20));
        // Partial overlap: [5,15) → 5 from slot0 + 5 from slot1.
        assert_eq!(t.free_time_in(Time::new(5), Time::new(15)), Time::new(10));
        t.schedule_message(PeId(0), Time::ZERO, Time::new(10))
            .unwrap();
        assert_eq!(t.free_time_in(Time::ZERO, Time::new(20)), Time::new(10));
    }

    #[test]
    fn asymmetric_rounds() {
        // Cycle of two rounds with different slot lengths.
        let r1 = Round::new(vec![
            Slot::new(PeId(0), Time::new(4)),
            Slot::new(PeId(1), Time::new(6)),
        ]);
        let r2 = Round::new(vec![
            Slot::new(PeId(0), Time::new(8)),
            Slot::new(PeId(1), Time::new(2)),
        ]);
        let bus = BusConfig::new(vec![r1, r2], 1).unwrap();
        let mut t = BusTimeline::new(&bus, Time::new(40)).unwrap();
        // PE0 slots: [0,4) and [10,18) per cycle of 20.
        // A 6-tick message only fits the round-2 slot.
        let r = t
            .schedule_message(PeId(0), Time::ZERO, Time::new(6))
            .unwrap();
        assert_eq!(r.transmit_start, Time::new(10));
        // A 7-tick message from PE1 never fits (slots are 6 and 2).
        assert!(matches!(
            t.schedule_message(PeId(1), Time::ZERO, Time::new(7)),
            Err(BusTimelineError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn occurrences_of_unknown_pe_is_empty() {
        let t = simple();
        assert_eq!(t.occurrences_of(PeId(9), Time::ZERO).count(), 0);
    }

    #[test]
    fn occurrences_of_respects_from() {
        let t = simple();
        let first = t.occurrences_of(PeId(0), Time::new(21)).next().unwrap();
        assert_eq!(first.start, Time::new(40));
        // from exactly at a slot start includes it.
        let at = t.occurrences_of(PeId(0), Time::new(40)).next().unwrap();
        assert_eq!(at.start, Time::new(40));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use incdes_model::BusConfig;
    use proptest::prelude::*;

    proptest! {
        /// Packing conservation: total used time equals the sum of all
        /// successful reservations, no frame ever overflows its slot, and
        /// reservations within one occurrence are contiguous from the
        /// slot start.
        #[test]
        fn prop_frame_packing_is_consistent(
            reqs in proptest::collection::vec((0u32..3, 0u64..160, 1u64..9), 0..40)
        ) {
            let bus = BusConfig::uniform_round(3, Time::new(8), 1).unwrap();
            let mut tl = BusTimeline::new(&bus, Time::new(240)).unwrap();
            let mut granted: Vec<BusReservation> = Vec::new();
            for (pe, ready, dur) in reqs {
                if let Ok(r) = tl.schedule_message(PeId(pe), Time::new(ready), Time::new(dur)) {
                    granted.push(r);
                }
            }
            let total: Time = granted.iter().map(|r| r.duration()).sum();
            prop_assert_eq!(tl.total_used(), total);
            // Per-occurrence checks.
            let mut by_occ: std::collections::BTreeMap<u64, Vec<&BusReservation>> =
                std::collections::BTreeMap::new();
            for r in &granted {
                by_occ.entry(r.occurrence).or_default().push(r);
            }
            for (occ_idx, mut rs) in by_occ {
                let occ = tl.occurrence(occ_idx).unwrap();
                rs.sort_by_key(|r| r.transmit_start);
                let mut cursor = occ.start;
                for r in rs {
                    prop_assert_eq!(r.owner, occ.owner);
                    prop_assert_eq!(r.transmit_start, cursor, "frames pack contiguously");
                    cursor = r.arrival;
                }
                prop_assert!(cursor <= occ.end(), "frame exceeds its slot");
            }
        }

        /// free_time_in over a partition of the horizon equals capacity
        /// minus used.
        #[test]
        fn prop_free_time_partition(
            reqs in proptest::collection::vec((0u32..2, 0u64..100, 1u64..9), 0..25),
            window in 1u64..60,
        ) {
            let bus = BusConfig::uniform_round(2, Time::new(8), 1).unwrap();
            let mut tl = BusTimeline::new(&bus, Time::new(160)).unwrap();
            for (pe, ready, dur) in reqs {
                let _ = tl.schedule_message(PeId(pe), Time::new(ready), Time::new(dur));
            }
            let mut sum = Time::ZERO;
            let mut from = 0u64;
            while from < 160 {
                let to = (from + window).min(160);
                sum += tl.free_time_in(Time::new(from), Time::new(to));
                from = to;
            }
            prop_assert_eq!(sum + tl.total_used(), tl.total_capacity());
        }
    }
}
