//! TTP-style TDMA bus timing engine.
//!
//! [`incdes_model::BusConfig`] describes the *static* structure of the bus
//! (a cycle of rounds, each round a sequence of slots). This crate turns
//! that structure into a concrete timeline over a scheduling horizon and
//! answers the questions the static cyclic scheduler asks:
//!
//! * *When is the next opportunity for node `N` to transmit a message of
//!   `b` bytes, given the data is ready at time `t`?* —
//!   [`BusTimeline::schedule_message`]
//! * *Which parts of the bus are still free?* — [`BusTimeline::free_windows`]
//! * *How much bus slack lies inside a given time window?* —
//!   [`BusTimeline::free_time_in`]
//!
//! # Timing model
//!
//! Messages transmitted by a node are packed back-to-back into that node's
//! slot occurrences (a slot occurrence is one appearance of a slot on the
//! timeline; the cycle repeats forever). Following the TTP discipline that
//! a frame is assembled before its slot begins, a message may only ride in
//! a slot occurrence whose *start* is at or after the message's ready
//! time. The receiver may consume the data once the message's portion of
//! the frame has been transmitted.
//!
//! # Example
//!
//! ```
//! use incdes_model::{BusConfig, PeId, Time};
//! use incdes_tdma::BusTimeline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two nodes, slots of 10 ticks, one round per cycle → cycle = 20.
//! let bus = BusConfig::uniform_round(2, Time::new(10), 1)?;
//! let mut timeline = BusTimeline::new(&bus, Time::new(100))?;
//!
//! // Node 0's first slot starts at t=0; data ready at t=3 must wait for
//! // the occurrence at t=20.
//! let r = timeline.schedule_message(PeId(0), Time::new(3), Time::new(4))?;
//! assert_eq!(r.transmit_start, Time::new(20));
//! assert_eq!(r.arrival, Time::new(24));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timeline;

pub use timeline::{BusReservation, BusTimeline, BusTimelineError, SlotOccurrence};
