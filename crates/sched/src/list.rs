//! The static cyclic list scheduler.
//!
//! Given an architecture, applications with fixed mappings and placement
//! hints, and (optionally) a frozen schedule of existing applications,
//! [`schedule`] builds one table covering the hyperperiod:
//!
//! 1. frozen jobs and messages are replayed verbatim (requirement *a* of
//!    the paper — existing applications are never moved);
//! 2. the new applications' jobs are expanded over the hyperperiod and
//!    list-scheduled in order of partial-critical-path priority, each job
//!    placed into the earliest processor gap after its data is ready
//!    (skipping gaps according to its hint);
//! 3. every inter-PE message is placed into the earliest TDMA slot of the
//!    sender that starts after the producer finishes (skipping slots
//!    according to its hint).
//!
//! [`schedule`] is a thin compatibility wrapper over the incremental
//! evaluation engine in [`crate::engine`]: it builds a transient
//! [`crate::engine::FrozenBase`] and runs a fresh
//! [`crate::engine::Scheduler`] on it. Hot loops that evaluate many
//! design alternatives against one frozen schedule should hold on to
//! both and skip the per-call replay entirely.

use crate::job::JobId;
use crate::mapping::{Hints, Mapping, MsgRef};
use crate::pe_timeline::PeTimelineError;
use crate::table::ScheduleTable;
use incdes_model::{AppId, Application, Architecture, PeId, ProcRef, Time};
use incdes_tdma::BusTimelineError;
use std::fmt;

/// One application to schedule, with its design variables.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec<'a> {
    /// System-wide id the jobs will carry.
    pub id: AppId,
    /// The application.
    pub app: &'a Application,
    /// Process → PE assignment (must cover every process).
    pub mapping: &'a Mapping,
    /// Placement hints (empty = earliest-feasible everywhere).
    pub hints: &'a Hints,
}

impl<'a> AppSpec<'a> {
    /// Creates a spec.
    pub fn new(id: AppId, app: &'a Application, mapping: &'a Mapping, hints: &'a Hints) -> Self {
        AppSpec {
            id,
            app,
            mapping,
            hints,
        }
    }
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The horizon is not a positive multiple of a graph period or of the
    /// bus cycle.
    BadHorizon {
        /// The requested horizon.
        horizon: Time,
    },
    /// A process has no PE assigned in its mapping.
    MappingIncomplete {
        /// The application.
        app: AppId,
        /// The unmapped process.
        proc_ref: ProcRef,
    },
    /// A process is mapped to a PE it is not allowed on.
    NotAllowed {
        /// The application.
        app: AppId,
        /// The process.
        proc_ref: ProcRef,
        /// The offending PE.
        pe: PeId,
    },
    /// No processor gap fits a job before the horizon.
    NoGap {
        /// The job that could not be placed.
        job: JobId,
        /// The underlying timeline error.
        source: PeTimelineError,
    },
    /// No bus slot fits a message before the horizon.
    NoSlot {
        /// The producing job.
        job: JobId,
        /// The message.
        msg: MsgRef,
        /// The underlying bus error.
        source: BusTimelineError,
    },
    /// A job finished after its deadline.
    DeadlineMiss {
        /// The late job.
        job: JobId,
        /// Its end time.
        end: Time,
        /// Its deadline.
        deadline: Time,
    },
    /// The frozen table conflicts with itself or the horizon (corrupted
    /// input).
    FrozenConflict,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::BadHorizon { horizon } => write!(
                f,
                "horizon {horizon} is not a positive multiple of every period and the bus cycle"
            ),
            SchedError::MappingIncomplete { app, proc_ref } => {
                write!(f, "process {app}/{proc_ref} has no PE assigned")
            }
            SchedError::NotAllowed { app, proc_ref, pe } => {
                write!(f, "process {app}/{proc_ref} is mapped to disallowed {pe}")
            }
            SchedError::NoGap { job, source } => write!(f, "cannot place job {job}: {source}"),
            SchedError::NoSlot { job, msg, source } => {
                write!(f, "cannot place message {msg} of job {job}: {source}")
            }
            SchedError::DeadlineMiss { job, end, deadline } => {
                write!(f, "job {job} ends at {end}, after its deadline {deadline}")
            }
            SchedError::FrozenConflict => write!(f, "frozen schedule could not be replayed"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Whether the error means "this design alternative is infeasible" (the
/// heuristics treat it as cost ∞) rather than "the input is malformed".
impl SchedError {
    /// True for capacity/deadline failures, false for input errors.
    pub fn is_infeasible(&self) -> bool {
        matches!(
            self,
            SchedError::NoGap { .. } | SchedError::NoSlot { .. } | SchedError::DeadlineMiss { .. }
        )
    }
}

/// Builds the static cyclic schedule.
///
/// `frozen`, if given, must cover exactly `horizon`; its jobs and messages
/// are replayed first and included in the returned table.
///
/// This is the one-shot convenience wrapper over the evaluation engine:
/// it replays the frozen schedule into a transient
/// [`crate::engine::FrozenBase`] and discards the engine's scratch
/// afterwards. Callers that evaluate many alternatives against the same
/// frozen schedule should build the base once and reuse a
/// [`crate::engine::Scheduler`] instead.
///
/// # Errors
///
/// See [`SchedError`]. Errors with
/// [`is_infeasible`](SchedError::is_infeasible)` == true` mean the design
/// alternative does not fit; others indicate malformed input.
pub fn schedule(
    arch: &Architecture,
    apps: &[AppSpec<'_>],
    frozen: Option<&ScheduleTable>,
    horizon: Time,
) -> Result<ScheduleTable, SchedError> {
    // Input validation runs in the historical order (horizon and period
    // alignment before bus/frozen replay) so error precedence is stable.
    crate::engine::check_horizon(apps, horizon)?;
    let base = crate::engine::FrozenBase::new(arch, frozen, horizon)?;
    crate::engine::Scheduler::new().schedule(arch, apps, &base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_graph::NodeId;
    use incdes_model::{Application, BusConfig, Message, Process, ProcessGraph};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    /// a(pe0, 8) --m(4B)--> b(pe1, 6), period/deadline 100.
    fn chain_app() -> (Application, Mapping) {
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let mut m = Mapping::new();
        m.assign(ProcRef::new(0, a), PeId(0));
        m.assign(ProcRef::new(0, b), PeId(1));
        (app, m)
    }

    #[test]
    fn schedules_simple_chain() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let table = schedule(&arch, &[spec], None, t(100)).unwrap();
        assert_eq!(table.jobs().len(), 2);
        assert_eq!(table.messages().len(), 1);
        let a = table.job(JobId::new(AppId(0), 0, 0, NodeId(0))).unwrap();
        let b = table.job(JobId::new(AppId(0), 0, 0, NodeId(1))).unwrap();
        assert_eq!(a.start, t(0));
        assert_eq!(a.end, t(8));
        // Message rides PE0's slot at t=20 (first slot after end=8 is the
        // occurrence starting at 20), arrives 24; b starts then.
        let m = &table.messages()[0];
        assert_eq!(m.reservation.transmit_start, t(20));
        assert_eq!(b.start, t(24));
        table
            .validate(&arch, &[(AppId(0), &app, &mapping)])
            .unwrap();
    }

    #[test]
    fn same_pe_needs_no_message() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        mapping.assign(ProcRef::new(0, b), PeId(0));
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let table = schedule(&arch, &[spec], None, t(100)).unwrap();
        assert!(table.messages().is_empty());
        let b_job = table.job(JobId::new(AppId(0), 0, 0, NodeId(1))).unwrap();
        assert_eq!(b_job.start, t(8));
        table
            .validate(&arch, &[(AppId(0), &app, &mapping)])
            .unwrap();
    }

    #[test]
    fn multiple_instances_over_hyperperiod() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(50), t(50));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(10)));
        let app = Application::new("app", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let table = schedule(&arch, &[spec], None, t(200)).unwrap();
        assert_eq!(table.jobs().len(), 4);
        let starts: Vec<_> = table.jobs_on(PeId(0)).map(|j| j.start).collect();
        assert_eq!(starts, vec![t(0), t(50), t(100), t(150)]);
        table
            .validate(&arch, &[(AppId(0), &app, &mapping)])
            .unwrap();
    }

    #[test]
    fn horizon_must_cover_periods() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        assert!(matches!(
            schedule(&arch, &[spec], None, t(150)),
            Err(SchedError::BadHorizon { .. })
        ));
        assert!(matches!(
            schedule(&arch, &[spec], None, Time::ZERO),
            Err(SchedError::BadHorizon { .. })
        ));
    }

    #[test]
    fn incomplete_mapping_rejected() {
        let arch = arch2();
        let (app, _) = chain_app();
        let empty = Mapping::new();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &empty, &hints);
        assert!(matches!(
            schedule(&arch, &[spec], None, t(100)),
            Err(SchedError::MappingIncomplete { .. })
        ));
    }

    #[test]
    fn disallowed_pe_rejected() {
        let arch = arch2();
        let (app, _) = chain_app();
        let mut bad = Mapping::new();
        bad.assign(ProcRef::new(0, NodeId(0)), PeId(1)); // a not allowed on pe1
        bad.assign(ProcRef::new(0, NodeId(1)), PeId(1));
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &bad, &hints);
        assert!(matches!(
            schedule(&arch, &[spec], None, t(100)),
            Err(SchedError::NotAllowed { pe: PeId(1), .. })
        ));
    }

    #[test]
    fn deadline_miss_detected() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(5));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(10)));
        let app = Application::new("app", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let err = schedule(&arch, &[spec], None, t(100)).unwrap_err();
        assert!(matches!(err, SchedError::DeadlineMiss { .. }));
        assert!(err.is_infeasible());
    }

    #[test]
    fn overload_reports_no_gap() {
        let arch = arch2();
        // Two processes of 60 ticks each on one PE, period 100: cannot fit.
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(60)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(60)));
        let _ = (a, b);
        let app = Application::new("app", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        mapping.assign(ProcRef::new(0, NodeId(1)), PeId(0));
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let err = schedule(&arch, &[spec], None, t(100)).unwrap_err();
        // Second process does not fit before the horizon → NoGap (the
        // deadline would also be missed, but the gap search fails first
        // since horizon == deadline here).
        assert!(err.is_infeasible());
    }

    #[test]
    fn frozen_jobs_block_their_intervals() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = schedule(&arch, &[spec], None, t(100)).unwrap();

        // Schedule a second app with the first frozen.
        let (app2, mapping2) = chain_app();
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping2, &hints);
        let table = schedule(&arch, &[spec2], Some(&first), t(100)).unwrap();
        // Frozen jobs still present and unmoved.
        let a0 = table.job(JobId::new(AppId(0), 0, 0, NodeId(0))).unwrap();
        assert_eq!(a0.start, t(0));
        // New app's first process starts after the frozen one on PE0.
        let a1 = table.job(JobId::new(AppId(1), 0, 0, NodeId(0))).unwrap();
        assert_eq!(a1.start, t(8));
        table
            .validate(
                &arch,
                &[(AppId(0), &app, &mapping), (AppId(1), &app2, &mapping2)],
            )
            .unwrap();
    }

    #[test]
    fn frozen_horizon_mismatch_rejected() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = schedule(&arch, &[spec], None, t(100)).unwrap();
        let (app2, mapping2) = chain_app();
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping2, &hints);
        assert_eq!(
            schedule(&arch, &[spec2], Some(&first), t(200)).unwrap_err(),
            SchedError::FrozenConflict
        );
    }

    #[test]
    fn gap_hint_moves_process() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(10)));
        let app = Application::new("app", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));

        // Frozen interval [20,30) splits PE0's timeline into two gaps.
        let frozen_app = {
            let mut fg = ProcessGraph::new("fz", t(100), t(100));
            fg.add_process(Process::new("f").wcet(PeId(0), t(10)));
            Application::new("frozen", vec![fg])
        };
        let mut fmap = Mapping::new();
        fmap.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let mut fh = Hints::empty();
        fh.set_proc_gap(ProcRef::new(0, NodeId(0)), 0);
        // Build the frozen table by scheduling it at a shifted position:
        // place via hint on empty timeline → starts at 0; instead reserve
        // manually through a schedule with ready offset is not available,
        // so freeze a table scheduled normally and then test the hint on
        // the second app.
        let fspec = AppSpec::new(AppId(0), &frozen_app, &fmap, &fh);
        let frozen = schedule(&arch, &[fspec], None, t(100)).unwrap();

        // Without hint: lands right after the frozen job? Frozen job is at
        // [0,10) so the new one starts at 10.
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);
        let t0 = schedule(&arch, &[spec], Some(&frozen), t(100)).unwrap();
        assert_eq!(t0.job(JobId::new(AppId(1), 0, 0, a)).unwrap().start, t(10));

        // With hint 1: skip the feasible gap [10,100) → no further gap →
        // infeasible; so instead test on a timeline with two gaps by
        // hinting 0 vs observing deterministic placement.
        let mut h1 = Hints::empty();
        h1.set_proc_gap(ProcRef::new(0, a), 1);
        let spec1 = AppSpec::new(AppId(1), &app, &mapping, &h1);
        let err = schedule(&arch, &[spec1], Some(&frozen), t(100)).unwrap_err();
        assert!(matches!(err, SchedError::NoGap { .. }));
    }

    #[test]
    fn msg_slot_hint_delays_message() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let mut hints = Hints::empty();
        hints.set_msg_slot(MsgRef::new(0, incdes_graph::EdgeId(0)), 1);
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let table = schedule(&arch, &[spec], None, t(100)).unwrap();
        let m = &table.messages()[0];
        // Without hint it rides the slot at 20; with skip 1 → slot at 40.
        assert_eq!(m.reservation.transmit_start, t(40));
        let b = table.job(JobId::new(AppId(0), 0, 0, NodeId(1))).unwrap();
        assert_eq!(b.start, t(44));
        table
            .validate(&arch, &[(AppId(0), &app, &mapping)])
            .unwrap();
    }

    #[test]
    fn priority_orders_critical_branch_first() {
        let arch = arch2();
        // root → long(50) and root → short(5), all on PE0: the long branch
        // should be scheduled right after root.
        let mut g = ProcessGraph::new("g", t(200), t(200));
        let root = g.add_process(Process::new("r").wcet(PeId(0), t(2)));
        let long = g.add_process(Process::new("l").wcet(PeId(0), t(50)));
        let short = g.add_process(Process::new("s").wcet(PeId(0), t(5)));
        g.add_message(root, long, Message::new("m1", 1)).unwrap();
        g.add_message(root, short, Message::new("m2", 1)).unwrap();
        let app = Application::new("app", vec![g]);
        let mapping: Mapping = [
            (ProcRef::new(0, root), PeId(0)),
            (ProcRef::new(0, long), PeId(0)),
            (ProcRef::new(0, short), PeId(0)),
        ]
        .into_iter()
        .collect();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let table = schedule(&arch, &[spec], None, t(200)).unwrap();
        let l = table.job(JobId::new(AppId(0), 0, 0, long)).unwrap();
        let s = table.job(JobId::new(AppId(0), 0, 0, short)).unwrap();
        assert!(l.start < s.start, "critical branch must go first");
        table
            .validate(&arch, &[(AppId(0), &app, &mapping)])
            .unwrap();
    }

    #[test]
    fn two_apps_scheduled_together_validate() {
        let arch = arch2();
        let (app_a, map_a) = chain_app();
        let (app_b, map_b) = chain_app();
        let hints = Hints::empty();
        let specs = [
            AppSpec::new(AppId(0), &app_a, &map_a, &hints),
            AppSpec::new(AppId(1), &app_b, &map_b, &hints),
        ];
        let table = schedule(&arch, &specs, None, t(100)).unwrap();
        assert_eq!(table.jobs().len(), 4);
        assert_eq!(table.messages().len(), 2);
        table
            .validate(
                &arch,
                &[(AppId(0), &app_a, &map_a), (AppId(1), &app_b, &map_b)],
            )
            .unwrap();
    }
}
