//! Partial-critical-path priorities.
//!
//! The list scheduler picks, among ready jobs, the one with the longest
//! remaining path to a sink of its process graph — execution times plus
//! estimated communication delays. This is the priority function of the
//! Heterogeneous Critical Path algorithm (Jorgensen & Madsen, CODES'97)
//! that the paper's initial mapping builds on.

use incdes_graph::algo;
use incdes_model::{Application, Architecture, PeId, ProcessGraph, Time};

/// Communication-cost estimate for priority purposes: transmission time
/// plus half a bus cycle of expected slot wait. Used before (or instead
/// of) exact knowledge of slot timing.
pub fn estimated_comm_cost(arch: &Architecture, bytes: u32) -> Time {
    let tx = arch.bus().transmission_time(bytes);
    tx + arch.bus().cycle_length() / 2
}

/// The exact cost inputs of [`partial_critical_path`]: per-node costs
/// plus per-edge `(source, target, cost)` triples, in id order. The
/// priorities are a pure function of these values, so equality of two
/// `PriorityCosts` implies equality of the resulting priorities — which
/// is what makes this a *sound* cache key for the evaluation engine's
/// per-graph priority cache (an assignment vector alone would alias
/// graphs with different WCETs, topology or message sizes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriorityCosts {
    nodes: Vec<u64>,
    edges: Vec<(u32, u32, u64)>,
}

impl PriorityCosts {
    /// An empty cost vector (fill it with [`PriorityCosts::fill`]).
    pub fn new() -> Self {
        PriorityCosts::default()
    }

    /// Derives the cost inputs of `graph` under `assigned` (indexed by
    /// node), reusing this value's allocations.
    ///
    /// * Node cost: WCET on the assigned PE when present, otherwise the
    ///   mean WCET over allowed PEs.
    /// * Edge cost: zero if both endpoints are assigned to the same PE,
    ///   otherwise [`estimated_comm_cost`].
    pub fn fill(&mut self, arch: &Architecture, graph: &ProcessGraph, assigned: &[Option<PeId>]) {
        let dag = graph.dag();
        self.nodes.clear();
        self.edges.clear();
        for n in dag.node_ids() {
            let p = graph.process(n);
            self.nodes
                .push(match assigned[n.index()].and_then(|pe| p.wcets.get(pe)) {
                    Some(w) => w.ticks(),
                    None => p.wcets.average().unwrap_or(Time::ZERO).ticks(),
                });
        }
        for e in dag.edge_ids() {
            let (s, t) = dag.endpoints(e);
            let cost = match (assigned[s.index()], assigned[t.index()]) {
                (Some(a), Some(b)) if a == b => 0,
                _ => estimated_comm_cost(arch, graph.message(e).bytes).ticks(),
            };
            self.edges.push((s.index() as u32, t.index() as u32, cost));
        }
    }

    /// The partial-critical-path priorities under these costs.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic (validated applications never are)
    /// or if the costs were filled for a different graph.
    pub fn priorities(&self, graph: &ProcessGraph) -> Vec<Time> {
        let dag = graph.dag();
        assert_eq!(self.nodes.len(), graph.process_count(), "costs match graph");
        let dist = algo::longest_path_to_sink(
            dag,
            |n: incdes_graph::NodeId| self.nodes[n.index()],
            |e: incdes_graph::EdgeId| self.edges[e.index()].2,
        )
        .expect("process graphs are validated acyclic");
        dist.into_iter().map(Time::new).collect()
    }
}

/// Partial-critical-path priority of every node of `graph`, given an
/// (optional) mapping of nodes to PEs.
///
/// * Node cost: WCET on the mapped PE when `pe_of` returns one, otherwise
///   the mean WCET over allowed PEs.
/// * Edge cost: zero if both endpoints are mapped to the same PE,
///   otherwise [`estimated_comm_cost`].
///
/// # Panics
///
/// Panics if the graph is cyclic (validated applications never are).
pub fn partial_critical_path(
    arch: &Architecture,
    graph: &ProcessGraph,
    mut pe_of: impl FnMut(incdes_graph::NodeId) -> Option<PeId>,
) -> Vec<Time> {
    let assigned: Vec<Option<PeId>> = graph.dag().node_ids().map(&mut pe_of).collect();
    let mut costs = PriorityCosts::new();
    costs.fill(arch, graph, &assigned);
    costs.priorities(graph)
}

/// Partial-critical-path priorities for every graph of an application,
/// with no mapping knowledge (mean WCETs, estimated comm everywhere).
/// Indexed as `result[graph][node.index()]`.
pub fn app_priorities(arch: &Architecture, app: &Application) -> Vec<Vec<Time>> {
    app.graphs
        .iter()
        .map(|g| partial_critical_path(arch, g, |_| None))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::{Application, BusConfig, Message, Process, ProcessGraph};

    fn arch() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, Time::new(10), 1).unwrap())
            .build()
            .unwrap()
    }

    /// a --m(4B)--> b, WCETs a: {pe0: 10, pe1: 20}, b: {pe1: 6}.
    fn chain() -> ProcessGraph {
        let mut g = ProcessGraph::new("g", Time::new(200), Time::new(200));
        let a = g.add_process(
            Process::new("a")
                .wcet(PeId(0), Time::new(10))
                .wcet(PeId(1), Time::new(20)),
        );
        let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        g
    }

    #[test]
    fn estimated_comm_includes_half_cycle() {
        let a = arch();
        // tx(4B at 1B/tick) = 4, cycle 20 → 4 + 10 = 14.
        assert_eq!(estimated_comm_cost(&a, 4), Time::new(14));
    }

    #[test]
    fn unmapped_uses_mean_wcet_and_estimated_comm() {
        let a = arch();
        let g = chain();
        let p = partial_critical_path(&a, &g, |_| None);
        // b: 6. a: mean(10,20)=15 + comm 14 + 6 = 35.
        assert_eq!(p[1], Time::new(6));
        assert_eq!(p[0], Time::new(35));
    }

    #[test]
    fn same_pe_mapping_zeroes_comm() {
        let a = arch();
        let g = chain();
        let p = partial_critical_path(&a, &g, |_| Some(PeId(1)));
        // Both on pe1: a = 20 + 0 + 6 = 26.
        assert_eq!(p[0], Time::new(26));
    }

    #[test]
    fn cross_pe_mapping_uses_exact_wcets() {
        let a = arch();
        let g = chain();
        let p = partial_critical_path(&a, &g, |n| {
            Some(if n.index() == 0 { PeId(0) } else { PeId(1) })
        });
        // a on pe0 (10) + comm 14 + b 6 = 30.
        assert_eq!(p[0], Time::new(30));
    }

    #[test]
    fn app_priorities_shape() {
        let a = arch();
        let app = Application::new("app", vec![chain(), chain()]);
        let pr = app_priorities(&a, &app);
        assert_eq!(pr.len(), 2);
        assert_eq!(pr[0].len(), 2);
        assert_eq!(pr[0], pr[1]);
    }

    #[test]
    fn parallel_branches_prefer_long_one() {
        let a = arch();
        let mut g = ProcessGraph::new("g", Time::new(200), Time::new(200));
        let root = g.add_process(Process::new("r").wcet(PeId(0), Time::new(2)));
        let long = g.add_process(Process::new("long").wcet(PeId(0), Time::new(50)));
        let short = g.add_process(Process::new("short").wcet(PeId(0), Time::new(5)));
        g.add_message(root, long, Message::new("m1", 2)).unwrap();
        g.add_message(root, short, Message::new("m2", 2)).unwrap();
        let p = partial_critical_path(&a, &g, |_| Some(PeId(0)));
        assert!(p[long.index()] > p[short.index()]);
        assert_eq!(p[root.index()], Time::new(52));
    }
}
