//! Hyperperiod job expansion.
//!
//! A static cyclic schedule covers the hyperperiod `H` (the LCM of all
//! graph periods). Each process graph with period `T` is released `H/T`
//! times; the `k`-th release (instance) of a node is one *job*, released
//! at `k·T` with absolute deadline `k·T + D`.

use incdes_graph::NodeId;
use incdes_model::{AppId, Application, ProcRef, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One job: a specific instance of a process within the hyperperiod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId {
    /// Owning application.
    pub app: AppId,
    /// Process graph index within the application.
    pub graph: usize,
    /// Instance (release) number within the hyperperiod.
    pub instance: u32,
    /// Node within the graph.
    pub node: NodeId,
}

impl JobId {
    /// Creates a job id.
    pub fn new(app: AppId, graph: usize, instance: u32, node: NodeId) -> Self {
        JobId {
            app,
            graph,
            instance,
            node,
        }
    }

    /// The process this job is an instance of.
    pub fn proc_ref(&self) -> ProcRef {
        ProcRef::new(self.graph, self.node)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/g{}#{}/{}",
            self.app, self.graph, self.instance, self.node
        )
    }
}

/// Release/deadline window of one graph instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceWindow {
    /// Instance number.
    pub instance: u32,
    /// Absolute release time.
    pub release: Time,
    /// Absolute deadline.
    pub deadline: Time,
}

/// Enumerates the instance windows of a graph with the given period and
/// deadline over `[0, horizon)`.
///
/// # Panics
///
/// Panics if `period` is zero (validated applications never are) or
/// `horizon` is not a multiple of `period` (the caller computes the
/// horizon as an LCM of periods, so this indicates a logic error).
pub fn instance_windows(period: Time, deadline: Time, horizon: Time) -> Vec<InstanceWindow> {
    assert!(!period.is_zero(), "period must be positive");
    assert!(
        (horizon % period).is_zero(),
        "horizon {horizon} is not a multiple of period {period}"
    );
    let count = horizon.ticks() / period.ticks();
    (0..count)
        .map(|k| InstanceWindow {
            instance: k as u32,
            release: Time::new(k * period.ticks()),
            deadline: Time::new(k * period.ticks()) + deadline,
        })
        .collect()
}

/// Total number of jobs application `app` contributes over `horizon`.
pub fn job_count(app: &Application, horizon: Time) -> u64 {
    app.graphs
        .iter()
        .map(|g| (horizon.ticks() / g.period.ticks().max(1)) * g.process_count() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::{PeId, Process, ProcessGraph};

    #[test]
    fn windows_over_hyperperiod() {
        let w = instance_windows(Time::new(50), Time::new(40), Time::new(150));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].release, Time::ZERO);
        assert_eq!(w[0].deadline, Time::new(40));
        assert_eq!(w[2].release, Time::new(100));
        assert_eq!(w[2].deadline, Time::new(140));
        assert_eq!(w[2].instance, 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn non_multiple_horizon_panics() {
        instance_windows(Time::new(50), Time::new(50), Time::new(120));
    }

    #[test]
    fn job_count_sums_graphs() {
        let mut g1 = ProcessGraph::new("g1", Time::new(50), Time::new(50));
        g1.add_process(Process::new("a").wcet(PeId(0), Time::new(1)));
        g1.add_process(Process::new("b").wcet(PeId(0), Time::new(1)));
        let mut g2 = ProcessGraph::new("g2", Time::new(100), Time::new(100));
        g2.add_process(Process::new("c").wcet(PeId(0), Time::new(1)));
        let app = Application::new("app", vec![g1, g2]);
        // H=100: g1 has 2 instances × 2 processes, g2 1 × 1.
        assert_eq!(job_count(&app, Time::new(100)), 5);
    }

    #[test]
    fn job_id_accessors() {
        let j = JobId::new(AppId(1), 2, 3, NodeId(4));
        assert_eq!(j.proc_ref(), ProcRef::new(2, NodeId(4)));
        assert_eq!(j.to_string(), "app1/g2#3/n4");
    }
}
