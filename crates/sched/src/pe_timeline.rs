//! Busy/gap interval bookkeeping for one processing element.
//!
//! The scheduler treats each PE as a timeline of half-open busy intervals
//! within `[0, horizon)`. Existing (frozen) applications appear as
//! pre-reserved intervals; the list scheduler fills the remaining gaps.
//!
//! # Data layout
//!
//! The timeline is stored in two layers:
//!
//! * `base` — the *consolidated* layer: a sorted `Vec` of disjoint
//!   intervals. For the evaluation engine's scratch timelines this is
//!   the frozen base occupancy restored by [`PeTimeline::copy_from`];
//!   it is never shifted by per-reservation edits.
//! * `over` — the *overlay*: the reservations made since the last
//!   consolidation, also sorted and disjoint (and disjoint from
//!   `base`), but small — bounded by [`CONSOLIDATE_AT`] plus one run's
//!   placements on this PE.
//!
//! The delta-scheduling engine's splice inner loop only ever inserts
//! the current candidate's placements and undoes recorded suffixes of
//! them: with this split, every such insert/remove shifts only the
//! overlay, so its cost is bounded by the *current application's*
//! per-PE placement count instead of the total reservation count
//! (frozen jobs included) that the old single sorted-`Vec` layout
//! shifted on every edit. Reads (gap search, gap enumeration, window
//! overlap) run a two-pointer merge of the layers; both are contiguous
//! in memory. When the overlay outgrows [`CONSOLIDATE_AT`] (bulk
//! from-scratch schedules, e.g. the naive pipeline), it is merged into
//! the base in one linear pass, keeping insert cost amortized.

use incdes_model::Time;
use incdes_obs::counters::{self, Counter};
use std::fmt;
use std::sync::Arc;

/// Overlay length that triggers a merge into the consolidated base.
/// One evaluation places roughly (current jobs × instances) / PE-count
/// reservations per PE — comfortably below this — so delta evaluation
/// chains never consolidate mid-run; only bulk from-scratch schedules
/// (bakes, the naive pipeline) do, amortizing their insert cost.
const CONSOLIDATE_AT: usize = 64;

/// Error from timeline operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeTimelineError {
    /// The requested interval overlaps an existing reservation.
    Overlap {
        /// Requested start.
        start: Time,
        /// Requested end.
        end: Time,
    },
    /// The interval is empty or extends beyond the horizon.
    OutOfRange {
        /// Requested start.
        start: Time,
        /// Requested end.
        end: Time,
    },
    /// No gap fits the request before the horizon.
    NoGap {
        /// Earliest allowed start.
        ready: Time,
        /// Required duration.
        duration: Time,
        /// Number of feasible gaps skipped by hint before giving up.
        skipped: u32,
    },
}

impl fmt::Display for PeTimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeTimelineError::Overlap { start, end } => {
                write!(
                    f,
                    "interval [{start}, {end}) overlaps an existing reservation"
                )
            }
            PeTimelineError::OutOfRange { start, end } => {
                write!(
                    f,
                    "interval [{start}, {end}) is empty or beyond the horizon"
                )
            }
            PeTimelineError::NoGap {
                ready,
                duration,
                skipped,
            } => write!(
                f,
                "no gap of {duration} from {ready} (after skipping {skipped}) before the horizon"
            ),
        }
    }
}

impl std::error::Error for PeTimelineError {}

/// The timeline of one PE: disjoint busy intervals in `[0, horizon)`,
/// stored as a consolidated base layer plus a small overlay (see the
/// module docs). Equality is by *content* — two timelines holding the
/// same intervals compare equal regardless of how the layers split
/// them.
#[derive(Debug, Clone)]
pub struct PeTimeline {
    horizon: Time,
    /// Consolidated layer: sorted by start, disjoint. Shared (`Arc`)
    /// because the engine's scratch timelines restore it from the
    /// frozen base on every reset: with the base layer behind an `Arc`,
    /// [`copy_from`](Self::copy_from) is a pointer bump instead of an
    /// O(frozen jobs) memcpy. All per-reservation edits go to the
    /// overlay; the rare paths that do rewrite the consolidated layer
    /// replace the whole `Arc` (consolidation) or clone-on-write (the
    /// cold `unreserve` fallback).
    base: Arc<Vec<(Time, Time)>>,
    /// Overlay: sorted by start, disjoint, disjoint from `base`, small.
    over: Vec<(Time, Time)>,
}

impl PartialEq for PeTimeline {
    fn eq(&self, other: &Self) -> bool {
        self.horizon == other.horizon && self.intervals().eq(other.intervals())
    }
}

impl Eq for PeTimeline {}

/// Two-pointer merge cursor over the (sorted, mutually disjoint)
/// layers. Disjointness makes starts unique, so min-by-start is a
/// total order.
#[derive(Clone, Copy)]
struct Cursor<'a> {
    a: &'a [(Time, Time)],
    b: &'a [(Time, Time)],
    i: usize,
    j: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<(Time, Time)> {
        match (self.a.get(self.i), self.b.get(self.j)) {
            (Some(&x), Some(&y)) => Some(if x.0 < y.0 { x } else { y }),
            (Some(&x), None) => Some(x),
            (None, Some(&y)) => Some(y),
            (None, None) => None,
        }
    }

    fn advance(&mut self) {
        match (self.a.get(self.i), self.b.get(self.j)) {
            (Some(&x), Some(&y)) => {
                if x.0 < y.0 {
                    self.i += 1;
                } else {
                    self.j += 1;
                }
            }
            (Some(_), None) => self.i += 1,
            (None, Some(_)) => self.j += 1,
            (None, None) => {}
        }
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = (Time, Time);

    fn next(&mut self) -> Option<(Time, Time)> {
        let cur = self.peek()?;
        self.advance();
        Some(cur)
    }
}

impl PeTimeline {
    /// An empty timeline over `[0, horizon)`.
    pub fn new(horizon: Time) -> Self {
        PeTimeline {
            horizon,
            base: Arc::new(Vec::new()),
            over: Vec::new(),
        }
    }

    /// The horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Number of reservations.
    pub fn reservation_count(&self) -> usize {
        self.base.len() + self.over.len()
    }

    /// Total busy time.
    pub fn busy_time(&self) -> Time {
        self.base
            .iter()
            .chain(&self.over)
            .map(|&(s, e)| e - s)
            .sum()
    }

    /// Total free time.
    pub fn free_time(&self) -> Time {
        self.horizon - self.busy_time()
    }

    /// Merge cursor positioned at the first interval (in start order)
    /// whose end is after `ready`. Both layers have sorted ends (their
    /// intervals are disjoint and start-sorted), so each can be
    /// positioned by binary search independently.
    fn cursor_from(&self, ready: Time) -> Cursor<'_> {
        Cursor {
            a: &self.base[..],
            b: &self.over,
            i: self.base.partition_point(|&(_, e)| e <= ready),
            j: self.over.partition_point(|&(_, e)| e <= ready),
        }
    }

    /// All busy intervals in time order.
    pub fn intervals(&self) -> impl Iterator<Item = (Time, Time)> + '_ {
        Cursor {
            a: &self.base[..],
            b: &self.over,
            i: 0,
            j: 0,
        }
    }

    /// Reserves the exact interval `[start, end)`.
    ///
    /// # Errors
    ///
    /// [`PeTimelineError::OutOfRange`] if empty or beyond the horizon,
    /// [`PeTimelineError::Overlap`] if it intersects a reservation.
    pub fn reserve(&mut self, start: Time, end: Time) -> Result<(), PeTimelineError> {
        if start >= end || end > self.horizon {
            return Err(PeTimelineError::OutOfRange { start, end });
        }
        let bi = self.base.partition_point(|&(s, _)| s < start);
        if bi > 0 && self.base[bi - 1].1 > start {
            return Err(PeTimelineError::Overlap { start, end });
        }
        if bi < self.base.len() && self.base[bi].0 < end {
            return Err(PeTimelineError::Overlap { start, end });
        }
        let oi = self.over.partition_point(|&(s, _)| s < start);
        if oi > 0 && self.over[oi - 1].1 > start {
            return Err(PeTimelineError::Overlap { start, end });
        }
        if oi < self.over.len() && self.over[oi].0 < end {
            return Err(PeTimelineError::Overlap { start, end });
        }
        self.over.insert(oi, (start, end));
        if self.over.len() >= CONSOLIDATE_AT {
            self.consolidate();
        }
        Ok(())
    }

    /// Finds and reserves the earliest start ≥ `ready` of a block of
    /// `duration`, after skipping the first `skip` feasible gaps (the
    /// paper's "move to a different slack" hint). Within the chosen gap
    /// the block is placed as early as possible.
    ///
    /// Returns the start time of the reservation.
    ///
    /// # Errors
    ///
    /// [`PeTimelineError::NoGap`] if nothing fits before the horizon, and
    /// [`PeTimelineError::OutOfRange`] if `duration` is zero.
    pub fn reserve_earliest(
        &mut self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<Time, PeTimelineError> {
        let start = self.find_earliest(ready, duration, skip)?;
        let oi = self.over.partition_point(|&(s, _)| s < start);
        self.over.insert(oi, (start, start + duration));
        if self.over.len() >= CONSOLIDATE_AT {
            self.consolidate();
        }
        Ok(start)
    }

    /// Non-mutating version of [`reserve_earliest`](Self::reserve_earliest):
    /// where *would* the block be placed?
    ///
    /// # Errors
    ///
    /// As [`reserve_earliest`](Self::reserve_earliest).
    pub fn peek_earliest(
        &self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<Time, PeTimelineError> {
        self.find_earliest(ready, duration, skip)
    }

    /// Shared gap search over the merged layers.
    fn find_earliest(
        &self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<Time, PeTimelineError> {
        if duration.is_zero() {
            return Err(PeTimelineError::OutOfRange {
                start: ready,
                end: ready,
            });
        }
        let mut remaining = skip;
        let mut cursor = ready;
        let mut merged = self.cursor_from(ready);
        loop {
            let next = merged.peek();
            let gap_end = next.map_or(self.horizon, |(s, _)| s);
            if cursor + duration <= gap_end {
                if remaining == 0 {
                    return Ok(cursor);
                }
                remaining -= 1;
            }
            let Some((_, e)) = next else {
                return Err(PeTimelineError::NoGap {
                    ready,
                    duration,
                    skipped: skip - remaining,
                });
            };
            cursor = cursor.max(e);
            merged.advance();
        }
    }

    /// The free gaps `(start, end)` in time order, as an iterator over
    /// the merged layers — no allocation. The hot paths (slack
    /// materialization, base bakes) collect this straight into their
    /// shared storage.
    pub fn gap_iter(&self) -> impl Iterator<Item = (Time, Time)> + '_ {
        let mut merged = self.intervals();
        let mut cursor = Time::ZERO;
        let horizon = self.horizon;
        let mut done = false;
        std::iter::from_fn(move || {
            while !done {
                match merged.next() {
                    Some((s, e)) => {
                        let gap = (cursor < s).then_some((cursor, s));
                        cursor = cursor.max(e);
                        if gap.is_some() {
                            return gap;
                        }
                    }
                    None => {
                        done = true;
                        if cursor < horizon {
                            return Some((cursor, horizon));
                        }
                    }
                }
            }
            None
        })
    }

    /// Writes the free gaps into `out` (cleared first), reusing its
    /// allocation.
    pub fn gaps_into(&self, out: &mut Vec<(Time, Time)>) {
        out.clear();
        out.extend(self.gap_iter());
    }

    /// The free gaps `(start, end)` in time order, freshly allocated.
    /// Compat/cold-path convenience — counted by the `fresh_gap_lists`
    /// probe so hot paths that should use [`gap_iter`](Self::gap_iter)
    /// or [`gaps_into`](Self::gaps_into) show up in diagnostics.
    pub fn gaps(&self) -> Vec<(Time, Time)> {
        counters::bump(Counter::FreshGapLists);
        self.gap_iter().collect()
    }

    /// Free time inside the window `[from, to)`.
    pub fn free_time_in(&self, from: Time, to: Time) -> Time {
        let to = to.min(self.horizon);
        if from >= to {
            return Time::ZERO;
        }
        let mut busy_in = Time::ZERO;
        for (s, e) in self.intervals() {
            if s >= to {
                break;
            }
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                busy_in += hi - lo;
            }
        }
        (to - from) - busy_in
    }

    /// The busy intervals in time order, freshly collected.
    pub fn busy_intervals(&self) -> Vec<(Time, Time)> {
        self.intervals().collect()
    }

    /// Merges the overlay into the consolidated base layer (one linear
    /// pass). The bake path calls this after replaying a frozen
    /// schedule so every scratch timeline restored by
    /// [`copy_from`](Self::copy_from) starts with an empty overlay.
    pub fn consolidate(&mut self) {
        if self.over.is_empty() {
            return;
        }
        counters::bump(Counter::TimelineConsolidations);
        let mut merged = Vec::with_capacity(self.base.len() + self.over.len());
        merged.extend(Cursor {
            a: &self.base[..],
            b: &self.over,
            i: 0,
            j: 0,
        });
        self.base = Arc::new(merged);
        self.over.clear();
    }

    /// Resets this timeline to an exact copy of `other`. The evaluation
    /// engine calls this once per schedule to restore the baked frozen
    /// occupancy: when the source is consolidated (baked bases always
    /// are), the reset aliases the shared base layer instead of copying
    /// it. The restored overlay starts empty, so every subsequent
    /// per-reservation edit shifts only the overlay.
    pub fn copy_from(&mut self, other: &PeTimeline) {
        self.horizon = other.horizon;
        if other.over.is_empty() {
            // The hot path: baked bases are consolidated, so the reset
            // is a shared alias of the source's base layer — no copy.
            self.base = Arc::clone(&other.base);
        } else {
            self.base = Arc::new(other.intervals().collect());
        }
        self.over.clear();
    }

    /// Removes the exact reservation `[start, end)`. The delta-scheduling
    /// engine uses this to *undo* the previous evaluation's placements
    /// instead of resetting the whole timeline from the frozen base;
    /// those placements live in the overlay, so the removal never
    /// shifts the consolidated base layer.
    ///
    /// # Panics
    ///
    /// Panics if `[start, end)` is not a reservation of this timeline —
    /// the engine only ever undoes reservations it recorded, so a miss is
    /// a bookkeeping bug, not a recoverable condition.
    pub fn unreserve(&mut self, start: Time, end: Time) {
        let oi = self.over.partition_point(|&(s, _)| s < start);
        if oi < self.over.len() && self.over[oi] == (start, end) {
            self.over.remove(oi);
            return;
        }
        // Cold fallback: a reservation consolidated into the base (or
        // made before a consolidation). Correct for any caller, just
        // not on the splice undo path. Clone-on-write: a shared base
        // layer (aliased from a frozen bake) is copied before the
        // removal so the source stays intact.
        let bi = self.base.partition_point(|&(s, _)| s < start);
        assert!(
            bi < self.base.len() && self.base[bi] == (start, end),
            "unreserve of [{start}, {end}) which is not reserved"
        );
        Arc::make_mut(&mut self.base).remove(bi);
    }

    /// Layer occupancy `(base, overlay)` — diagnostics for the
    /// splice-depth regression tests.
    #[doc(hidden)]
    pub fn layer_lens(&self) -> (usize, usize) {
        (self.base.len(), self.over.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    #[test]
    fn reserve_exact_ok_and_overlap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(20), t(30)).unwrap(); // adjacent is fine
        tl.reserve(t(0), t(10)).unwrap();
        assert_eq!(tl.reservation_count(), 3);
        assert!(matches!(
            tl.reserve(t(15), t(25)),
            Err(PeTimelineError::Overlap { .. })
        ));
        assert!(matches!(
            tl.reserve(t(5), t(12)),
            Err(PeTimelineError::Overlap { .. })
        ));
        assert!(matches!(
            tl.reserve(t(29), t(31)),
            Err(PeTimelineError::Overlap { .. })
        ));
    }

    #[test]
    fn reserve_out_of_range() {
        let mut tl = PeTimeline::new(t(50));
        assert!(matches!(
            tl.reserve(t(40), t(60)),
            Err(PeTimelineError::OutOfRange { .. })
        ));
        assert!(matches!(
            tl.reserve(t(10), t(10)),
            Err(PeTimelineError::OutOfRange { .. })
        ));
    }

    #[test]
    fn earliest_in_empty_timeline() {
        let mut tl = PeTimeline::new(t(100));
        let s = tl.reserve_earliest(t(5), t(10), 0).unwrap();
        assert_eq!(s, t(5));
        assert_eq!(tl.busy_time(), t(10));
    }

    #[test]
    fn earliest_fills_gap_between_reservations() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(0), t(10)).unwrap();
        tl.reserve(t(30), t(40)).unwrap();
        let s = tl.reserve_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(s, t(10)); // gap [10,30) fits 15
        let s2 = tl.reserve_earliest(t(0), t(6), 0).unwrap();
        assert_eq!(s2, t(40)); // [25,30) too small now → after 40
    }

    #[test]
    fn earliest_respects_ready_inside_gap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(0), t(10)).unwrap();
        let s = tl.reserve_earliest(t(17), t(5), 0).unwrap();
        assert_eq!(s, t(17));
    }

    #[test]
    fn skip_hint_picks_later_gap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(30), t(40)).unwrap();
        // Feasible gaps for 5 ticks from 0: [0,10), [20,30), [40,100).
        let s = tl.reserve_earliest(t(0), t(5), 1).unwrap();
        assert_eq!(s, t(20));
        let s2 = tl.reserve_earliest(t(0), t(5), 1).unwrap();
        // Gaps now: [0,10), [25,30), [40,100) → skip 1 → [25,30).
        assert_eq!(s2, t(25));
    }

    #[test]
    fn skip_beyond_last_gap_fails() {
        let mut tl = PeTimeline::new(t(50));
        let err = tl.reserve_earliest(t(0), t(5), 10).unwrap_err();
        assert!(matches!(err, PeTimelineError::NoGap { skipped: 1, .. }));
    }

    #[test]
    fn no_gap_when_full() {
        let mut tl = PeTimeline::new(t(20));
        tl.reserve(t(0), t(20)).unwrap();
        assert!(matches!(
            tl.reserve_earliest(t(0), t(1), 0),
            Err(PeTimelineError::NoGap { .. })
        ));
    }

    #[test]
    fn zero_duration_rejected() {
        let mut tl = PeTimeline::new(t(20));
        assert!(matches!(
            tl.reserve_earliest(t(0), t(0), 0),
            Err(PeTimelineError::OutOfRange { .. })
        ));
    }

    #[test]
    fn gaps_enumeration() {
        let mut tl = PeTimeline::new(t(100));
        assert_eq!(tl.gaps(), vec![(t(0), t(100))]);
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(20), t(30)).unwrap();
        tl.reserve(t(90), t(100)).unwrap();
        assert_eq!(tl.gaps(), vec![(t(0), t(10)), (t(30), t(90))]);
        assert_eq!(tl.free_time(), t(70));
        let mut buf = vec![(t(9), t(9))];
        tl.gaps_into(&mut buf);
        assert_eq!(buf, vec![(t(0), t(10)), (t(30), t(90))]);
    }

    #[test]
    fn free_time_in_windows() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(30)).unwrap();
        assert_eq!(tl.free_time_in(t(0), t(40)), t(20));
        assert_eq!(tl.free_time_in(t(10), t(30)), t(0));
        assert_eq!(tl.free_time_in(t(20), t(50)), t(20));
        assert_eq!(tl.free_time_in(t(50), t(50)), t(0));
        // Clamped to horizon.
        assert_eq!(tl.free_time_in(t(90), t(200)), t(10));
    }

    #[test]
    fn peek_matches_reserve_and_does_not_mutate() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        let before = tl.clone();
        let peeked = tl.peek_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(tl, before, "peek must not mutate");
        let reserved = tl.reserve_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(peeked, reserved);
        assert_eq!(reserved, t(20));
    }

    #[test]
    fn equality_ignores_layer_split() {
        let mut consolidated = PeTimeline::new(t(100));
        consolidated.reserve(t(10), t(20)).unwrap();
        consolidated.reserve(t(40), t(50)).unwrap();
        consolidated.consolidate();
        let mut layered = PeTimeline::new(t(100));
        layered.reserve(t(40), t(50)).unwrap();
        layered.reserve(t(10), t(20)).unwrap();
        assert_eq!(consolidated.layer_lens(), (2, 0));
        assert_eq!(layered.layer_lens(), (0, 2));
        assert_eq!(consolidated, layered);
    }

    #[test]
    fn copy_from_yields_empty_overlay() {
        let mut src = PeTimeline::new(t(100));
        src.reserve(t(10), t(20)).unwrap();
        src.reserve(t(30), t(40)).unwrap();
        let mut dst = PeTimeline::new(t(5));
        dst.reserve(t(0), t(5)).unwrap();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.layer_lens(), (2, 0));
    }

    /// The splice-depth regression: undo of recent reservations must
    /// edit only the overlay, no matter how many consolidated
    /// reservations the base holds.
    #[test]
    fn undo_touches_only_the_overlay() {
        let mut tl = PeTimeline::new(t(1_000_000));
        for k in 0..1000u64 {
            tl.reserve(t(k * 10), t(k * 10 + 5)).unwrap();
        }
        tl.consolidate();
        let (base_before, _) = tl.layer_lens();
        assert_eq!(base_before, 1000);
        // A delta run: place a handful, then undo them in reverse.
        let mut placed = Vec::new();
        for k in 0..5u64 {
            let s = tl.reserve_earliest(t(k * 50), t(3), 0).unwrap();
            placed.push((s, s + t(3)));
        }
        assert_eq!(tl.layer_lens(), (1000, 5), "placements go to the overlay");
        for &(s, e) in placed.iter().rev() {
            tl.unreserve(s, e);
        }
        assert_eq!(
            tl.layer_lens(),
            (1000, 0),
            "undo never rewrote the consolidated base"
        );
    }

    #[test]
    fn overlay_overflow_consolidates() {
        let mut tl = PeTimeline::new(t(10_000));
        for k in 0..(CONSOLIDATE_AT as u64 + 10) {
            tl.reserve(t(k * 10), t(k * 10 + 5)).unwrap();
        }
        let (base, over) = tl.layer_lens();
        assert!(base >= CONSOLIDATE_AT, "bulk inserts consolidated");
        assert!(over < CONSOLIDATE_AT);
        assert_eq!(tl.reservation_count(), CONSOLIDATE_AT + 10);
    }

    /// Reference oracle: the pre-layered layout — one sorted `Vec` with
    /// per-reservation `insert`/`remove` — whose observable behavior the
    /// layered layout must reproduce call-for-call.
    struct SortedVecOracle {
        horizon: Time,
        busy: Vec<(Time, Time)>,
    }

    impl SortedVecOracle {
        fn new(horizon: Time) -> Self {
            SortedVecOracle {
                horizon,
                busy: Vec::new(),
            }
        }

        fn reserve(&mut self, start: Time, end: Time) -> Result<(), PeTimelineError> {
            if start >= end || end > self.horizon {
                return Err(PeTimelineError::OutOfRange { start, end });
            }
            let idx = self.busy.partition_point(|&(s, _)| s < start);
            if idx > 0 && self.busy[idx - 1].1 > start {
                return Err(PeTimelineError::Overlap { start, end });
            }
            if idx < self.busy.len() && self.busy[idx].0 < end {
                return Err(PeTimelineError::Overlap { start, end });
            }
            self.busy.insert(idx, (start, end));
            Ok(())
        }

        fn reserve_earliest(
            &mut self,
            ready: Time,
            duration: Time,
            skip: u32,
        ) -> Result<Time, PeTimelineError> {
            let (start, idx) = self.find_earliest(ready, duration, skip)?;
            self.busy.insert(idx, (start, start + duration));
            Ok(start)
        }

        fn find_earliest(
            &self,
            ready: Time,
            duration: Time,
            skip: u32,
        ) -> Result<(Time, usize), PeTimelineError> {
            if duration.is_zero() {
                return Err(PeTimelineError::OutOfRange {
                    start: ready,
                    end: ready,
                });
            }
            let mut remaining = skip;
            let mut cursor = ready;
            let mut idx = self.busy.partition_point(|&(_, e)| e <= ready);
            loop {
                let gap_end = if idx < self.busy.len() {
                    self.busy[idx].0
                } else {
                    self.horizon
                };
                if cursor + duration <= gap_end {
                    if remaining == 0 {
                        return Ok((cursor, idx));
                    }
                    remaining -= 1;
                }
                if idx >= self.busy.len() {
                    return Err(PeTimelineError::NoGap {
                        ready,
                        duration,
                        skipped: skip - remaining,
                    });
                }
                cursor = cursor.max(self.busy[idx].1);
                idx += 1;
            }
        }

        fn unreserve(&mut self, start: Time, end: Time) {
            let idx = self.busy.partition_point(|&(s, _)| s < start);
            assert!(idx < self.busy.len() && self.busy[idx] == (start, end));
            self.busy.remove(idx);
        }
    }

    proptest! {
        /// Random reserve_earliest calls never overlap and stay in range.
        #[test]
        fn prop_reservations_stay_disjoint(
            ops in proptest::collection::vec((0u64..200, 1u64..40, 0u32..4), 1..40)
        ) {
            let mut tl = PeTimeline::new(t(500));
            for (ready, dur, skip) in ops {
                let _ = tl.reserve_earliest(t(ready), t(dur), skip);
            }
            let b: Vec<_> = tl.intervals().collect();
            for w in b.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "intervals overlap: {:?}", w);
            }
            for &(s, e) in &b {
                prop_assert!(s < e && e <= t(500));
            }
            // gaps + busy partition the horizon.
            let total: Time = tl.gaps().iter().map(|&(s, e)| e - s).sum::<Time>() + tl.busy_time();
            prop_assert_eq!(total, t(500));
        }

        /// free_time_in summed over a partition of the horizon equals free_time.
        #[test]
        fn prop_free_time_partition(
            ops in proptest::collection::vec((0u64..400, 1u64..30), 1..30),
            window in 1u64..100,
        ) {
            let mut tl = PeTimeline::new(t(400));
            for (ready, dur) in ops {
                let _ = tl.reserve_earliest(t(ready), t(dur), 0);
            }
            let mut sum = Time::ZERO;
            let mut from = 0u64;
            while from < 400 {
                let to = (from + window).min(400);
                sum += tl.free_time_in(t(from), t(to));
                from = to;
            }
            prop_assert_eq!(sum, tl.free_time());
        }

        /// Differential round-trip against the old sorted-`Vec` layout:
        /// a random interleaving of exact reserves, gap-searched
        /// reserves, undo of live reservations and consolidations must
        /// match the oracle result-for-result and interval-for-interval.
        #[test]
        fn prop_layered_matches_sorted_vec_oracle(
            ops in proptest::collection::vec((0u8..4, 0u64..480, 1u64..40, 0u32..3), 1..60)
        ) {
            let mut tl = PeTimeline::new(t(500));
            let mut oracle = SortedVecOracle::new(t(500));
            let mut live: Vec<(Time, Time)> = Vec::new();
            for (op, a, b, skip) in ops {
                match op {
                    0 => {
                        let (s, e) = (t(a), t(a) + t(b));
                        let got = tl.reserve(s, e);
                        let want = oracle.reserve(s, e);
                        prop_assert_eq!(got, want);
                        if got.is_ok() {
                            live.push((s, e));
                        }
                    }
                    1 => {
                        let got = tl.reserve_earliest(t(a), t(b), skip);
                        let want = oracle.reserve_earliest(t(a), t(b), skip);
                        prop_assert_eq!(got, want);
                        if let Ok(s) = got {
                            live.push((s, s + t(b)));
                        }
                    }
                    2 => {
                        // Undo the most recent reservation — the splice
                        // loop's LIFO discipline.
                        if let Some((s, e)) = live.pop() {
                            tl.unreserve(s, e);
                            oracle.unreserve(s, e);
                        }
                    }
                    _ => tl.consolidate(),
                }
                prop_assert_eq!(
                    tl.peek_earliest(t(a), t(b), skip),
                    oracle.find_earliest(t(a), t(b), skip).map(|(s, _)| s)
                );
            }
            let merged: Vec<_> = tl.intervals().collect();
            prop_assert_eq!(merged, oracle.busy);
            let gaps = tl.gaps();
            let mut want_gaps = Vec::new();
            let mut cursor = Time::ZERO;
            for &(s, e) in &oracle.busy {
                if cursor < s {
                    want_gaps.push((cursor, s));
                }
                cursor = cursor.max(e);
            }
            if cursor < t(500) {
                want_gaps.push((cursor, t(500)));
            }
            prop_assert_eq!(gaps, want_gaps);
        }
    }
}
