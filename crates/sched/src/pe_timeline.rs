//! Busy/gap interval bookkeeping for one processing element.
//!
//! The scheduler treats each PE as a timeline of half-open busy intervals
//! within `[0, horizon)`. Existing (frozen) applications appear as
//! pre-reserved intervals; the list scheduler fills the remaining gaps.

use incdes_model::Time;
use std::fmt;

/// Error from timeline operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeTimelineError {
    /// The requested interval overlaps an existing reservation.
    Overlap {
        /// Requested start.
        start: Time,
        /// Requested end.
        end: Time,
    },
    /// The interval is empty or extends beyond the horizon.
    OutOfRange {
        /// Requested start.
        start: Time,
        /// Requested end.
        end: Time,
    },
    /// No gap fits the request before the horizon.
    NoGap {
        /// Earliest allowed start.
        ready: Time,
        /// Required duration.
        duration: Time,
        /// Number of feasible gaps skipped by hint before giving up.
        skipped: u32,
    },
}

impl fmt::Display for PeTimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeTimelineError::Overlap { start, end } => {
                write!(
                    f,
                    "interval [{start}, {end}) overlaps an existing reservation"
                )
            }
            PeTimelineError::OutOfRange { start, end } => {
                write!(
                    f,
                    "interval [{start}, {end}) is empty or beyond the horizon"
                )
            }
            PeTimelineError::NoGap {
                ready,
                duration,
                skipped,
            } => write!(
                f,
                "no gap of {duration} from {ready} (after skipping {skipped}) before the horizon"
            ),
        }
    }
}

impl std::error::Error for PeTimelineError {}

/// The timeline of one PE: sorted, disjoint busy intervals in `[0, horizon)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeTimeline {
    horizon: Time,
    /// Sorted by start; intervals are disjoint (no merging of adjacent
    /// intervals — each reservation is kept separate).
    busy: Vec<(Time, Time)>,
}

impl PeTimeline {
    /// An empty timeline over `[0, horizon)`.
    pub fn new(horizon: Time) -> Self {
        PeTimeline {
            horizon,
            busy: Vec::new(),
        }
    }

    /// The horizon.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Number of reservations.
    pub fn reservation_count(&self) -> usize {
        self.busy.len()
    }

    /// Total busy time.
    pub fn busy_time(&self) -> Time {
        self.busy.iter().map(|&(s, e)| e - s).sum()
    }

    /// Total free time.
    pub fn free_time(&self) -> Time {
        self.horizon - self.busy_time()
    }

    /// Reserves the exact interval `[start, end)`.
    ///
    /// # Errors
    ///
    /// [`PeTimelineError::OutOfRange`] if empty or beyond the horizon,
    /// [`PeTimelineError::Overlap`] if it intersects a reservation.
    pub fn reserve(&mut self, start: Time, end: Time) -> Result<(), PeTimelineError> {
        if start >= end || end > self.horizon {
            return Err(PeTimelineError::OutOfRange { start, end });
        }
        // Position of the first interval with start >= requested start.
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        if idx > 0 && self.busy[idx - 1].1 > start {
            return Err(PeTimelineError::Overlap { start, end });
        }
        if idx < self.busy.len() && self.busy[idx].0 < end {
            return Err(PeTimelineError::Overlap { start, end });
        }
        self.busy.insert(idx, (start, end));
        Ok(())
    }

    /// Finds and reserves the earliest start ≥ `ready` of a block of
    /// `duration`, after skipping the first `skip` feasible gaps (the
    /// paper's "move to a different slack" hint). Within the chosen gap
    /// the block is placed as early as possible.
    ///
    /// Returns the start time of the reservation.
    ///
    /// # Errors
    ///
    /// [`PeTimelineError::NoGap`] if nothing fits before the horizon, and
    /// [`PeTimelineError::OutOfRange`] if `duration` is zero.
    pub fn reserve_earliest(
        &mut self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<Time, PeTimelineError> {
        let (start, idx) = self.find_earliest(ready, duration, skip)?;
        self.busy.insert(idx, (start, start + duration));
        Ok(start)
    }

    /// Non-mutating version of [`reserve_earliest`](Self::reserve_earliest):
    /// where *would* the block be placed?
    ///
    /// # Errors
    ///
    /// As [`reserve_earliest`](Self::reserve_earliest).
    pub fn peek_earliest(
        &self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<Time, PeTimelineError> {
        self.find_earliest(ready, duration, skip).map(|(s, _)| s)
    }

    /// Shared search: returns `(start, insertion index)`.
    fn find_earliest(
        &self,
        ready: Time,
        duration: Time,
        skip: u32,
    ) -> Result<(Time, usize), PeTimelineError> {
        if duration.is_zero() {
            return Err(PeTimelineError::OutOfRange {
                start: ready,
                end: ready,
            });
        }
        let mut remaining = skip;
        let mut cursor = ready;
        let mut idx = self.busy.partition_point(|&(_, e)| e <= ready);
        loop {
            let gap_end = if idx < self.busy.len() {
                self.busy[idx].0
            } else {
                self.horizon
            };
            if cursor + duration <= gap_end {
                if remaining == 0 {
                    return Ok((cursor, idx));
                }
                remaining -= 1;
            }
            if idx >= self.busy.len() {
                return Err(PeTimelineError::NoGap {
                    ready,
                    duration,
                    skipped: skip - remaining,
                });
            }
            cursor = cursor.max(self.busy[idx].1);
            idx += 1;
        }
    }

    /// The free gaps `(start, end)` in time order.
    pub fn gaps(&self) -> Vec<(Time, Time)> {
        let mut out = Vec::new();
        let mut cursor = Time::ZERO;
        for &(s, e) in &self.busy {
            if cursor < s {
                out.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if cursor < self.horizon {
            out.push((cursor, self.horizon));
        }
        out
    }

    /// Free time inside the window `[from, to)`.
    pub fn free_time_in(&self, from: Time, to: Time) -> Time {
        let to = to.min(self.horizon);
        if from >= to {
            return Time::ZERO;
        }
        let mut busy_in = Time::ZERO;
        for &(s, e) in &self.busy {
            if s >= to {
                break;
            }
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                busy_in += hi - lo;
            }
        }
        (to - from) - busy_in
    }

    /// The busy intervals, sorted by start.
    pub fn busy_intervals(&self) -> &[(Time, Time)] {
        &self.busy
    }

    /// Resets this timeline to an exact copy of `other`, reusing the
    /// existing allocation. The evaluation engine calls this once per
    /// schedule to restore the baked frozen occupancy without
    /// reallocating.
    pub fn copy_from(&mut self, other: &PeTimeline) {
        self.horizon = other.horizon;
        self.busy.clear();
        self.busy.extend_from_slice(&other.busy);
    }

    /// Removes the exact reservation `[start, end)`. The delta-scheduling
    /// engine uses this to *undo* the previous evaluation's placements
    /// instead of resetting the whole timeline from the frozen base.
    ///
    /// # Panics
    ///
    /// Panics if `[start, end)` is not a reservation of this timeline —
    /// the engine only ever undoes reservations it recorded, so a miss is
    /// a bookkeeping bug, not a recoverable condition.
    pub fn unreserve(&mut self, start: Time, end: Time) {
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        assert!(
            idx < self.busy.len() && self.busy[idx] == (start, end),
            "unreserve of [{start}, {end}) which is not reserved"
        );
        self.busy.remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    #[test]
    fn reserve_exact_ok_and_overlap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(20), t(30)).unwrap(); // adjacent is fine
        tl.reserve(t(0), t(10)).unwrap();
        assert_eq!(tl.reservation_count(), 3);
        assert!(matches!(
            tl.reserve(t(15), t(25)),
            Err(PeTimelineError::Overlap { .. })
        ));
        assert!(matches!(
            tl.reserve(t(5), t(12)),
            Err(PeTimelineError::Overlap { .. })
        ));
        assert!(matches!(
            tl.reserve(t(29), t(31)),
            Err(PeTimelineError::Overlap { .. })
        ));
    }

    #[test]
    fn reserve_out_of_range() {
        let mut tl = PeTimeline::new(t(50));
        assert!(matches!(
            tl.reserve(t(40), t(60)),
            Err(PeTimelineError::OutOfRange { .. })
        ));
        assert!(matches!(
            tl.reserve(t(10), t(10)),
            Err(PeTimelineError::OutOfRange { .. })
        ));
    }

    #[test]
    fn earliest_in_empty_timeline() {
        let mut tl = PeTimeline::new(t(100));
        let s = tl.reserve_earliest(t(5), t(10), 0).unwrap();
        assert_eq!(s, t(5));
        assert_eq!(tl.busy_time(), t(10));
    }

    #[test]
    fn earliest_fills_gap_between_reservations() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(0), t(10)).unwrap();
        tl.reserve(t(30), t(40)).unwrap();
        let s = tl.reserve_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(s, t(10)); // gap [10,30) fits 15
        let s2 = tl.reserve_earliest(t(0), t(6), 0).unwrap();
        assert_eq!(s2, t(40)); // [25,30) too small now → after 40
    }

    #[test]
    fn earliest_respects_ready_inside_gap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(0), t(10)).unwrap();
        let s = tl.reserve_earliest(t(17), t(5), 0).unwrap();
        assert_eq!(s, t(17));
    }

    #[test]
    fn skip_hint_picks_later_gap() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(30), t(40)).unwrap();
        // Feasible gaps for 5 ticks from 0: [0,10), [20,30), [40,100).
        let s = tl.reserve_earliest(t(0), t(5), 1).unwrap();
        assert_eq!(s, t(20));
        let s2 = tl.reserve_earliest(t(0), t(5), 1).unwrap();
        // Gaps now: [0,10), [25,30), [40,100) → skip 1 → [25,30).
        assert_eq!(s2, t(25));
    }

    #[test]
    fn skip_beyond_last_gap_fails() {
        let mut tl = PeTimeline::new(t(50));
        let err = tl.reserve_earliest(t(0), t(5), 10).unwrap_err();
        assert!(matches!(err, PeTimelineError::NoGap { skipped: 1, .. }));
    }

    #[test]
    fn no_gap_when_full() {
        let mut tl = PeTimeline::new(t(20));
        tl.reserve(t(0), t(20)).unwrap();
        assert!(matches!(
            tl.reserve_earliest(t(0), t(1), 0),
            Err(PeTimelineError::NoGap { .. })
        ));
    }

    #[test]
    fn zero_duration_rejected() {
        let mut tl = PeTimeline::new(t(20));
        assert!(matches!(
            tl.reserve_earliest(t(0), t(0), 0),
            Err(PeTimelineError::OutOfRange { .. })
        ));
    }

    #[test]
    fn gaps_enumeration() {
        let mut tl = PeTimeline::new(t(100));
        assert_eq!(tl.gaps(), vec![(t(0), t(100))]);
        tl.reserve(t(10), t(20)).unwrap();
        tl.reserve(t(20), t(30)).unwrap();
        tl.reserve(t(90), t(100)).unwrap();
        assert_eq!(tl.gaps(), vec![(t(0), t(10)), (t(30), t(90))]);
        assert_eq!(tl.free_time(), t(70));
    }

    #[test]
    fn free_time_in_windows() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(30)).unwrap();
        assert_eq!(tl.free_time_in(t(0), t(40)), t(20));
        assert_eq!(tl.free_time_in(t(10), t(30)), t(0));
        assert_eq!(tl.free_time_in(t(20), t(50)), t(20));
        assert_eq!(tl.free_time_in(t(50), t(50)), t(0));
        // Clamped to horizon.
        assert_eq!(tl.free_time_in(t(90), t(200)), t(10));
    }

    #[test]
    fn peek_matches_reserve_and_does_not_mutate() {
        let mut tl = PeTimeline::new(t(100));
        tl.reserve(t(10), t(20)).unwrap();
        let before = tl.clone();
        let peeked = tl.peek_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(tl, before, "peek must not mutate");
        let reserved = tl.reserve_earliest(t(0), t(15), 0).unwrap();
        assert_eq!(peeked, reserved);
        assert_eq!(reserved, t(20));
    }

    proptest! {
        /// Random reserve_earliest calls never overlap and stay in range.
        #[test]
        fn prop_reservations_stay_disjoint(
            ops in proptest::collection::vec((0u64..200, 1u64..40, 0u32..4), 1..40)
        ) {
            let mut tl = PeTimeline::new(t(500));
            for (ready, dur, skip) in ops {
                let _ = tl.reserve_earliest(t(ready), t(dur), skip);
            }
            let b = tl.busy_intervals();
            for w in b.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "intervals overlap: {:?}", w);
            }
            for &(s, e) in b {
                prop_assert!(s < e && e <= t(500));
            }
            // gaps + busy partition the horizon.
            let total: Time = tl.gaps().iter().map(|&(s, e)| e - s).sum::<Time>() + tl.busy_time();
            prop_assert_eq!(total, t(500));
        }

        /// free_time_in summed over a partition of the horizon equals free_time.
        #[test]
        fn prop_free_time_partition(
            ops in proptest::collection::vec((0u64..400, 1u64..30), 1..30),
            window in 1u64..100,
        ) {
            let mut tl = PeTimeline::new(t(400));
            for (ready, dur) in ops {
                let _ = tl.reserve_earliest(t(ready), t(dur), 0);
            }
            let mut sum = Time::ZERO;
            let mut from = 0u64;
            while from < 400 {
                let to = (from + window).min(400);
                sum += tl.free_time_in(t(from), t(to));
                from = to;
            }
            prop_assert_eq!(sum, tl.free_time());
        }
    }
}
