//! Mapping and placement hints — the design variables of the paper.
//!
//! A design alternative in Pop et al. is fully described by
//!
//! 1. a [`Mapping`]: which PE each process runs on, and
//! 2. [`Hints`]: *which slack* each process (and each message) is placed
//!    into, counted as "skip the first `n` feasible gaps/slots".
//!
//! The list scheduler derives the concrete start times deterministically
//! from these two, so the design transformations of the mapping heuristic
//! ("move process to another slack on the same/different processor",
//! "move message to another slack on the bus") are plain edits of these
//! structures followed by a re-schedule.

use incdes_graph::EdgeId;
use incdes_model::{PeId, ProcRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Reference to a message (edge) within one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgRef {
    /// Index of the process graph inside the application.
    pub graph: usize,
    /// Edge inside that graph.
    pub edge: EdgeId,
}

impl MsgRef {
    /// Creates a message reference.
    pub fn new(graph: usize, edge: EdgeId) -> Self {
        MsgRef { graph, edge }
    }
}

impl fmt::Display for MsgRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}/{}", self.graph, self.edge)
    }
}

/// (De)serializes a `BTreeMap` with a struct key as a sequence of pairs,
/// keeping snapshots valid JSON (JSON object keys must be strings).
mod pairs {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(de: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        Ok(Vec::<(K, V)>::deserialize(de)?.into_iter().collect())
    }
}

/// Assignment of processes to processing elements for one application.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    #[serde(with = "pairs")]
    assign: BTreeMap<ProcRef, PeId>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Assigns (or re-assigns) a process to a PE; returns the previous PE.
    pub fn assign(&mut self, p: ProcRef, pe: PeId) -> Option<PeId> {
        self.assign.insert(p, pe)
    }

    /// The PE of process `p`, if assigned.
    pub fn pe_of(&self, p: ProcRef) -> Option<PeId> {
        self.assign.get(&p).copied()
    }

    /// Number of assigned processes.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Iterator over `(process, pe)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcRef, PeId)> + '_ {
        self.assign.iter().map(|(&p, &pe)| (p, pe))
    }

    /// Processes mapped to `pe`.
    pub fn on_pe(&self, pe: PeId) -> impl Iterator<Item = ProcRef> + '_ {
        self.assign
            .iter()
            .filter(move |&(_, &q)| q == pe)
            .map(|(&p, _)| p)
    }
}

impl FromIterator<(ProcRef, PeId)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (ProcRef, PeId)>>(iter: I) -> Self {
        Mapping {
            assign: iter.into_iter().collect(),
        }
    }
}

/// Placement hints: for a process, skip the first `n` feasible processor
/// gaps; for a message, skip the first `n` feasible slot occurrences.
/// Anything not mentioned defaults to 0 (earliest feasible placement).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hints {
    #[serde(with = "pairs")]
    proc_gap: BTreeMap<ProcRef, u32>,
    #[serde(with = "pairs")]
    msg_slot: BTreeMap<MsgRef, u32>,
}

impl Hints {
    /// No hints: every placement is earliest-feasible.
    pub fn empty() -> Self {
        Hints::default()
    }

    /// Sets the gap hint of a process. A hint of 0 removes the entry.
    pub fn set_proc_gap(&mut self, p: ProcRef, skip: u32) {
        if skip == 0 {
            self.proc_gap.remove(&p);
        } else {
            self.proc_gap.insert(p, skip);
        }
    }

    /// Sets the slot hint of a message. A hint of 0 removes the entry.
    pub fn set_msg_slot(&mut self, m: MsgRef, skip: u32) {
        if skip == 0 {
            self.msg_slot.remove(&m);
        } else {
            self.msg_slot.insert(m, skip);
        }
    }

    /// The gap hint of process `p` (0 if unset).
    pub fn proc_gap(&self, p: ProcRef) -> u32 {
        self.proc_gap.get(&p).copied().unwrap_or(0)
    }

    /// The slot hint of message `m` (0 if unset).
    pub fn msg_slot(&self, m: MsgRef) -> u32 {
        self.msg_slot.get(&m).copied().unwrap_or(0)
    }

    /// Iterator over the non-zero process gap hints, in process order.
    pub fn proc_gaps(&self) -> impl Iterator<Item = (ProcRef, u32)> + '_ {
        self.proc_gap.iter().map(|(&p, &s)| (p, s))
    }

    /// Iterator over the non-zero message slot hints, in message order.
    pub fn msg_slots(&self) -> impl Iterator<Item = (MsgRef, u32)> + '_ {
        self.msg_slot.iter().map(|(&m, &s)| (m, s))
    }

    /// True if no hints are set.
    pub fn is_empty(&self) -> bool {
        self.proc_gap.is_empty() && self.msg_slot.is_empty()
    }

    /// Number of non-zero hints.
    pub fn len(&self) -> usize {
        self.proc_gap.len() + self.msg_slot.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_graph::NodeId;

    #[test]
    fn mapping_assign_and_query() {
        let mut m = Mapping::new();
        assert!(m.is_empty());
        let p = ProcRef::new(0, NodeId(1));
        assert_eq!(m.assign(p, PeId(2)), None);
        assert_eq!(m.assign(p, PeId(3)), Some(PeId(2)));
        assert_eq!(m.pe_of(p), Some(PeId(3)));
        assert_eq!(m.pe_of(ProcRef::new(0, NodeId(9))), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn mapping_on_pe_filters() {
        let m: Mapping = [
            (ProcRef::new(0, NodeId(0)), PeId(0)),
            (ProcRef::new(0, NodeId(1)), PeId(1)),
            (ProcRef::new(0, NodeId(2)), PeId(0)),
        ]
        .into_iter()
        .collect();
        let on0: Vec<_> = m.on_pe(PeId(0)).collect();
        assert_eq!(
            on0,
            vec![ProcRef::new(0, NodeId(0)), ProcRef::new(0, NodeId(2))]
        );
        assert_eq!(m.on_pe(PeId(5)).count(), 0);
    }

    #[test]
    fn hints_default_to_zero() {
        let h = Hints::empty();
        assert_eq!(h.proc_gap(ProcRef::new(0, NodeId(0))), 0);
        assert_eq!(h.msg_slot(MsgRef::new(0, EdgeId(0))), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn hints_zero_removes_entry() {
        let mut h = Hints::empty();
        let p = ProcRef::new(0, NodeId(0));
        h.set_proc_gap(p, 3);
        assert_eq!(h.proc_gap(p), 3);
        assert_eq!(h.len(), 1);
        h.set_proc_gap(p, 0);
        assert!(h.is_empty());
        let m = MsgRef::new(1, EdgeId(2));
        h.set_msg_slot(m, 2);
        assert_eq!(h.msg_slot(m), 2);
        h.set_msg_slot(m, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn display_msg_ref() {
        assert_eq!(MsgRef::new(2, EdgeId(5)).to_string(), "g2/e5");
    }
}
