//! Slack extraction: the raw material of the paper's design metrics.
//!
//! After mapping and scheduling, the unused resources are
//!
//! * per-PE *gaps* — maximal idle intervals on each processor, and
//! * *bus slack* — the free tail of every TDMA slot occurrence.
//!
//! [`SlackProfile`] captures both over the hyperperiod; `incdes-metrics`
//! consumes it to compute C1 (how well the slack is *clustered*) and C2
//! (how well it is *distributed* in time).

use crate::table::ScheduleTable;
use incdes_model::{Architecture, PeId, Time};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One shared, immutable gap/window list: a flattened `Arc<[..]>` slab.
///
/// The flat slice (rather than `Arc<Vec<..>>`) drops one pointer
/// indirection on every scan — the C1/C2 window kernels walk the spans
/// straight off the `Arc` allocation — and makes the lists immutable by
/// construction, which is exactly the aliasing contract the engine's
/// CoW sharing relies on (see [`SlackProfile`]).
pub type GapList = Arc<[(Time, Time)]>;

/// The slack left by a schedule.
///
/// The gap lists are `Arc`-backed shared storage: the incremental
/// evaluation engine ([`crate::engine`]) hands out profiles whose
/// untouched-PE gap lists *share* the frozen base's (or the previous
/// evaluation's) storage instead of deep-cloning it. Sharing is
/// invisible through this API — reads return plain slices, equality and
/// serialization are by content, and the [`GapList`] storage is
/// immutable (`Arc<[..]>` has no `make_mut`-style mutation path here),
/// so no profile can be altered through a sibling profile or the
/// engine's caches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlackProfile {
    horizon: Time,
    /// Per PE: maximal idle intervals `(start, end)`, in time order.
    /// The outer table is `Arc`-shared too: the evaluation memo clones
    /// whole profiles on every insert and hit, so a clone must cost two
    /// reference-count bumps, not one per PE.
    pe_gaps: Arc<[GapList]>,
    /// Free bus windows `(start, end)` — the unused tail of each slot
    /// occurrence, in time order.
    bus_windows: GapList,
}

impl SlackProfile {
    /// Extracts the slack profile of `table` on `arch`.
    ///
    /// # Panics
    ///
    /// Panics if the table is internally inconsistent (overlapping jobs or
    /// invalid bus framing); tables produced by [`crate::schedule`] never
    /// are.
    pub fn from_table(arch: &Architecture, table: &ScheduleTable) -> Self {
        let pe_gaps: Arc<[GapList]> = table
            .pe_timelines(arch)
            .iter()
            .map(|tl| tl.gap_iter().collect())
            .collect();
        let bus = table.bus_timeline(arch);
        SlackProfile {
            horizon: table.horizon(),
            pe_gaps,
            bus_windows: bus.free_windows().into(),
        }
    }

    /// Assembles a profile from precomputed parts: per-PE gap lists (in
    /// PE order, each in time order) and bus windows (in time order).
    ///
    /// This is the owned-storage constructor; the incremental evaluation
    /// engine ([`crate::engine`]) uses [`SlackProfile::from_shared`] to
    /// hand out profiles that share unchanged gap lists instead. The
    /// parts must be exactly what [`SlackProfile::from_table`] would
    /// have produced.
    pub fn from_parts(
        horizon: Time,
        pe_gaps: Vec<Vec<(Time, Time)>>,
        bus_windows: Vec<(Time, Time)>,
    ) -> Self {
        SlackProfile {
            horizon,
            pe_gaps: pe_gaps.into_iter().map(Into::into).collect(),
            bus_windows: bus_windows.into(),
        }
    }

    /// [`SlackProfile::from_parts`] with the storage supplied as shared
    /// `Arc`s: the evaluation engine passes the frozen base's (or the
    /// previous run's) gap lists for resources the current evaluation
    /// did not change, so building a profile costs one reference-count
    /// bump per untouched resource instead of a deep clone.
    pub fn from_shared(horizon: Time, pe_gaps: Arc<[GapList]>, bus_windows: GapList) -> Self {
        SlackProfile {
            horizon,
            pe_gaps,
            bus_windows,
        }
    }

    /// The shared storage behind [`gaps_of`](Self::gaps_of). Exposed so
    /// the incremental C1 cache (and tests) can detect unchanged gap
    /// lists by `Arc::ptr_eq` instead of comparing contents.
    pub fn gaps_shared(&self, pe: PeId) -> &GapList {
        &self.pe_gaps[pe.index()]
    }

    /// The shared storage behind [`bus_windows`](Self::bus_windows).
    pub fn bus_windows_shared(&self) -> &GapList {
        &self.bus_windows
    }

    /// The hyperperiod the profile covers.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pe_gaps.len()
    }

    /// Idle intervals of `pe`.
    pub fn gaps_of(&self, pe: PeId) -> &[(Time, Time)] {
        &self.pe_gaps[pe.index()]
    }

    /// All processor gaps across PEs, as durations.
    pub fn all_pe_gap_sizes(&self) -> Vec<Time> {
        self.pe_gaps
            .iter()
            .flat_map(|gaps| gaps.iter().map(|&(s, e)| e - s))
            .collect()
    }

    /// Free bus windows.
    pub fn bus_windows(&self) -> &[(Time, Time)] {
        &self.bus_windows
    }

    /// Bus window sizes.
    pub fn bus_window_sizes(&self) -> Vec<Time> {
        self.bus_windows.iter().map(|&(s, e)| e - s).collect()
    }

    /// Total idle time of `pe`.
    pub fn total_slack_of(&self, pe: PeId) -> Time {
        self.pe_gaps[pe.index()].iter().map(|&(s, e)| e - s).sum()
    }

    /// Total idle processor time across all PEs.
    pub fn total_pe_slack(&self) -> Time {
        (0..self.pe_count())
            .map(|i| self.total_slack_of(PeId(i as u32)))
            .sum()
    }

    /// Total free bus time.
    pub fn total_bus_slack(&self) -> Time {
        self.bus_windows.iter().map(|&(s, e)| e - s).sum()
    }

    /// Idle time of `pe` inside the window `[from, to)`.
    pub fn pe_slack_in(&self, pe: PeId, from: Time, to: Time) -> Time {
        window_overlap(&self.pe_gaps[pe.index()], from, to)
    }

    /// Free bus time inside the window `[from, to)`.
    pub fn bus_slack_in(&self, from: Time, to: Time) -> Time {
        window_overlap(&self.bus_windows, from, to)
    }

    /// The largest single processor gap, or zero if none.
    pub fn largest_pe_gap(&self) -> Time {
        self.all_pe_gap_sizes()
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// Total overlap of sorted disjoint intervals with `[from, to)` — the
/// kernel behind [`SlackProfile::pe_slack_in`]/[`SlackProfile::bus_slack_in`],
/// exported so `incdes-metrics` runs the same kernel on raw interval
/// lists (cached frozen-only gaps) without materializing a profile.
pub fn window_overlap(intervals: &[(Time, Time)], from: Time, to: Time) -> Time {
    let mut total = Time::ZERO;
    for &(s, e) in intervals {
        if s >= to {
            break;
        }
        let lo = s.max(from);
        let hi = e.min(to);
        if lo < hi {
            total += hi - lo;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::table::{ScheduleTable, ScheduledJob};
    use incdes_model::{AppId, Architecture, BusConfig};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn job(pe: u32, s: u64, e: u64) -> ScheduledJob {
        ScheduledJob {
            job: JobId::new(AppId(0), 0, 0, incdes_graph::NodeId(pe + s as u32)),
            pe: PeId(pe),
            start: t(s),
            end: t(e),
            release: t(0),
            deadline: t(1000),
        }
    }

    #[test]
    fn empty_schedule_slack_is_everything() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(100));
        let p = SlackProfile::from_table(&arch, &table);
        assert_eq!(p.total_pe_slack(), t(200));
        assert_eq!(p.total_bus_slack(), t(100));
        assert_eq!(p.gaps_of(PeId(0)), &[(t(0), t(100))]);
        assert_eq!(p.largest_pe_gap(), t(100));
        assert_eq!(p.pe_count(), 2);
    }

    #[test]
    fn gaps_follow_jobs() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(100),
            vec![job(0, 10, 30), job(0, 50, 60), job(1, 0, 100)],
            vec![],
        );
        let p = SlackProfile::from_table(&arch, &table);
        assert_eq!(
            p.gaps_of(PeId(0)),
            &[(t(0), t(10)), (t(30), t(50)), (t(60), t(100))]
        );
        assert!(p.gaps_of(PeId(1)).is_empty());
        assert_eq!(p.total_slack_of(PeId(0)), t(70));
        assert_eq!(p.total_pe_slack(), t(70));
        let mut sizes = p.all_pe_gap_sizes();
        sizes.sort();
        assert_eq!(sizes, vec![t(10), t(20), t(40)]);
    }

    #[test]
    fn windowed_slack_queries() {
        let arch = arch2();
        let table = ScheduleTable::new(t(100), vec![job(0, 10, 30)], vec![]);
        let p = SlackProfile::from_table(&arch, &table);
        assert_eq!(p.pe_slack_in(PeId(0), t(0), t(50)), t(30));
        assert_eq!(p.pe_slack_in(PeId(0), t(10), t(30)), t(0));
        assert_eq!(p.pe_slack_in(PeId(0), t(20), t(40)), t(10));
        // Bus fully free: [0,20) covers both 10-tick slots.
        assert_eq!(p.bus_slack_in(t(0), t(20)), t(20));
        assert_eq!(p.bus_slack_in(t(5), t(15)), t(10));
    }

    #[test]
    fn bus_windows_per_occurrence() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(40));
        let p = SlackProfile::from_table(&arch, &table);
        // 2 cycles × 2 slots = 4 windows of 10.
        assert_eq!(p.bus_windows().len(), 4);
        assert_eq!(p.bus_window_sizes(), vec![t(10); 4]);
    }
}
