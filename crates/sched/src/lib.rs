//! Static cyclic scheduling for distributed embedded systems.
//!
//! This crate implements the scheduling substrate of Pop et al. (DAC
//! 2001): given an architecture, a set of applications with a fixed
//! *mapping* (process → processing element) and optional *placement
//! hints*, it builds one static cyclic schedule over the hyperperiod that
//! covers every instance of every process graph, placing processes into
//! processor gaps and messages into TDMA slots.
//!
//! * [`mapping`] — the [`Mapping`] (process → PE) and [`Hints`] (the "use
//!   the n-th slack" placement hints that the paper's design
//!   transformations manipulate).
//! * [`pe_timeline`] — per-processor busy/gap interval bookkeeping.
//! * [`job`] — hyperperiod expansion: each process graph with period `T`
//!   contributes `H/T` job instances.
//! * [`priority`] — partial-critical-path priorities for list scheduling.
//! * [`list`] — the one-shot list-scheduler entry point ([`schedule`]).
//! * [`engine`] — the incremental evaluation engine behind it:
//!   [`FrozenBase`] bakes the frozen schedule once, [`Scheduler`] reuses
//!   scratch arenas across evaluations, derives `Arc`-shared slack
//!   incrementally, and **delta-schedules** single-move neighbors by
//!   splicing the recorded placement prefix of the previous run and
//!   re-placing only the suffix the change can affect (see the
//!   decision rules in the [`engine`] module docs).
//! * [`table`] — the resulting [`ScheduleTable`] plus exhaustive validity
//!   checking and replication of frozen schedules to longer horizons.
//! * [`slack`] — extraction of the slack profile consumed by the design
//!   metrics (C1/C2) of `incdes-metrics`.
//! * [`analysis`] — response-time/laxity/utilization reports on finished
//!   schedules ([`ScheduleReport`]).
//!
//! # Example
//!
//! ```
//! use incdes_model::prelude::*;
//! use incdes_sched::{schedule, AppSpec, Hints, Mapping};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::builder()
//!     .pe("N1")
//!     .pe("N2")
//!     .bus(BusConfig::uniform_round(2, Time::new(10), 1)?)
//!     .build()?;
//!
//! let mut g = ProcessGraph::new("g", Time::new(100), Time::new(100));
//! let a = g.add_process(Process::new("a").wcet(PeId(0), Time::new(8)));
//! let b = g.add_process(Process::new("b").wcet(PeId(1), Time::new(6)));
//! g.add_message(a, b, Message::new("m", 4))?;
//! let app = Application::new("demo", vec![g]);
//!
//! let mut mapping = Mapping::new();
//! mapping.assign(ProcRef::new(0, a), PeId(0));
//! mapping.assign(ProcRef::new(0, b), PeId(1));
//!
//! let hints = Hints::empty();
//! let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
//! let table = schedule(&arch, &[spec], None, Time::new(100))?;
//! assert!(table.is_deadline_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod job;
pub mod list;
pub mod mapping;
pub mod pe_timeline;
pub mod priority;
pub mod slack;
pub mod table;

pub use analysis::{InstanceResponse, PeLoad, ScheduleReport};
pub use engine::{ChangedVar, FrozenBase, Scheduler};
pub use job::JobId;
pub use list::{schedule, AppSpec, SchedError};
pub use mapping::{Hints, Mapping, MsgRef};
pub use pe_timeline::PeTimeline;
pub use slack::SlackProfile;
pub use table::{
    job_sort_key, message_sort_key, ScheduleTable, ScheduledJob, ScheduledMessage, TableError,
};
