//! The incremental evaluation engine.
//!
//! The mapping heuristics evaluate thousands of design alternatives per
//! scenario, and every alternative shares the same *frozen* part: the
//! existing applications' jobs and messages, which requirement (a) of
//! the paper forbids touching. The plain [`crate::schedule`] entry point
//! re-replays and re-validates that frozen schedule — and re-sorts its
//! messages, re-allocates every timeline, and re-computes priorities —
//! on every call.
//!
//! This module splits the work:
//!
//! * [`FrozenBase`] replays and validates the frozen schedule **once**,
//!   baking per-PE [`PeTimeline`]s, a [`BusTimeline`] occupancy
//!   snapshot, and the frozen-only slack (gap lists and bus windows).
//! * [`Scheduler`] holds reusable scratch arenas (job records, the ready
//!   heap, a per-graph priority cache keyed by the node → PE assignment)
//!   and schedules the *current* applications on top of a cheap reset of
//!   the baked base. A steady-state evaluation performs no frozen-replay
//!   work and near-zero allocation beyond the returned table.
//! * [`Scheduler::schedule_with_slack`] additionally derives the
//!   [`SlackProfile`] incrementally: PEs the current applications never
//!   touch reuse the frozen-only gap lists, and only the bus occurrences
//!   that actually carry a new message have their free windows patched.
//!
//! [`crate::schedule`] is a thin compatibility wrapper over this engine,
//! so both paths produce bit-identical tables by construction; the
//! equivalence property tests in `tests/engine_equivalence.rs` pin the
//! scratch-reuse/reset logic on top of that.

use crate::job::JobId;
use crate::list::{AppSpec, SchedError};
use crate::pe_timeline::PeTimeline;
use crate::priority::PriorityCosts;
use crate::slack::SlackProfile;
use crate::table::{ScheduleTable, ScheduledJob, ScheduledMessage};
use incdes_model::{Architecture, PeId, ProcRef, Time};
use incdes_tdma::BusTimeline;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Checks that `horizon` is positive and a multiple of every graph
/// period of `apps` — the per-call half of [`crate::schedule`]'s input
/// validation (the bus-cycle half is checked once by [`FrozenBase`]).
///
/// # Errors
///
/// [`SchedError::BadHorizon`] on violation.
pub fn check_horizon(apps: &[AppSpec<'_>], horizon: Time) -> Result<(), SchedError> {
    if horizon.is_zero() {
        return Err(SchedError::BadHorizon { horizon });
    }
    for spec in apps {
        for g in &spec.app.graphs {
            if g.period.is_zero() || !(horizon % g.period).is_zero() {
                return Err(SchedError::BadHorizon { horizon });
            }
        }
    }
    Ok(())
}

/// The frozen schedule replayed, validated and baked — built once per
/// system state, shared by every evaluation on that state.
#[derive(Debug, Clone)]
pub struct FrozenBase {
    horizon: Time,
    /// Per-PE busy timelines holding exactly the frozen jobs.
    pes: Vec<PeTimeline>,
    /// Bus occupancy holding exactly the frozen messages.
    bus: BusTimeline,
    /// The frozen jobs, in replay order.
    jobs: Vec<ScheduledJob>,
    /// The frozen messages, in frame-replay order.
    msgs: Vec<ScheduledMessage>,
    /// Frozen-only idle intervals per PE (what `SlackProfile` would
    /// report for the frozen table alone).
    pe_gaps: Vec<Vec<(Time, Time)>>,
    /// Frozen-only free bus windows, in time order.
    bus_windows: Vec<(Time, Time)>,
    /// Slot-occurrence index behind each entry of `bus_windows`.
    window_occ: Vec<u64>,
}

impl FrozenBase {
    /// Replays `frozen` (if any) over `[0, horizon)` on `arch` and bakes
    /// the result. Equivalent to the validation + replay prologue of
    /// [`crate::schedule`], performed once.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadHorizon`] if `horizon` is zero or not a multiple
    /// of the bus cycle; [`SchedError::FrozenConflict`] if the frozen
    /// table does not cover exactly `horizon` or cannot be replayed.
    pub fn new(
        arch: &Architecture,
        frozen: Option<&ScheduleTable>,
        horizon: Time,
    ) -> Result<Self, SchedError> {
        if horizon.is_zero() {
            return Err(SchedError::BadHorizon { horizon });
        }
        let mut bus = BusTimeline::new(arch.bus(), horizon)
            .map_err(|_| SchedError::BadHorizon { horizon })?;
        let mut pes: Vec<PeTimeline> = (0..arch.pe_count())
            .map(|_| PeTimeline::new(horizon))
            .collect();
        let mut jobs: Vec<ScheduledJob> = Vec::new();
        let mut msgs: Vec<ScheduledMessage> = Vec::new();
        if let Some(fr) = frozen {
            if fr.horizon() != horizon {
                return Err(SchedError::FrozenConflict);
            }
            for j in fr.jobs() {
                if j.pe.index() >= pes.len() {
                    return Err(SchedError::FrozenConflict);
                }
                pes[j.pe.index()]
                    .reserve(j.start, j.end)
                    .map_err(|_| SchedError::FrozenConflict)?;
                jobs.push(*j);
            }
            // Replay messages in frame order so packing offsets reproduce.
            let mut ordered: Vec<&ScheduledMessage> = fr.messages().iter().collect();
            ordered.sort_by_key(|m| (m.reservation.occurrence, m.reservation.transmit_start));
            for m in ordered {
                let r = bus
                    .reserve_in_occurrence(
                        m.reservation.owner,
                        m.reservation.occurrence,
                        m.reservation.duration(),
                    )
                    .map_err(|_| SchedError::FrozenConflict)?;
                if r.transmit_start != m.reservation.transmit_start {
                    return Err(SchedError::FrozenConflict);
                }
                msgs.push(*m);
            }
        }
        let pe_gaps = pes.iter().map(|tl| tl.gaps()).collect();
        let mut bus_windows = Vec::new();
        let mut window_occ = Vec::new();
        for idx in 0..bus.occurrence_count() {
            let occ = bus.occurrence(idx).expect("index < count");
            let used = bus.used(idx);
            if used < occ.length {
                bus_windows.push((occ.start + used, occ.end()));
                window_occ.push(idx);
            }
        }
        Ok(FrozenBase {
            horizon,
            pes,
            bus,
            jobs,
            msgs,
            pe_gaps,
            bus_windows,
            window_occ,
        })
    }

    /// An empty base (no frozen applications) over `horizon`.
    ///
    /// # Errors
    ///
    /// As [`FrozenBase::new`].
    pub fn empty(arch: &Architecture, horizon: Time) -> Result<Self, SchedError> {
        FrozenBase::new(arch, None, horizon)
    }

    /// The scheduling horizon the base covers.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Number of PEs in the baked timelines.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Number of frozen jobs baked into the base.
    pub fn frozen_job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of frozen messages baked into the base.
    pub fn frozen_message_count(&self) -> usize {
        self.msgs.len()
    }

    /// Frozen-only idle intervals of `pe`, in time order.
    pub fn gaps_of(&self, pe: PeId) -> &[(Time, Time)] {
        &self.pe_gaps[pe.index()]
    }

    /// Frozen-only free bus windows, in time order.
    pub fn bus_windows(&self) -> &[(Time, Time)] {
        &self.bus_windows
    }
}

/// Internal per-job scheduling state (one expanded process instance).
struct JobRec {
    id: JobId,
    pe: PeId,
    wcet: Time,
    release: Time,
    deadline: Time,
    priority: Time,
    gap_hint: u32,
    preds_remaining: u32,
    ready: Time,
    /// Index of the owning `AppSpec` in the input slice.
    spec: usize,
}

/// Ready-queue entry. Jobs are ordered by *urgency* — the latest start
/// time `deadline − partial critical path` (smaller = more urgent) — so
/// tight-deadline instances are not crowded out by lax ones sharing the
/// hyperperiod. Ties fall back to the longer critical path, then earliest
/// ready, then the smallest job index (full determinism).
struct ReadyEntry {
    /// `deadline − pcp`, saturating at zero.
    urgency: Time,
    priority: Time,
    ready: Time,
    job_idx: usize,
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ReadyEntry {}
impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: larger = popped first, so reverse the
        // urgency comparison (smallest urgency pops first).
        other
            .urgency
            .cmp(&self.urgency)
            .then_with(|| self.priority.cmp(&other.priority))
            .then_with(|| other.ready.cmp(&self.ready))
            .then_with(|| other.job_idx.cmp(&self.job_idx))
    }
}

/// Cached partial-critical-path priorities of one graph slot, keyed by
/// the exact cost inputs ([`PriorityCosts`]) the priorities are a pure
/// function of — so the cache stays sound even when one `Scheduler` is
/// reused across different applications or architectures (an assignment
/// vector alone would alias graphs with different WCETs or topology).
#[derive(Default)]
struct PrioEntry {
    costs: PriorityCosts,
    prio: Vec<Time>,
}

/// The reusable scheduling engine: scratch arenas plus bookkeeping of
/// what the last run touched (consumed by the incremental slack path).
///
/// One `Scheduler` serves any number of evaluations; it is cheap to
/// construct but profitable to keep, since all per-evaluation arenas
/// (job records, ready heap, timelines, priority cache) are reused.
#[derive(Default)]
pub struct Scheduler {
    jobs: Vec<JobRec>,
    /// Flattened per-(spec, graph) base index into `jobs`.
    graph_bases: Vec<usize>,
    /// Offset of each spec's first graph in `graph_bases`.
    spec_offsets: Vec<usize>,
    heap: BinaryHeap<ReadyEntry>,
    pes: Vec<PeTimeline>,
    bus: Option<BusTimeline>,
    /// Priority cache, flattened parallel to `graph_bases`.
    prio_cache: Vec<PrioEntry>,
    assign_scratch: Vec<Option<PeId>>,
    cost_scratch: PriorityCosts,
    /// Which PEs the last run placed a new job on.
    touched: Vec<bool>,
    /// Bus time the last run added per slot occurrence.
    new_bus: BTreeMap<u64, Time>,
    raw_schedules: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("raw_schedules", &self.raw_schedules)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A fresh engine with empty scratch arenas.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Number of raw schedules this engine has executed (every call to
    /// [`schedule`](Self::schedule) / [`schedule_with_slack`](Self::schedule_with_slack)
    /// that got past input validation).
    pub fn raw_schedule_count(&self) -> usize {
        self.raw_schedules
    }

    /// Which PEs the most recent run placed a new job on (indexed by
    /// PE). Empty before the first run. A failed run leaves the partial
    /// placements it made before erroring — only read this after a
    /// successful [`schedule`](Self::schedule) /
    /// [`schedule_with_slack`](Self::schedule_with_slack).
    pub fn touched_pes(&self) -> &[bool] {
        &self.touched
    }

    /// True if the most recent run placed any message on the bus. The
    /// same caveat as [`touched_pes`](Self::touched_pes) applies to
    /// failed runs.
    pub fn bus_touched(&self) -> bool {
        !self.new_bus.is_empty()
    }

    /// Schedules `apps` on top of `base`, reusing the scratch arenas.
    /// Produces exactly the table [`crate::schedule`] would produce for
    /// the same inputs.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<ScheduleTable, SchedError> {
        self.run(arch, apps, base)
    }

    /// Like [`schedule`](Self::schedule) but also derives the slack
    /// profile incrementally: untouched PEs reuse the baked frozen-only
    /// gap lists and only bus occurrences carrying a new message have
    /// their free windows patched. The profile is identical to
    /// [`SlackProfile::from_table`] on the returned table.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    /// The incremental slack of the most recent successful run.
    fn slack_profile(&self, base: &FrozenBase) -> SlackProfile {
        let pe_gaps: Vec<Vec<(Time, Time)>> = (0..self.pes.len())
            .map(|i| {
                if self.touched[i] {
                    self.pes[i].gaps()
                } else {
                    base.pe_gaps[i].clone()
                }
            })
            .collect();
        // Every occurrence a new message landed in had free room, so it
        // appears in the baked window list; patching is a linear merge.
        let mut patched = 0usize;
        let mut windows = Vec::with_capacity(base.bus_windows.len());
        for (k, &(ws, we)) in base.bus_windows.iter().enumerate() {
            match self.new_bus.get(&base.window_occ[k]) {
                None => windows.push((ws, we)),
                Some(&added) => {
                    patched += 1;
                    let ns = ws + added;
                    if ns < we {
                        windows.push((ns, we));
                    }
                }
            }
        }
        debug_assert_eq!(
            patched,
            self.new_bus.len(),
            "every new message lands in a baked window"
        );
        SlackProfile::from_parts(base.horizon, pe_gaps, windows)
    }

    fn run(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<ScheduleTable, SchedError> {
        check_horizon(apps, base.horizon)?;
        debug_assert_eq!(arch.pe_count(), base.pes.len(), "base built for this arch");
        self.raw_schedules += 1;
        let horizon = base.horizon;

        let Scheduler {
            jobs,
            graph_bases,
            spec_offsets,
            heap,
            pes,
            bus,
            prio_cache,
            assign_scratch,
            cost_scratch,
            touched,
            new_bus,
            ..
        } = self;

        // --- Reset scratch from the baked base ---------------------------
        if pes.len() == base.pes.len() {
            for (tl, b) in pes.iter_mut().zip(&base.pes) {
                tl.copy_from(b);
            }
        } else {
            *pes = base.pes.clone();
        }
        match bus {
            Some(b)
                if b.horizon() == horizon
                    && b.occurrence_count() == base.bus.occurrence_count() =>
            {
                b.reset_from(&base.bus);
            }
            _ => *bus = Some(base.bus.clone()),
        }
        let bus = bus.as_mut().expect("just set");
        touched.clear();
        touched.resize(base.pes.len(), false);
        new_bus.clear();

        let mut out_jobs: Vec<ScheduledJob> = Vec::new();
        let mut out_msgs: Vec<ScheduledMessage> = Vec::new();
        out_jobs.extend_from_slice(&base.jobs);
        out_msgs.extend_from_slice(&base.msgs);

        // --- Expand jobs (priorities served from the cache) ---------------
        jobs.clear();
        graph_bases.clear();
        spec_offsets.clear();
        for (si, spec) in apps.iter().enumerate() {
            spec_offsets.push(graph_bases.len());
            for (gi, g) in spec.app.graphs.iter().enumerate() {
                let flat = graph_bases.len();
                graph_bases.push(jobs.len());
                // Exact priorities from the mapping, cached per graph
                // slot while the cost inputs are unchanged (hint-only
                // moves and moves in other graphs never recompute).
                assign_scratch.clear();
                assign_scratch.extend(
                    g.dag()
                        .node_ids()
                        .map(|n| spec.mapping.pe_of(ProcRef::new(gi, n))),
                );
                cost_scratch.fill(arch, g, assign_scratch);
                if prio_cache.len() <= flat {
                    prio_cache.resize_with(flat + 1, PrioEntry::default);
                }
                let entry = &mut prio_cache[flat];
                if entry.costs != *cost_scratch {
                    entry.prio = cost_scratch.priorities(g);
                    std::mem::swap(&mut entry.costs, cost_scratch);
                }
                let prio = &entry.prio;

                let instances = horizon.ticks() / g.period.ticks();
                for k in 0..instances as u32 {
                    let release = Time::new(k as u64 * g.period.ticks());
                    let deadline = release + g.deadline;
                    for n in g.dag().node_ids() {
                        let pr = ProcRef::new(gi, n);
                        let pe = spec
                            .mapping
                            .pe_of(pr)
                            .ok_or(SchedError::MappingIncomplete {
                                app: spec.id,
                                proc_ref: pr,
                            })?;
                        let wcet = g.process(n).wcets.get(pe).ok_or(SchedError::NotAllowed {
                            app: spec.id,
                            proc_ref: pr,
                            pe,
                        })?;
                        jobs.push(JobRec {
                            id: JobId::new(spec.id, gi, k, n),
                            pe,
                            wcet,
                            release,
                            deadline,
                            priority: prio[n.index()],
                            gap_hint: spec.hints.proc_gap(pr),
                            preds_remaining: g.dag().in_degree(n) as u32,
                            ready: release,
                            spec: si,
                        });
                    }
                }
            }
        }
        let job_index =
            |si: usize, gi: usize, instance: u32, node: incdes_graph::NodeId| -> usize {
                let g = &apps[si].app.graphs[gi];
                graph_bases[spec_offsets[si] + gi]
                    + instance as usize * g.process_count()
                    + node.index()
            };

        // --- List scheduling ----------------------------------------------
        heap.clear();
        for (i, j) in jobs.iter().enumerate() {
            if j.preds_remaining == 0 {
                heap.push(ReadyEntry {
                    urgency: j.deadline.saturating_sub(j.priority),
                    priority: j.priority,
                    ready: j.ready,
                    job_idx: i,
                });
            }
        }

        let mut scheduled = 0usize;
        while let Some(entry) = heap.pop() {
            let idx = entry.job_idx;
            let (id, pe, wcet, ready, deadline, gap_hint, si) = {
                let j = &jobs[idx];
                (j.id, j.pe, j.wcet, j.ready, j.deadline, j.gap_hint, j.spec)
            };
            let start = pes[pe.index()]
                .reserve_earliest(ready, wcet, gap_hint)
                .map_err(|source| SchedError::NoGap { job: id, source })?;
            touched[pe.index()] = true;
            let end = start + wcet;
            if end > deadline {
                return Err(SchedError::DeadlineMiss {
                    job: id,
                    end,
                    deadline,
                });
            }
            out_jobs.push(ScheduledJob {
                job: id,
                pe,
                start,
                end,
                release: jobs[idx].release,
                deadline,
            });
            scheduled += 1;

            // Propagate to successors: messages over the bus where needed.
            let spec = &apps[si];
            let g = &spec.app.graphs[id.graph];
            for &e in g.dag().out_edges(id.node) {
                let succ_node = g.dag().target(e);
                let succ_idx = job_index(si, id.graph, id.instance, succ_node);
                let succ_pe = jobs[succ_idx].pe;
                let data_ready = if succ_pe == pe {
                    end
                } else {
                    let mref = crate::mapping::MsgRef::new(id.graph, e);
                    let tx = arch.bus().transmission_time(g.message(e).bytes);
                    let r = bus
                        .schedule_message_nth(pe, end, tx, spec.hints.msg_slot(mref) as usize)
                        .map_err(|source| SchedError::NoSlot {
                            job: id,
                            msg: mref,
                            source,
                        })?;
                    *new_bus.entry(r.occurrence).or_insert(Time::ZERO) += tx;
                    out_msgs.push(ScheduledMessage {
                        app: spec.id,
                        msg: mref,
                        instance: id.instance,
                        reservation: r,
                    });
                    r.arrival
                };
                let succ = &mut jobs[succ_idx];
                succ.ready = succ.ready.max(data_ready);
                succ.preds_remaining -= 1;
                if succ.preds_remaining == 0 {
                    heap.push(ReadyEntry {
                        urgency: succ.deadline.saturating_sub(succ.priority),
                        priority: succ.priority,
                        ready: succ.ready,
                        job_idx: succ_idx,
                    });
                }
            }
        }
        debug_assert_eq!(scheduled, jobs.len(), "acyclic graphs schedule fully");

        Ok(ScheduleTable::new(horizon, out_jobs, out_msgs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Hints, Mapping};
    use incdes_graph::NodeId;
    use incdes_model::{AppId, Application, BusConfig, Message, Process, ProcessGraph};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn chain_app() -> (Application, Mapping) {
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let mut m = Mapping::new();
        m.assign(ProcRef::new(0, a), PeId(0));
        m.assign(ProcRef::new(0, b), PeId(1));
        (app, m)
    }

    #[test]
    fn engine_matches_schedule_and_reuses_scratch() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let reference = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();
        for _ in 0..3 {
            let (table, slack) = engine.schedule_with_slack(&arch, &[spec], &base).unwrap();
            assert_eq!(table, reference);
            assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
        }
        assert_eq!(engine.raw_schedule_count(), 3);
        assert!(engine.touched_pes().iter().any(|&t| t));
        assert!(engine.bus_touched());
    }

    #[test]
    fn frozen_base_bakes_replay_once() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base = FrozenBase::new(&arch, Some(&first), t(100)).unwrap();
        assert_eq!(base.frozen_job_count(), 2);
        assert_eq!(base.frozen_message_count(), 1);
        assert_eq!(base.horizon(), t(100));
        assert_eq!(base.pe_count(), 2);
        // Frozen-only slack matches the profile of the frozen table.
        let frozen_slack = SlackProfile::from_table(&arch, &first);
        assert_eq!(base.gaps_of(PeId(0)), frozen_slack.gaps_of(PeId(0)));
        assert_eq!(base.bus_windows(), frozen_slack.bus_windows());

        // Scheduling a second app on the base matches the naive path.
        let (app2, mapping2) = chain_app();
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping2, &hints);
        let reference = crate::schedule(&arch, &[spec2], Some(&first), t(100)).unwrap();
        let mut engine = Scheduler::new();
        let (table, slack) = engine.schedule_with_slack(&arch, &[spec2], &base).unwrap();
        assert_eq!(table, reference);
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
    }

    #[test]
    fn frozen_base_rejects_horizon_mismatch() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = crate::schedule(&arch, &[spec], None, t(100)).unwrap();
        assert_eq!(
            FrozenBase::new(&arch, Some(&first), t(200)).unwrap_err(),
            SchedError::FrozenConflict
        );
        assert!(matches!(
            FrozenBase::empty(&arch, Time::ZERO).unwrap_err(),
            SchedError::BadHorizon { .. }
        ));
        assert!(matches!(
            FrozenBase::empty(&arch, t(15)).unwrap_err(),
            SchedError::BadHorizon { .. }
        ));
    }

    #[test]
    fn untouched_pes_reuse_frozen_gap_lists() {
        let arch = arch2();
        // Current app occupies only PE0; PE1 carries only frozen load.
        let (fapp, fmap) = chain_app();
        let hints = Hints::empty();
        let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &hints);
        let frozen = crate::schedule(&arch, &[fspec], None, t(100)).unwrap();
        let base = FrozenBase::new(&arch, Some(&frozen), t(100)).unwrap();

        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(5)));
        let app = Application::new("solo", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);

        let mut engine = Scheduler::new();
        let (table, slack) = engine.schedule_with_slack(&arch, &[spec], &base).unwrap();
        assert!(engine.touched_pes()[0]);
        assert!(!engine.touched_pes()[1]);
        assert!(!engine.bus_touched());
        assert_eq!(slack.gaps_of(PeId(1)), base.gaps_of(PeId(1)));
        assert_eq!(slack, SlackProfile::from_table(&arch, &table));
        let _ = table.job(JobId::new(AppId(1), 0, 0, NodeId(0))).unwrap();
    }

    /// Reusing one `Scheduler` across *different* applications whose
    /// graphs happen to share a node → PE assignment must not serve
    /// stale priorities: the cache is keyed by the full cost inputs
    /// (WCETs, topology, message sizes), not the assignment alone.
    #[test]
    fn priority_cache_does_not_alias_across_apps() {
        let arch = arch2();
        let base = FrozenBase::empty(&arch, t(200)).unwrap();
        let mut engine = Scheduler::new();
        let hints = Hints::empty();

        // App A: root → long(50) and root → short(5), all on PE0 — the
        // long branch outranks the short one.
        let mut ga = ProcessGraph::new("ga", t(200), t(200));
        let r = ga.add_process(Process::new("r").wcet(PeId(0), t(2)));
        let l = ga.add_process(Process::new("l").wcet(PeId(0), t(50)));
        let s = ga.add_process(Process::new("s").wcet(PeId(0), t(5)));
        ga.add_message(r, l, Message::new("m1", 1)).unwrap();
        ga.add_message(r, s, Message::new("m2", 1)).unwrap();
        let app_a = Application::new("a", vec![ga]);
        // App B: same shape and assignment, but the branch weights are
        // swapped — stale priorities from A would flip its order.
        let mut gb = ProcessGraph::new("gb", t(200), t(200));
        let r2 = gb.add_process(Process::new("r").wcet(PeId(0), t(2)));
        let l2 = gb.add_process(Process::new("l").wcet(PeId(0), t(5)));
        let s2 = gb.add_process(Process::new("s").wcet(PeId(0), t(50)));
        gb.add_message(r2, l2, Message::new("m1", 1)).unwrap();
        gb.add_message(r2, s2, Message::new("m2", 1)).unwrap();
        let app_b = Application::new("b", vec![gb]);

        let mapping: Mapping = [
            (ProcRef::new(0, NodeId(0)), PeId(0)),
            (ProcRef::new(0, NodeId(1)), PeId(0)),
            (ProcRef::new(0, NodeId(2)), PeId(0)),
        ]
        .into_iter()
        .collect();
        for app in [&app_a, &app_b, &app_a] {
            let spec = AppSpec::new(AppId(0), app, &mapping, &hints);
            let engine_table = engine.schedule(&arch, &[spec], &base).unwrap();
            let naive = crate::schedule(&arch, &[spec], None, t(200)).unwrap();
            assert_eq!(engine_table, naive, "stale priorities served");
        }
    }

    #[test]
    fn priority_cache_invalidates_on_remap() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(4)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(3)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        for assignment in [
            [PeId(0), PeId(0)],
            [PeId(1), PeId(1)],
            [PeId(0), PeId(1)],
            [PeId(0), PeId(0)],
        ] {
            let mut mapping = Mapping::new();
            mapping.assign(ProcRef::new(0, NodeId(0)), assignment[0]);
            mapping.assign(ProcRef::new(0, NodeId(1)), assignment[1]);
            let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
            let engine_table = engine.schedule(&arch, &[spec], &base).unwrap();
            let naive = crate::schedule(&arch, &[spec], None, t(100)).unwrap();
            assert_eq!(engine_table, naive, "assignment {assignment:?}");
        }
    }
}
