//! The incremental evaluation engine.
//!
//! The mapping heuristics evaluate thousands of design alternatives per
//! scenario, and every alternative shares the same *frozen* part: the
//! existing applications' jobs and messages, which requirement (a) of
//! the paper forbids touching. The plain [`crate::schedule`] entry point
//! re-replays and re-validates that frozen schedule — and re-sorts its
//! messages, re-allocates every timeline, and re-computes priorities —
//! on every call.
//!
//! This module splits the work into three tiers:
//!
//! * [`FrozenBase`] replays and validates the frozen schedule **once**,
//!   baking per-PE [`PeTimeline`]s, a [`BusTimeline`] occupancy
//!   snapshot, and the frozen-only slack (`Arc`-shared gap lists and bus
//!   windows).
//! * [`Scheduler`] holds reusable scratch arenas (job records, the ready
//!   heap, a per-graph priority cache keyed by the node → PE assignment)
//!   and schedules the *current* applications on top of a cheap reset of
//!   the baked base — the **full-engine** path, retained as the oracle
//!   for the tier below.
//! * [`Scheduler::schedule_delta_with_slack`] is **delta scheduling**:
//!   every successful run records its placement sequence (pop order,
//!   reservations, emitted messages, per-job heap entry/exit steps).
//!   When the next evaluation differs from the recorded one by a small
//!   design change (the single-move neighbors the MH/SA strategies
//!   explore almost exclusively), the engine computes the first
//!   placement step the change can possibly affect, *undoes* only the
//!   recorded suffix from the live timelines (no O(frozen) reset at
//!   all), splices the untouched prefix from the record, and re-runs the
//!   list scheduler for the suffix only. The result is bit-identical to
//!   the full path by construction of the divergence analysis, and the
//!   differential fuzz suite in `tests/delta_equivalence.rs` pins it
//!   against the one-shot [`crate::schedule`] oracle.
//!
//! # Delta-path decision rules
//!
//! [`Scheduler::schedule_delta_with_slack`] falls back to the full
//! engine (reset from the base and schedule everything) whenever
//!
//! * no record exists — first evaluation (a *failed* run is fine: the
//!   partially processed step is rolled back, so the completed prefix
//!   still satisfies the record invariant and infeasible trials — the
//!   bulk of the MH/SA neighborhoods — stay on the delta path), or
//! * the record was made against a *different* [`FrozenBase`] (bases
//!   carry a unique generation id; a clone keeps its originator's id
//!   because its content is identical), or
//! * the job structure changed (different apps, graph shapes, instance
//!   counts — anything that renumbers the job arena).
//!
//! Otherwise the divergence analysis decides how much of the record
//! survives: a job's recorded placement is **spliced** (kept verbatim)
//! when it was popped before the first step at which any *dirty* job
//! could have perturbed the run. A job is processing-dirty when its own
//! placement inputs changed (PE, gap hint, an out-edge slot hint, or a
//! successor's PE — the latter flips message emission on/off), and
//! key-dirty when its priority changed (a remap re-weights the moved
//! node's ancestor cone); processing-dirty jobs invalidate from their
//! recorded *pop* step, key-dirty jobs from the step they *entered the
//! ready heap*, since a changed heap key can reorder pops from that
//! point on. An arbitrary diff degrades gracefully to divergence 0 —
//! which still skips the O(frozen) timeline reset by undoing the
//! previous run's placements instead.
//!
//! # The record cache
//!
//! One live record only splices well along *chains* — it describes the
//! previous run, which the MH/SA trial loops keep abandoning: trials
//! T1, T2, T3 all neighbor the same pivot P, yet T2 would diff against
//! T1 (two moves apart) instead of P (one move). The engine therefore
//! keeps a small cache of retired records keyed by a 64-bit solution
//! fingerprint (the same FxHash key the mapping memo uses). Records
//! enter it by *promotion on demand*: the first run that names the live
//! solution as its preferred predecessor snapshots the live record into
//! the cache before replacing it — so pivots get cached the moment they
//! are revealed as pivots, while straight-line mutation chains (which
//! never look back) promote at most a couple of records before the
//! throttle stops cloning. The caller ranks the cached solutions by
//! variable diff and passes the winner's fingerprint as `prefer`; an
//! A→B→A revisit thus splices from A's own record at distance zero even
//! though B ran in between. Splicing from a cached record undoes the
//! live run only down to the common prefix of the two records and
//! *replays* the cached prefix beyond it — an exact reproduction, by
//! induction over the shared prefix. When the undo would walk nearly
//! the whole live record (early divergence — the typical remap, whose
//! priority re-weighting dirties the graph's ancestor cone), the engine
//! instead **rebases**: a bulk timeline reset from the baked base plus
//! a replay of the whole source prefix, priced against the undo walk.
//! Eviction is LRU by splice-use stamp; capacity is
//! [`Scheduler::set_record_cache_capacity`] (0 disables cached-record
//! splicing entirely, leaving single-record delta scheduling).
//!
//! The slack profiles returned by every path are `Arc`-backed
//! ([`SlackProfile::from_shared`]): untouched PEs alias the frozen
//! base's gap lists, and on the delta path PEs untouched *by the delta*
//! alias the previous evaluation's lists, so profile assembly costs one
//! reference-count bump per unchanged resource.

use crate::job::JobId;
use crate::list::{AppSpec, SchedError};
use crate::pe_timeline::PeTimeline;
use crate::priority::PriorityCosts;
use crate::slack::{GapList, SlackProfile};
use crate::table::{ScheduleTable, ScheduledJob, ScheduledMessage};
use incdes_model::{AppId, Architecture, PeId, ProcRef, Time};
use incdes_obs::counters::{self, Counter};
use incdes_obs::phase::{self, Phase};
use incdes_tdma::BusTimeline;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Checks that `horizon` is positive and a multiple of every graph
/// period of `apps` — the per-call half of [`crate::schedule`]'s input
/// validation (the bus-cycle half is checked once by [`FrozenBase`]).
///
/// # Errors
///
/// [`SchedError::BadHorizon`] on violation.
pub fn check_horizon(apps: &[AppSpec<'_>], horizon: Time) -> Result<(), SchedError> {
    if horizon.is_zero() {
        return Err(SchedError::BadHorizon { horizon });
    }
    for spec in apps {
        for g in &spec.app.graphs {
            if g.period.is_zero() || !(horizon % g.period).is_zero() {
                return Err(SchedError::BadHorizon { horizon });
            }
        }
    }
    Ok(())
}

/// Source of unique [`FrozenBase`] generation ids.
static NEXT_BASE_ID: AtomicU64 = AtomicU64::new(1);

/// The frozen schedule replayed, validated and baked — built once per
/// system state, shared by every evaluation on that state (and, via
/// [`Arc`], across the campaign runner's per-step contexts).
#[derive(Debug, Clone)]
pub struct FrozenBase {
    /// Unique id of this bake (copied by `Clone` — a clone's *content*
    /// is identical, which is all the delta-record guard needs).
    id: u64,
    horizon: Time,
    /// Per-PE busy timelines holding exactly the frozen jobs.
    pes: Vec<PeTimeline>,
    /// Bus occupancy holding exactly the frozen messages.
    bus: BusTimeline,
    /// The frozen jobs, in replay order.
    jobs: Vec<ScheduledJob>,
    /// The frozen messages, in frame-replay order.
    msgs: Vec<ScheduledMessage>,
    /// Frozen-only idle intervals per PE, shared with every profile that
    /// leaves the PE untouched.
    pe_gaps: Vec<GapList>,
    /// Frozen-only free bus windows, in time order, shared likewise.
    bus_windows: GapList,
    /// Slot-occurrence index behind each entry of `bus_windows`.
    window_occ: Vec<u64>,
}

impl FrozenBase {
    /// Replays `frozen` (if any) over `[0, horizon)` on `arch` and bakes
    /// the result. Equivalent to the validation + replay prologue of
    /// [`crate::schedule`], performed once.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadHorizon`] if `horizon` is zero or not a multiple
    /// of the bus cycle; [`SchedError::FrozenConflict`] if the frozen
    /// table does not cover exactly `horizon` or cannot be replayed.
    pub fn new(
        arch: &Architecture,
        frozen: Option<&ScheduleTable>,
        horizon: Time,
    ) -> Result<Self, SchedError> {
        if horizon.is_zero() {
            return Err(SchedError::BadHorizon { horizon });
        }
        let _bake = phase::scope(Phase::Bake);
        let mut bus = BusTimeline::new(arch.bus(), horizon)
            .map_err(|_| SchedError::BadHorizon { horizon })?;
        let mut pes: Vec<PeTimeline> = (0..arch.pe_count())
            .map(|_| PeTimeline::new(horizon))
            .collect();
        let mut jobs: Vec<ScheduledJob> = Vec::new();
        let mut msgs: Vec<ScheduledMessage> = Vec::new();
        if let Some(fr) = frozen {
            if fr.horizon() != horizon {
                return Err(SchedError::FrozenConflict);
            }
            for j in fr.jobs() {
                if j.pe.index() >= pes.len() {
                    return Err(SchedError::FrozenConflict);
                }
                pes[j.pe.index()]
                    .reserve(j.start, j.end)
                    .map_err(|_| SchedError::FrozenConflict)?;
                jobs.push(*j);
            }
            // Replay messages in frame order so packing offsets reproduce.
            let mut ordered: Vec<&ScheduledMessage> = fr.messages().iter().collect();
            ordered.sort_by_key(|m| (m.reservation.occurrence, m.reservation.transmit_start));
            for m in ordered {
                let r = bus
                    .reserve_in_occurrence(
                        m.reservation.owner,
                        m.reservation.occurrence,
                        m.reservation.duration(),
                    )
                    .map_err(|_| SchedError::FrozenConflict)?;
                if r.transmit_start != m.reservation.transmit_start {
                    return Err(SchedError::FrozenConflict);
                }
                msgs.push(*m);
            }
        }
        // Consolidate the replayed reservations so every scratch
        // timeline restored from this base starts with an empty overlay
        // — per-reservation edits then never shift the frozen layer.
        for tl in &mut pes {
            tl.consolidate();
        }
        let pe_gaps = pes.iter().map(|tl| tl.gap_iter().collect()).collect();
        let mut bus_windows = Vec::new();
        let mut window_occ = Vec::new();
        for idx in 0..bus.occurrence_count() {
            let occ = bus.occurrence(idx).expect("index < count");
            let used = bus.used(idx);
            if used < occ.length {
                bus_windows.push((occ.start + used, occ.end()));
                window_occ.push(idx);
            }
        }
        counters::bump(Counter::BaseBakes);
        Ok(FrozenBase {
            id: NEXT_BASE_ID.fetch_add(1, AtomicOrdering::Relaxed),
            horizon,
            pes,
            bus,
            jobs,
            msgs,
            pe_gaps,
            bus_windows: bus_windows.into(),
            window_occ,
        })
    }

    /// An empty base (no frozen applications) over `horizon`.
    ///
    /// # Errors
    ///
    /// As [`FrozenBase::new`].
    pub fn empty(arch: &Architecture, horizon: Time) -> Result<Self, SchedError> {
        FrozenBase::new(arch, None, horizon)
    }

    /// The unique generation id of this bake. Clones share it (their
    /// content is identical); two independently built bases never do.
    /// The delta-scheduling record is guarded by this id.
    pub fn generation(&self) -> u64 {
        self.id
    }

    /// The scheduling horizon the base covers.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Number of PEs in the baked timelines.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Number of frozen jobs baked into the base.
    pub fn frozen_job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of frozen messages baked into the base.
    pub fn frozen_message_count(&self) -> usize {
        self.msgs.len()
    }

    /// Frozen-only idle intervals of `pe`, in time order.
    pub fn gaps_of(&self, pe: PeId) -> &[(Time, Time)] {
        &self.pe_gaps[pe.index()]
    }

    /// The shared storage behind [`gaps_of`](Self::gaps_of); profiles of
    /// evaluations that leave `pe` untouched alias it.
    pub fn gaps_shared(&self, pe: PeId) -> &GapList {
        &self.pe_gaps[pe.index()]
    }

    /// Frozen-only free bus windows, in time order.
    pub fn bus_windows(&self) -> &[(Time, Time)] {
        &self.bus_windows
    }

    /// The shared storage behind [`bus_windows`](Self::bus_windows).
    pub fn bus_windows_shared(&self) -> &GapList {
        &self.bus_windows
    }
}

/// A design variable that changed between two evaluated solutions,
/// passed to [`Scheduler::schedule_delta_hinted_with_slack`] so the job
/// arena can be patched instead of rebuilt. Sorted order (`spec`,
/// `graph`, `node`/`edge`) matches expansion order, which keeps error
/// reporting identical to a full expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChangedVar {
    /// The mapping (PE) and/or gap hint of one process changed.
    Proc {
        /// Index of the owning `AppSpec`.
        spec: usize,
        /// Graph index inside the application.
        graph: usize,
        /// The process node.
        node: incdes_graph::NodeId,
    },
    /// The slot hint of one message changed.
    Msg {
        /// Index of the owning `AppSpec`.
        spec: usize,
        /// Graph index inside the application.
        graph: usize,
        /// The message edge.
        edge: incdes_graph::EdgeId,
    },
}

/// Internal per-job scheduling state (one expanded process instance).
///
/// Deliberately *static* per run: the dynamic fields the scheduling
/// loop rewrites on every step (`ready`, `preds_remaining`) live in
/// dense parallel arrays on [`Scheduler`] instead, so the hot successor
/// updates and the heap seed touch two packed arrays rather than
/// striding through this fat record — and the loop can hold the arena
/// immutably while mutating the per-run state.
struct JobRec {
    id: JobId,
    pe: PeId,
    wcet: Time,
    release: Time,
    deadline: Time,
    priority: Time,
    gap_hint: u32,
    /// Static in-degree, kept so the dynamic state can be reset without
    /// consulting the graph.
    in_deg: u32,
    /// Index of the owning `AppSpec` in the input slice.
    spec: usize,
}

/// Ready-queue entry. Jobs are ordered by *urgency* — the latest start
/// time `deadline − partial critical path` (smaller = more urgent) — so
/// tight-deadline instances are not crowded out by lax ones sharing the
/// hyperperiod. Ties fall back to the longer critical path, then earliest
/// ready, then the smallest job index (full determinism).
struct ReadyEntry {
    /// `deadline − pcp`, saturating at zero.
    urgency: Time,
    priority: Time,
    ready: Time,
    job_idx: usize,
}

impl ReadyEntry {
    fn of(jobs: &[JobRec], ready: &[Time], job_idx: usize) -> Self {
        let j = &jobs[job_idx];
        ReadyEntry {
            urgency: j.deadline.saturating_sub(j.priority),
            priority: j.priority,
            ready: ready[job_idx],
            job_idx,
        }
    }
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ReadyEntry {}
impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: larger = popped first, so reverse the
        // urgency comparison (smallest urgency pops first).
        other
            .urgency
            .cmp(&self.urgency)
            .then_with(|| self.priority.cmp(&other.priority))
            .then_with(|| other.ready.cmp(&self.ready))
            .then_with(|| other.job_idx.cmp(&self.job_idx))
    }
}

/// Cached partial-critical-path priorities of one graph slot, keyed by
/// the exact cost inputs ([`PriorityCosts`]) the priorities are a pure
/// function of — so the cache stays sound even when one `Scheduler` is
/// reused across different applications or architectures (an assignment
/// vector alone would alias graphs with different WCETs or topology).
#[derive(Default)]
struct PrioEntry {
    costs: PriorityCosts,
    prio: Vec<Time>,
}

/// Structural identity of one graph slot under the current architecture:
/// everything that shapes job expansion and message emission *besides*
/// the design variables (mapping + hints). Two runs with equal shapes,
/// equal job layout and the same [`FrozenBase`] differ only in design
/// variables, which is exactly what the per-job dirty analysis covers.
#[derive(Debug, Default, PartialEq, Eq)]
struct GraphShape {
    period: Time,
    deadline: Time,
    node_count: u32,
    /// Per edge: `(source, target, transmission time)`.
    edges: Vec<(u32, u32, Time)>,
}

impl Clone for GraphShape {
    fn clone(&self) -> Self {
        GraphShape {
            period: self.period,
            deadline: self.deadline,
            node_count: self.node_count,
            edges: self.edges.clone(),
        }
    }

    // The run record re-snapshots shapes every evaluation; reusing the
    // edge allocation keeps that free of per-eval allocations.
    fn clone_from(&mut self, source: &Self) {
        self.period = source.period;
        self.deadline = source.deadline;
        self.node_count = source.node_count;
        self.edges.clone_from(&source.edges);
    }
}

/// Immutable snapshot of the arena structure one expansion produced:
/// job layout, per-spec application ids and graph shapes. Shared
/// behind an `Arc` between the scheduler and every record expanded
/// under the same structure, so record applicability collapses to a
/// single pointer comparison instead of deep `Vec` equality per probe.
#[derive(Debug, Default, PartialEq, Eq)]
struct ArenaTag {
    horizon: Time,
    graph_bases: Vec<usize>,
    spec_offsets: Vec<usize>,
    app_ids: Vec<AppId>,
    shapes: Vec<GraphShape>,
}

/// Per-job static snapshot of one run — assigned PE, gap hint, WCET,
/// priority — packed into one struct so the divergence scan touches a
/// single cache line per job and the snapshot is one flat pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JobSnap {
    pe: PeId,
    gap_hint: u32,
    wcet: Time,
    priority: Time,
}

/// One placement step of a recorded run, in pop order.
#[derive(Debug, Clone, Copy)]
struct StepRec {
    /// Index into the job arena (stable while the job structure is).
    job: u32,
    start: Time,
    end: Time,
    /// Range into [`RunRecord::msgs`] emitted while processing this step.
    msg_lo: u32,
    msg_hi: u32,
}

/// The record of one run: everything delta scheduling needs to splice
/// an unchanged prefix and undo the changed suffix. The *live* record
/// carries the standing invariant — established on every run and voided
/// by dropping it — that the scheduler's live timelines hold exactly
/// `base(base_id) + every recorded placement`. Cached records carry no
/// timeline invariant: they describe the run that produced them, and
/// splicing from one replays the part of its prefix the live record
/// does not share.
#[derive(Debug)]
struct RunRecord {
    /// [`FrozenBase::generation`] the run was made against.
    base_id: u64,
    /// Placement steps in pop order (one per job).
    steps: Vec<StepRec>,
    /// Current-app messages in emission order, step ranges index here.
    msgs: Vec<ScheduledMessage>,
    /// Per job: its position in `steps`.
    pop_step: Vec<u32>,
    /// Per job: first step index at which it sat in the ready heap.
    push_step: Vec<u32>,
    /// Per-job static snapshot: assigned PE, gap hint, WCET, priority.
    snap: Vec<JobSnap>,
    /// Per graph slot (parallel to `graph_bases`): per-edge slot hints.
    edge_hints: Vec<Vec<u32>>,
    /// Structure guard: the arena snapshot the run was expanded under
    /// (job layout, application ids, graph shapes), shared with the
    /// scheduler's current tag while the structure is unchanged.
    arena: Arc<ArenaTag>,
    /// Slack storage of the run, if a profile was derived — the next
    /// delta run aliases the lists of PEs it does not change.
    gap_arcs: Option<Arc<[GapList]>>,
    bus_arc: Option<GapList>,
}

impl Clone for RunRecord {
    fn clone(&self) -> Self {
        RunRecord {
            base_id: self.base_id,
            steps: self.steps.clone(),
            msgs: self.msgs.clone(),
            pop_step: self.pop_step.clone(),
            push_step: self.push_step.clone(),
            snap: self.snap.clone(),
            edge_hints: self.edge_hints.clone(),
            arena: Arc::clone(&self.arena),
            gap_arcs: self.gap_arcs.clone(),
            bus_arc: self.bus_arc.clone(),
        }
    }
}

impl RunRecord {
    /// An empty record carrying no placements — only its allocations
    /// matter, every field is refilled before use.
    fn empty(arena: &Arc<ArenaTag>) -> Self {
        RunRecord {
            base_id: 0,
            steps: Vec::new(),
            msgs: Vec::new(),
            pop_step: Vec::new(),
            push_step: Vec::new(),
            snap: Vec::new(),
            edge_hints: Vec::new(),
            arena: Arc::clone(arena),
            gap_arcs: None,
            bus_arc: None,
        }
    }
}

/// Default capacity of the fingerprint-keyed record cache (the live
/// record is tracked separately and does not count against it). Sized
/// for the search loops' working set: one pivot plus the last few
/// trials; anything older is almost never the closest predecessor.
pub const RECORD_CACHE_CAP: usize = 4;

/// One fingerprint-keyed record of a successful run.
#[derive(Debug)]
struct CacheEntry {
    /// Solution fingerprint the caller stored the run under.
    fp: u64,
    /// LRU stamp (bumped on store and on use as a splice source).
    stamp: u64,
    rec: RunRecord,
}

/// Length of the shared placement prefix of two records: the leading
/// steps that placed the same job at the same time on the same PE and
/// emitted the same messages. Splicing from a cached record undoes the
/// live record only down to this point — the shared prefix is already
/// in the live timelines.
fn common_prefix_len(a: &RunRecord, b: &RunRecord) -> usize {
    let max = a.steps.len().min(b.steps.len());
    let mut i = 0;
    while i < max {
        let (sa, sb) = (a.steps[i], b.steps[i]);
        if sa.job != sb.job
            || sa.start != sb.start
            || sa.end != sb.end
            || sa.msg_lo != sb.msg_lo
            || sa.msg_hi != sb.msg_hi
            || a.snap[sa.job as usize].pe != b.snap[sb.job as usize].pe
            || a.msgs[sa.msg_lo as usize..sa.msg_hi as usize]
                != b.msgs[sb.msg_lo as usize..sb.msg_hi as usize]
        {
            break;
        }
        i += 1;
    }
    i
}

/// Bus time the current run added per slot occurrence, as a sorted
/// `(occurrence, added)` vec probed by binary search. The handful of
/// entries a run accumulates never justifies a node-allocating tree:
/// the flat vec clears without freeing, refills in place, and the slack
/// patcher's per-window probe hits one cache line.
#[derive(Default)]
struct BusDelta {
    entries: Vec<(u64, Time)>,
}

impl BusDelta {
    fn clear(&mut self) {
        self.entries.clear();
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, occ: u64) -> Option<Time> {
        self.entries
            .binary_search_by_key(&occ, |&(o, _)| o)
            .ok()
            .map(|p| self.entries[p].1)
    }

    fn add(&mut self, occ: u64, tx: Time) {
        match self.entries.binary_search_by_key(&occ, |&(o, _)| o) {
            Ok(p) => self.entries[p].1 += tx,
            Err(p) => self.entries.insert(p, (occ, tx)),
        }
    }

    /// Takes back `tx` previously [`add`](Self::add)ed for `occ`,
    /// dropping the entry when its total reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the occurrence was never accounted.
    fn sub(&mut self, occ: u64, tx: Time) {
        let p = self
            .entries
            .binary_search_by_key(&occ, |&(o, _)| o)
            .expect("rolled-back message was accounted");
        self.entries[p].1 -= tx;
        if self.entries[p].1.is_zero() {
            self.entries.remove(p);
        }
    }
}

/// The reusable scheduling engine: scratch arenas plus bookkeeping of
/// what the last run touched (consumed by the incremental slack path)
/// and the [`RunRecord`] the delta path splices from.
///
/// One `Scheduler` serves any number of evaluations; it is cheap to
/// construct but profitable to keep, since all per-evaluation arenas
/// (job records, ready heap, timelines, priority cache) are reused.
#[derive(Default)]
pub struct Scheduler {
    jobs: Vec<JobRec>,
    /// Dynamic per-job state, parallel to `jobs`: the earliest time the
    /// job's input data is available in the current run. Structure-of-
    /// arrays on purpose — see [`JobRec`].
    ready: Vec<Time>,
    /// Dynamic per-job state, parallel to `jobs`: predecessors not yet
    /// placed in the current run.
    preds_remaining: Vec<u32>,
    /// Static per-job snapshots parallel to `jobs`, filled by `expand`:
    /// release times and in-degrees. The incremental patch resets
    /// `ready`/`preds_remaining` from these with two flat copies
    /// instead of strided walks over the fat job structs.
    releases: Vec<Time>,
    in_degs: Vec<u32>,
    /// Flattened per-(spec, graph) base index into `jobs`.
    graph_bases: Vec<usize>,
    /// Offset of each spec's first graph in `graph_bases`.
    spec_offsets: Vec<usize>,
    /// Per graph slot: the per-edge slot hints of the current expansion.
    edge_hints: Vec<Vec<u32>>,
    /// Per graph slot: the structural shape of the current expansion.
    shapes: Vec<GraphShape>,
    heap: BinaryHeap<ReadyEntry>,
    pes: Vec<PeTimeline>,
    bus: Option<BusTimeline>,
    /// Priority cache, flattened parallel to `graph_bases`.
    prio_cache: Vec<PrioEntry>,
    assign_scratch: Vec<Option<PeId>>,
    cost_scratch: PriorityCosts,
    /// Which PEs the last run placed a new job on.
    touched: Vec<bool>,
    /// Bus time the last run added per slot occurrence.
    new_bus: BusDelta,
    /// Record describing the live timelines (`timelines = base + live
    /// placements`) — the default splice source.
    live: Option<RunRecord>,
    /// Solution fingerprint of `live`, when the caller supplied one.
    live_fp: Option<u64>,
    /// Fingerprint-keyed records of recent successful runs, the splice
    /// sources for revisit chains (A→B→A splices from A's own record
    /// instead of everything B touched).
    cache: Vec<CacheEntry>,
    /// Record-cache capacity override (`None` = [`RECORD_CACHE_CAP`]).
    cache_cap: Option<usize>,
    /// Retired record whose allocations seed the next delta run's
    /// scratch. Promotion moves the whole live record into the cache
    /// (no clone); the displaced entry's record lands here, so the
    /// steady state recycles allocations in a closed loop.
    spare: Option<RunRecord>,
    /// LRU clock for `cache`.
    cache_clock: u64,
    /// Promotions since the cache was last probed. Chain-shaped runs
    /// (every candidate's predecessor is the live record) would
    /// otherwise snapshot a record per run that nothing ever splices
    /// from; after two unprobed promotions the throttle closes, and
    /// any probe — hit or miss — reopens it (a miss is the demand
    /// signal that a pivot should have been kept).
    unprobed_promotions: u32,
    /// Scratch: which jobs the prefix replay already popped.
    popped: Vec<bool>,
    /// Scratch: the current run's jobs/messages in table order.
    cur_jobs: Vec<ScheduledJob>,
    cur_msgs: Vec<ScheduledMessage>,
    /// Job-arena provenance: `(app pointer, id)` per spec plus the
    /// horizon the arena was expanded for. A hinted delta reuses the
    /// arena only when these match exactly (same `Application` objects,
    /// so the only possible differences are the changed variables the
    /// caller lists).
    arena_apps: Vec<(usize, incdes_model::AppId)>,
    arena_horizon: Time,
    arena_valid: bool,
    /// Shared snapshot of the current arena structure. Refreshed after
    /// every full expansion but only *reallocated* when the structure
    /// actually changed, so re-expansions of the same apps keep the
    /// pointer — and with it the applicability of existing records.
    arena_tag: Arc<ArenaTag>,
    /// Scratch: PEs whose reservations the delta run changed.
    changed_pe: Vec<bool>,
    /// Whether the delta run changed any bus reservation.
    changed_bus: bool,
    /// Whether the most recent run took the delta path.
    last_run_delta: bool,
    /// Slack storage of the *previous* run, consumed by `slack_profile`.
    prev_gap_arcs: Option<Arc<[GapList]>>,
    prev_bus_arc: Option<GapList>,
    raw_schedules: usize,
    delta_schedules: usize,
    spliced_steps: usize,
    replayed_steps: usize,
    rebased_runs: usize,
    fresh_gap_lists: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("raw_schedules", &self.raw_schedules)
            .field("delta_schedules", &self.delta_schedules)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A fresh engine with empty scratch arenas.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Number of raw schedules this engine has executed (every call to
    /// [`schedule`](Self::schedule) / [`schedule_with_slack`](Self::schedule_with_slack)
    /// / [`schedule_delta_with_slack`](Self::schedule_delta_with_slack)
    /// that got past input validation).
    pub fn raw_schedule_count(&self) -> usize {
        self.raw_schedules
    }

    /// Number of raw schedules that took the delta path (spliced a
    /// recorded prefix and undid/redid only the suffix).
    pub fn delta_schedule_count(&self) -> usize {
        self.delta_schedules
    }

    /// Total placement steps spliced verbatim from run records across
    /// all delta runs (diagnostics for tests and benches).
    pub fn spliced_step_count(&self) -> usize {
        self.spliced_steps
    }

    /// Total placement steps *replayed* from cached records into the
    /// live timelines: when a delta run splices from a cached record,
    /// the part of its prefix the live record does not share is
    /// re-reserved placement by placement (an exact reproduction — the
    /// frame state at the replay point equals the recorded run's).
    /// Always ≤ [`spliced_step_count`](Self::spliced_step_count).
    pub fn replayed_step_count(&self) -> usize {
        self.replayed_steps
    }

    /// Number of delta runs that *rebased*: reset the timelines from
    /// the baked base and replayed the whole source prefix instead of
    /// undoing the live suffix in place. Chosen per run by a cost
    /// model — an early divergence makes the in-place undo walk nearly
    /// the entire live record while the reset is a bulk copy.
    pub fn rebase_count(&self) -> usize {
        self.rebased_runs
    }

    /// Number of fingerprint-keyed records currently cached.
    pub fn record_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Overrides the record-cache capacity (default
    /// [`RECORD_CACHE_CAP`]); `0` disables fingerprint-keyed caching
    /// entirely. Shrinking evicts least-recently-used entries
    /// immediately. Exposed so the differential fuzz suite can force
    /// eviction churn.
    pub fn set_record_cache_capacity(&mut self, cap: usize) {
        self.cache_cap = Some(cap);
        while self.cache.len() > cap {
            counters::bump(Counter::RecordCacheEvictions);
            let idx = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.cache.swap_remove(idx);
        }
    }

    /// Test probe: how many gap-list vectors the most recent slack
    /// derivation materialized (everything else was `Arc`-aliased from
    /// the frozen base or the previous run). Only meaningful after a
    /// `*_with_slack` call.
    #[doc(hidden)]
    pub fn fresh_gap_list_count(&self) -> usize {
        self.fresh_gap_lists
    }

    /// Which PEs the most recent run placed a new job on (indexed by
    /// PE). Empty before the first run. A failed run leaves the partial
    /// placements it made before erroring — only read this after a
    /// successful [`schedule`](Self::schedule) /
    /// [`schedule_with_slack`](Self::schedule_with_slack).
    pub fn touched_pes(&self) -> &[bool] {
        &self.touched
    }

    /// True if the most recent run placed any message on the bus. The
    /// same caveat as [`touched_pes`](Self::touched_pes) applies to
    /// failed runs.
    pub fn bus_touched(&self) -> bool {
        !self.new_bus.is_empty()
    }

    /// Schedules `apps` on top of `base`, reusing the scratch arenas.
    /// Produces exactly the table [`crate::schedule`] would produce for
    /// the same inputs. This is the **full-engine** path: the timelines
    /// are reset from the baked base and every job is placed.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<ScheduleTable, SchedError> {
        self.run(arch, apps, base, false, None, None, None)
    }

    /// Like [`schedule`](Self::schedule) but also derives the slack
    /// profile incrementally: untouched PEs alias the baked frozen-only
    /// gap lists and only bus occurrences carrying a new message have
    /// their free windows patched. The profile is identical to
    /// [`SlackProfile::from_table`] on the returned table.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base, false, None, None, None)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    /// [`schedule_with_slack`](Self::schedule_with_slack) that also
    /// labels the run's live placement record with `fingerprint`. This
    /// is the full-path half of the keyed API: early chain links get a
    /// name — so a later delta call can claim one as its predecessor
    /// via `prefer`, promoting it into the record cache — without
    /// engaging the splice machinery themselves (which cannot amortize
    /// on short chains).
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_keyed_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        fingerprint: u64,
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base, false, None, Some(fingerprint), None)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    /// The record-cache delta entry point:
    /// [`schedule_delta_hinted_with_slack`](Self::schedule_delta_hinted_with_slack)
    /// semantics (with `changed` optional — `None` forces a full
    /// re-expansion but still splices), plus fingerprint-keyed record
    /// selection. `prefer` names the fingerprint of the cached record to
    /// splice from — normally the recorded solution with the smallest
    /// design-variable diff against the candidate, as computed by the
    /// caller over its sorted solution keys. When `prefer` is absent,
    /// names the live record (which promotes that record into the
    /// cache — the demand signal), or matches nothing applicable, the
    /// live record is spliced as usual. The run's own record becomes
    /// the live record labeled `fingerprint`, cached only if a later
    /// run claims it. Any `prefer` value is safe: records are
    /// never trusted beyond the per-job divergence analysis, so a stale
    /// or colliding fingerprint costs performance, never correctness.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_delta_keyed_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        changed: Option<&[ChangedVar]>,
        fingerprint: u64,
        prefer: Option<u64>,
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base, true, changed, Some(fingerprint), prefer)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    /// The **delta-scheduling** entry point: identical results to
    /// [`schedule_with_slack`](Self::schedule_with_slack), but when a
    /// run record applies (see the module docs for the decision rules)
    /// only the placements after the first changed reservation are
    /// undone and re-placed; the unchanged prefix is spliced from the
    /// record and the O(frozen) timeline reset is skipped entirely.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_delta_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base, true, None, None, None)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    /// [`schedule_delta_with_slack`](Self::schedule_delta_with_slack)
    /// without the slack profile.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_delta(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
    ) -> Result<ScheduleTable, SchedError> {
        self.run(arch, apps, base, true, None, None, None)
    }

    /// [`schedule_delta_with_slack`](Self::schedule_delta_with_slack)
    /// with the solution diff supplied by the caller: `changed` must
    /// list **every** design variable (process mapping/gap hint, message
    /// slot hint) that differs from the previous call, in sorted order,
    /// and `apps` must reference the *same* `Application` objects as the
    /// previous call. The job arena is then patched instead of rebuilt —
    /// the dominant per-evaluation cost on small diffs. Falls back to a
    /// full expansion (and produces identical results) whenever the
    /// arena provenance does not match; debug builds additionally verify
    /// the patched arena against a full expansion.
    ///
    /// # Errors
    ///
    /// As [`crate::schedule`].
    pub fn schedule_delta_hinted_with_slack(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        changed: &[ChangedVar],
    ) -> Result<(ScheduleTable, SlackProfile), SchedError> {
        let table = self.run(arch, apps, base, true, Some(changed), None, None)?;
        let slack = self.slack_profile(base);
        Ok((table, slack))
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        try_delta: bool,
        changed: Option<&[ChangedVar]>,
        fingerprint: Option<u64>,
        prefer: Option<u64>,
    ) -> Result<ScheduleTable, SchedError> {
        check_horizon(apps, base.horizon)?;
        debug_assert_eq!(arch.pe_count(), base.pes.len(), "base built for this arch");
        self.raw_schedules += 1;
        self.last_run_delta = false;
        self.prev_gap_arcs = None;
        self.prev_bus_arc = None;
        // Generation guard: a rebaked base (ids are unique per bake)
        // invalidates cached records wholesale, so a `FrozenBase` rebake
        // upstream never leaves stale records pinning dead bakes alive.
        if self.cache.iter().any(|e| e.rec.base_id != base.id) {
            self.cache.retain(|e| e.rec.base_id == base.id);
        }
        let source = {
            // Expansion and source selection count as splice work: they
            // are the delta machinery's front-end regardless of path.
            let _splice = phase::scope(Phase::Splice);
            let patched = match changed {
                Some(vars) => self.expand_incremental(arch, apps, base.horizon, vars)?,
                None => false,
            };
            if patched {
                counters::bump(Counter::ArenaPatched);
            } else {
                self.expand(arch, apps, base.horizon)?;
                counters::bump(Counter::ArenaExpansions);
            }
            if try_delta {
                self.take_splice_source(base, prefer)
            } else {
                None
            }
        };
        let result = match source {
            Some((live, cached, promote)) => {
                self.run_delta(arch, apps, base, live, cached, promote)
            }
            None => {
                // A stale record cannot splice, but its allocations are
                // recycled into the new one.
                let old = self.live.take();
                self.run_full(arch, apps, base, old)
            }
        };
        // The live record now describes this candidate. Records enter
        // the fingerprint-keyed cache by *promotion* — the first trial
        // that names the live record as its predecessor moves it into
        // the cache whole once the run that replaces it completes — so
        // promotion never clones, and runs never spliced from again
        // (the common case: rejected trials) cost nothing at all.
        self.live_fp = fingerprint;
        result
    }

    /// Chooses the splice sources for a delta run. The live record must
    /// apply — it is what the undo unwinds — or the run falls back to
    /// the full path. When the caller prefers a cached record of a
    /// different solution and it applies too, it is pulled from the
    /// cache (returned to it after the run) so the run can splice the
    /// cached prefix instead of the live one.
    fn take_splice_source(
        &mut self,
        base: &FrozenBase,
        prefer: Option<u64>,
    ) -> Option<(RunRecord, Option<CacheEntry>, bool)> {
        if !self
            .live
            .as_ref()
            .is_some_and(|rec| self.record_applicable(rec, base))
        {
            return None;
        }
        let mut promote = false;
        let cached = prefer.and_then(|fp| {
            if self.live_fp == Some(fp) {
                // The preferred predecessor IS the live record: splice
                // from it directly, and promote it into the cache —
                // being named as a predecessor marks it as a pivot
                // later trials will want to splice from after the live
                // record moves on to this candidate. The promotion is
                // a *move* after the run (the record survives the run
                // intact), so it costs no clone; the throttle keeps
                // chain-shaped runs from flooding the cache anyway.
                if self.unprobed_promotions < 2 {
                    promote = true;
                    self.unprobed_promotions += 1;
                }
                return None;
            }
            self.unprobed_promotions = 0;
            let idx = match self
                .cache
                .iter()
                .position(|e| e.fp == fp && self.record_applicable(&e.rec, base))
            {
                Some(idx) => idx,
                None => {
                    // Evicted or never promoted: the live record still
                    // applies, so the run silently splices from it.
                    counters::bump(Counter::RecordCacheFallbacks);
                    return None;
                }
            };
            counters::bump(Counter::RecordCacheHits);
            let mut entry = self.cache.swap_remove(idx);
            self.cache_clock += 1;
            entry.stamp = self.cache_clock;
            Some(entry)
        });
        Some((self.live.take().expect("checked above"), cached, promote))
    }

    /// Whether `rec` can seed a delta run on `base` with the *current*
    /// expansion: same base, same job-arena layout, and the same graph
    /// shapes (periods, deadlines, topology, message transmission
    /// times) — so the only possible differences are the design
    /// variables the per-job dirty analysis inspects.
    fn record_applicable(&self, rec: &RunRecord, base: &FrozenBase) -> bool {
        // Structure equality is one pointer comparison: expansion only
        // reallocates the tag when the structure changed, so records
        // made under the same layout keep sharing the scheduler's tag.
        rec.base_id == base.id
            && rec.snap.len() == self.jobs.len()
            && Arc::ptr_eq(&rec.arena, &self.arena_tag)
    }

    /// Moves a retired record into the fingerprint-keyed cache under
    /// `fp` — no clone; the displaced entry's record (if any) becomes
    /// the spare that seeds the next run's scratch. Slack arcs are not
    /// cached — only the live record's arcs seed the next profile
    /// derivation (the caller already took them).
    fn cache_insert_move(&mut self, fp: u64, mut rec: RunRecord) {
        let cap = self.cache_cap.unwrap_or(RECORD_CACHE_CAP);
        if cap == 0 {
            self.spare = Some(rec);
            return;
        }
        debug_assert!(rec.gap_arcs.is_none() && rec.bus_arc.is_none());
        counters::bump(Counter::RecordCachePromotions);
        self.cache_clock += 1;
        let stamp = self.cache_clock;
        rec.gap_arcs = None;
        rec.bus_arc = None;
        if let Some(entry) = self.cache.iter_mut().find(|e| e.fp == fp) {
            entry.stamp = stamp;
            self.spare = Some(std::mem::replace(&mut entry.rec, rec));
        } else if self.cache.len() >= cap {
            // Evict the least recently used entry, retiring its record.
            counters::bump(Counter::RecordCacheEvictions);
            let idx = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            let entry = &mut self.cache[idx];
            entry.fp = fp;
            entry.stamp = stamp;
            self.spare = Some(std::mem::replace(&mut entry.rec, rec));
        } else {
            self.cache.push(CacheEntry { fp, stamp, rec });
        }
    }

    /// Expands `apps` into the job arena (priorities served from the
    /// cache) and snapshots the per-graph edge slot hints. Touches no
    /// timeline state, so an expansion error preserves a pending run
    /// record.
    fn expand(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        horizon: Time,
    ) -> Result<(), SchedError> {
        self.arena_valid = false;
        self.arena_horizon = horizon;
        self.arena_apps.clear();
        self.arena_apps
            .extend(apps.iter().map(|s| (s.app as *const _ as usize, s.id)));
        let Scheduler {
            jobs,
            ready,
            preds_remaining,
            graph_bases,
            spec_offsets,
            edge_hints,
            shapes,
            prio_cache,
            assign_scratch,
            cost_scratch,
            ..
        } = self;
        jobs.clear();
        ready.clear();
        preds_remaining.clear();
        graph_bases.clear();
        spec_offsets.clear();
        for (si, spec) in apps.iter().enumerate() {
            spec_offsets.push(graph_bases.len());
            for (gi, g) in spec.app.graphs.iter().enumerate() {
                let flat = graph_bases.len();
                graph_bases.push(jobs.len());
                // The per-slot hint and shape snapshots recycle their
                // inner allocations across evaluations (truncated to
                // the slot count below), like every other arena here.
                if edge_hints.len() <= flat {
                    edge_hints.push(Vec::new());
                    shapes.push(GraphShape::default());
                }
                let eh = &mut edge_hints[flat];
                eh.clear();
                eh.extend(
                    g.dag()
                        .edge_ids()
                        .map(|e| spec.hints.msg_slot(crate::mapping::MsgRef::new(gi, e))),
                );
                let sh = &mut shapes[flat];
                sh.period = g.period;
                sh.deadline = g.deadline;
                sh.node_count = g.process_count() as u32;
                sh.edges.clear();
                sh.edges.extend(g.dag().edge_ids().map(|e| {
                    let (s, t) = g.dag().endpoints(e);
                    (
                        s.index() as u32,
                        t.index() as u32,
                        arch.bus().transmission_time(g.message(e).bytes),
                    )
                }));
                // Exact priorities from the mapping, cached per graph
                // slot while the cost inputs are unchanged (hint-only
                // moves and moves in other graphs never recompute).
                assign_scratch.clear();
                assign_scratch.extend(
                    g.dag()
                        .node_ids()
                        .map(|n| spec.mapping.pe_of(ProcRef::new(gi, n))),
                );
                cost_scratch.fill(arch, g, assign_scratch);
                if prio_cache.len() <= flat {
                    prio_cache.resize_with(flat + 1, PrioEntry::default);
                }
                let entry = &mut prio_cache[flat];
                if entry.costs != *cost_scratch {
                    let _refresh = phase::scope(Phase::PriorityRefresh);
                    entry.prio = cost_scratch.priorities(g);
                    std::mem::swap(&mut entry.costs, cost_scratch);
                }
                let prio = &entry.prio;

                let instances = horizon.ticks() / g.period.ticks();
                for k in 0..instances as u32 {
                    let release = Time::new(k as u64 * g.period.ticks());
                    let deadline = release + g.deadline;
                    for n in g.dag().node_ids() {
                        let pr = ProcRef::new(gi, n);
                        let pe = spec
                            .mapping
                            .pe_of(pr)
                            .ok_or(SchedError::MappingIncomplete {
                                app: spec.id,
                                proc_ref: pr,
                            })?;
                        let wcet = g.process(n).wcets.get(pe).ok_or(SchedError::NotAllowed {
                            app: spec.id,
                            proc_ref: pr,
                            pe,
                        })?;
                        let in_deg = g.dag().in_degree(n) as u32;
                        jobs.push(JobRec {
                            id: JobId::new(spec.id, gi, k, n),
                            pe,
                            wcet,
                            release,
                            deadline,
                            priority: prio[n.index()],
                            gap_hint: spec.hints.proc_gap(pr),
                            in_deg,
                            spec: si,
                        });
                        ready.push(release);
                        preds_remaining.push(in_deg);
                    }
                }
            }
        }
        self.edge_hints.truncate(self.graph_bases.len());
        self.shapes.truncate(self.graph_bases.len());
        self.releases.clear();
        self.releases.extend(self.jobs.iter().map(|j| j.release));
        self.in_degs.clear();
        self.in_degs.extend(self.jobs.iter().map(|j| j.in_deg));
        self.refresh_arena_tag();
        self.arena_valid = true;
        Ok(())
    }

    /// Re-tags the arena after a full expansion. The deep structural
    /// comparison happens here — once per expansion — instead of per
    /// applicability probe; when nothing changed the existing `Arc` is
    /// kept, so records expanded under the same structure stay
    /// pointer-equal to the scheduler's tag.
    fn refresh_arena_tag(&mut self) {
        let tag = &self.arena_tag;
        let unchanged = tag.horizon == self.arena_horizon
            && tag.graph_bases == self.graph_bases
            && tag.spec_offsets == self.spec_offsets
            && tag.app_ids.len() == self.arena_apps.len()
            && tag
                .app_ids
                .iter()
                .zip(&self.arena_apps)
                .all(|(&id, &(_, cur))| id == cur)
            && tag.shapes == self.shapes;
        if !unchanged {
            self.arena_tag = Arc::new(ArenaTag {
                horizon: self.arena_horizon,
                graph_bases: self.graph_bases.clone(),
                spec_offsets: self.spec_offsets.clone(),
                app_ids: self.arena_apps.iter().map(|&(_, id)| id).collect(),
                shapes: self.shapes.clone(),
            });
        }
    }

    /// Patches the existing job arena with `changed` design variables
    /// instead of re-expanding: dynamic state is reset with plain
    /// stores, only the listed processes re-resolve their PE/WCET/hint,
    /// and only graphs with a mapping change refresh priorities.
    /// Returns `Ok(false)` when the arena cannot be reused (different
    /// apps, different horizon, or a previous expansion error) — the
    /// caller then falls back to a full expansion.
    ///
    /// Correctness rests on the caller's contract (`changed` lists every
    /// differing variable, `apps` are the same objects); debug builds
    /// re-expand from scratch afterwards and assert the arenas agree,
    /// which the differential fuzz suite exercises heavily.
    fn expand_incremental(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        horizon: Time,
        changed: &[ChangedVar],
    ) -> Result<bool, SchedError> {
        let reusable = self.arena_valid
            && self.arena_horizon == horizon
            && self.arena_apps.len() == apps.len()
            && self
                .arena_apps
                .iter()
                .zip(apps)
                .all(|(&(ptr, id), s)| ptr == s.app as *const _ as usize && id == s.id);
        if !reusable {
            return Ok(false);
        }
        debug_assert!(
            changed.windows(2).all(|w| w[0] < w[1]),
            "changed variables must be sorted and deduplicated"
        );
        // The arena is only marked valid again once the patch (and its
        // validation) completed — a failed patch forces a full expand.
        self.arena_valid = false;

        self.ready.clone_from(&self.releases);
        self.preds_remaining.clone_from(&self.in_degs);

        // Apply the changed variables (sorted order = expansion order,
        // so a MappingIncomplete/NotAllowed error surfaces for the same
        // process a full expansion would report first: unchanged
        // processes stayed valid since they were last expanded).
        let mut prio_dirty_prev = usize::MAX;
        for &var in changed {
            match var {
                ChangedVar::Proc { spec, graph, node } => {
                    let sp = &apps[spec];
                    let g = &sp.app.graphs[graph];
                    let pr = ProcRef::new(graph, node);
                    let pe = sp.mapping.pe_of(pr).ok_or(SchedError::MappingIncomplete {
                        app: sp.id,
                        proc_ref: pr,
                    })?;
                    let wcet = g
                        .process(node)
                        .wcets
                        .get(pe)
                        .ok_or(SchedError::NotAllowed {
                            app: sp.id,
                            proc_ref: pr,
                            pe,
                        })?;
                    let hint = sp.hints.proc_gap(pr);
                    let flat = self.spec_offsets[spec] + graph;
                    let nodes = g.process_count();
                    let instances = (horizon.ticks() / g.period.ticks()) as usize;
                    // Priorities are a pure function of the graph's
                    // mapping (node WCETs on the assigned PEs, edge
                    // same-PE-ness) — a gap-hint-only change cannot
                    // move them, so the cost rebuild below keys on the
                    // PE actually changing (instance 0 still holds the
                    // pre-patch assignment here).
                    let remapped = self.jobs[self.graph_bases[flat] + node.index()].pe != pe;
                    for k in 0..instances {
                        let j = &mut self.jobs[self.graph_bases[flat] + k * nodes + node.index()];
                        j.pe = pe;
                        j.wcet = wcet;
                        j.gap_hint = hint;
                    }
                    // Refresh the graph's priorities once per remapped
                    // graph (vars are sorted, so repeats are adjacent).
                    if remapped && flat != prio_dirty_prev {
                        prio_dirty_prev = flat;
                        let Scheduler {
                            jobs,
                            graph_bases,
                            prio_cache,
                            assign_scratch,
                            cost_scratch,
                            ..
                        } = self;
                        assign_scratch.clear();
                        assign_scratch.extend(
                            g.dag()
                                .node_ids()
                                .map(|n| sp.mapping.pe_of(ProcRef::new(graph, n))),
                        );
                        cost_scratch.fill(arch, g, assign_scratch);
                        let entry = &mut prio_cache[flat];
                        // Every expansion that touches a graph leaves its
                        // jobs holding `entry.prio`, so when the rebuilt
                        // costs match the cached ones the arena is
                        // already consistent — no recompute, no rewrite.
                        if entry.costs != *cost_scratch {
                            {
                                let _refresh = phase::scope(Phase::PriorityRefresh);
                                entry.prio = cost_scratch.priorities(g);
                                std::mem::swap(&mut entry.costs, cost_scratch);
                            }
                            for k in 0..instances {
                                for n in 0..nodes {
                                    jobs[graph_bases[flat] + k * nodes + n].priority =
                                        entry.prio[n];
                                }
                            }
                        }
                    }
                }
                ChangedVar::Msg { spec, graph, edge } => {
                    let sp = &apps[spec];
                    let flat = self.spec_offsets[spec] + graph;
                    self.edge_hints[flat][edge.index()] =
                        sp.hints.msg_slot(crate::mapping::MsgRef::new(graph, edge));
                }
            }
        }

        #[cfg(debug_assertions)]
        self.debug_verify_incremental_expand(arch, apps, horizon)?;

        self.arena_valid = true;
        Ok(true)
    }

    /// Debug-build oracle for [`expand_incremental`]: snapshots the
    /// patched arena, re-expands from scratch and asserts equality —
    /// the differential fuzz suite drives this on every hinted call.
    #[cfg(debug_assertions)]
    fn debug_verify_incremental_expand(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        horizon: Time,
    ) -> Result<(), SchedError> {
        let snap: Vec<(PeId, Time, Time, u32, u32, Time)> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                (
                    j.pe,
                    j.wcet,
                    j.priority,
                    j.gap_hint,
                    self.preds_remaining[i],
                    self.ready[i],
                )
            })
            .collect();
        let hints_snap = self.edge_hints.clone();
        self.expand(arch, apps, horizon)?;
        assert_eq!(self.jobs.len(), snap.len(), "patched arena lost jobs");
        for (i, (j, s)) in self.jobs.iter().zip(&snap).enumerate() {
            assert_eq!(
                (
                    j.pe,
                    j.wcet,
                    j.priority,
                    j.gap_hint,
                    self.preds_remaining[i],
                    self.ready[i]
                ),
                *s,
                "incremental expansion diverged from full expansion for {:?}",
                j.id
            );
        }
        assert_eq!(self.edge_hints, hints_snap, "edge hints diverged");
        Ok(())
    }

    /// The full-engine path: reset the timelines from the baked base and
    /// place every job. `old` is a stale record whose allocations are
    /// recycled into the new one.
    fn run_full(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        old: Option<RunRecord>,
    ) -> Result<ScheduleTable, SchedError> {
        debug_assert!(self.live.is_none(), "caller took the old record");
        let horizon = base.horizon;
        let n = self.jobs.len();

        let (mut steps, mut rec_msgs, mut pop_step, mut push_step, carcass) = recycle(old, n);

        let Scheduler {
            jobs,
            ready,
            preds_remaining,
            graph_bases,
            spec_offsets,
            heap,
            pes,
            bus,
            touched,
            new_bus,
            ..
        } = self;

        // --- Reset scratch from the baked base ---------------------------
        // (the full path's analogue of the delta undo: bring the
        // timelines back to `base`)
        {
            let _undo = phase::scope(Phase::Undo);
            if pes.len() == base.pes.len() {
                for (tl, b) in pes.iter_mut().zip(&base.pes) {
                    tl.copy_from(b);
                }
            } else {
                *pes = base.pes.clone();
            }
            match bus {
                Some(b)
                    if b.horizon() == horizon
                        && b.occurrence_count() == base.bus.occurrence_count() =>
                {
                    b.reset_from(&base.bus);
                }
                _ => *bus = Some(base.bus.clone()),
            }
            touched.clear();
            touched.resize(base.pes.len(), false);
            new_bus.clear();
        }
        let bus = bus.as_mut().expect("just set");

        let _replace = phase::scope(Phase::RePlace);
        heap.clear();
        let mut seeded = 0u64;
        for (i, &p) in preds_remaining.iter().enumerate() {
            if p == 0 {
                push_step[i] = 0;
                heap.push(ReadyEntry::of(jobs, ready, i));
                seeded += 1;
            }
        }
        counters::add(Counter::HeapPushes, seeded);

        let run = schedule_loop(
            arch,
            apps,
            jobs,
            ready,
            preds_remaining,
            graph_bases,
            spec_offsets,
            heap,
            pes,
            bus,
            touched,
            new_bus,
            &mut steps,
            &mut rec_msgs,
            &mut push_step,
            &mut pop_step,
        );

        let table = run
            .as_ref()
            .ok()
            .map(|()| self.assemble_table(base, &steps, &rec_msgs));
        // A failed run's *completed* steps still satisfy the record
        // invariant (the partial step was rolled back), so infeasible
        // trials keep a splice source for the next evaluation.
        self.store_record(base, steps, rec_msgs, pop_step, push_step, carcass);
        run?;
        Ok(table.expect("run succeeded"))
    }

    /// The delta path: the splice source (`cached` if present, else
    /// `live`) applies to the current expansion, and the live timelines
    /// hold exactly `base + live placements`. When splicing from a
    /// cached record the undo stops at the common prefix of the two
    /// records and the cached prefix beyond it is *replayed* into the
    /// timelines — an exact reproduction, because the timeline and
    /// frame-tail state at every replayed step equals the recorded
    /// run's state at that step by induction over the shared prefix.
    fn run_delta(
        &mut self,
        arch: &Architecture,
        apps: &[AppSpec<'_>],
        base: &FrozenBase,
        mut live: RunRecord,
        cached: Option<CacheEntry>,
        promote: bool,
    ) -> Result<ScheduleTable, SchedError> {
        let n = self.jobs.len();
        let (div, keep) = {
            let _splice = phase::scope(Phase::Splice);
            let src = cached.as_ref().map_or(&live, |e| &e.rec);
            let div = self.divergence(apps, src);
            let keep = match cached.as_ref() {
                Some(e) => div.min(common_prefix_len(&live, &e.rec)),
                None => div,
            };
            (div, keep)
        };
        // Two ways to bring the timelines to `base + src[0..div)`:
        // unwind the live suffix in place (cheap when the live run
        // shares a long prefix with the source, as in raw mutation
        // streams), or reset from the baked base — a bulk copy — and
        // replay the whole source prefix (cheap when the divergence is
        // early and the undo would walk nearly the entire live
        // record, as in pivot/trial neighborhoods where a remap
        // re-weights the whole graph's priorities). The reset is
        // priced at a fraction of the per-step splice-out cost.
        let rebase = live.steps.len() - keep > keep + base.jobs.len() / 16 + 2;
        self.delta_schedules += 1;
        self.spliced_steps += div;
        self.replayed_steps += if rebase { div } else { div - keep };
        if rebase {
            self.rebased_runs += 1;
            counters::bump(Counter::DeltaRebases);
        } else {
            counters::add(Counter::SpliceStepsUndone, (live.steps.len() - keep) as u64);
        }
        counters::add(Counter::SpliceStepsSpliced, div as u64);
        counters::add(
            Counter::SpliceStepsReplayed,
            (if rebase { div } else { div - keep }) as u64,
        );
        self.last_run_delta = true;
        self.prev_gap_arcs = live.gap_arcs.take();
        self.prev_bus_arc = live.bus_arc.take();

        // Scratch recycled from the spare record (retired by an earlier
        // promotion or run); its vectors become the carcass
        // `store_record` refills below. The live record survives the
        // run intact: it is the undo source, and a promotion moves it
        // into the cache whole instead of cloning it.
        let mut spare = self
            .spare
            .take()
            .unwrap_or_else(|| RunRecord::empty(&self.arena_tag));
        let mut pop_step = std::mem::take(&mut spare.pop_step);
        let mut push_step = std::mem::take(&mut spare.push_step);
        let mut steps = std::mem::take(&mut spare.steps);
        let mut rec_msgs = std::mem::take(&mut spare.msgs);

        let Scheduler {
            jobs,
            ready,
            preds_remaining,
            graph_bases,
            spec_offsets,
            heap,
            pes,
            bus,
            touched,
            new_bus,
            popped,
            changed_pe,
            changed_bus,
            ..
        } = self;
        let bus = bus.as_mut().expect("delta follows a recorded run");

        changed_pe.clear();
        changed_pe.resize(pes.len(), false);
        *changed_bus = false;

        let (src_steps, src_msgs, src_snap): (&[StepRec], &[ScheduledMessage], &[JobSnap]) =
            match cached.as_ref() {
                Some(e) => (&e.rec.steps, &e.rec.msgs, &e.rec.snap),
                None => (&live.steps, &live.msgs, &live.snap),
            };

        let replay_from = {
            let _undo = phase::scope(Phase::Undo);
            if rebase {
                // --- Rebase: wipe the live run with a bulk reset --------
                // Every PE the wiped run had touched may end up with a
                // different gap list, so its previous-profile alias is
                // dead.
                for step in live.steps.iter() {
                    changed_pe[live.snap[step.job as usize].pe.index()] = true;
                }
                if !live.msgs.is_empty() {
                    *changed_bus = true;
                }
                for (tl, b) in pes.iter_mut().zip(&base.pes) {
                    tl.copy_from(b);
                }
                bus.reset_from(&base.bus);
                0
            } else {
                // --- Undo the live suffix (reverse order, frame tails
                // unwind)
                for step in live.steps[keep..].iter().rev() {
                    for m in live.msgs[step.msg_lo as usize..step.msg_hi as usize]
                        .iter()
                        .rev()
                    {
                        bus.unreserve_tail(&m.reservation);
                        *changed_bus = true;
                    }
                    let pe = live.snap[step.job as usize].pe;
                    pes[pe.index()].unreserve(step.start, step.end);
                    changed_pe[pe.index()] = true;
                }
                keep
            }
        };
        let splice_scope = phase::scope(Phase::Splice);

        // --- Replay the source prefix the timelines do not hold ----------
        // (an in-place undo from the live source leaves `replay_from ==
        // keep == div` and the range is empty)
        for step in &src_steps[replay_from..div] {
            let pe = src_snap[step.job as usize].pe;
            pes[pe.index()]
                .reserve(step.start, step.end)
                .expect("replayed placement fits its recorded interval");
            changed_pe[pe.index()] = true;
            for m in &src_msgs[step.msg_lo as usize..step.msg_hi as usize] {
                let r = bus
                    .reserve_in_occurrence(
                        m.reservation.owner,
                        m.reservation.occurrence,
                        m.reservation.duration(),
                    )
                    .expect("replayed message fits its recorded frame");
                debug_assert_eq!(
                    r.transmit_start, m.reservation.transmit_start,
                    "replayed reservation reproduces the recorded offset"
                );
                *changed_bus = true;
            }
        }
        let prefix_msg_count = if div == 0 {
            0
        } else {
            src_steps[div - 1].msg_hi as usize
        };

        // --- Splice the prefix from the source record --------------------
        touched.clear();
        touched.resize(base.pes.len(), false);
        new_bus.clear();
        popped.clear();
        popped.resize(n, false);
        pop_step.clear();
        pop_step.resize(n, u32::MAX);
        push_step.clear();
        push_step.resize(n, u32::MAX);
        for (i, &p) in preds_remaining.iter().enumerate() {
            if p == 0 {
                push_step[i] = 0;
            }
        }

        for (s, step) in src_steps[..div].iter().enumerate() {
            let idx = step.job as usize;
            let j = &jobs[idx];
            debug_assert_eq!(j.pe, src_snap[idx].pe, "spliced jobs are clean");
            touched[j.pe.index()] = true;
            popped[idx] = true;
            pop_step[idx] = s as u32;

            // Re-derive successor readiness from the recorded outputs.
            let (si, graph, instance, node, pe, end) =
                (j.spec, j.id.graph, j.id.instance, j.id.node, j.pe, step.end);
            let g = &apps[si].app.graphs[graph];
            let mut cursor = step.msg_lo as usize;
            for &e in g.dag().out_edges(node) {
                let succ_node = g.dag().target(e);
                let succ_idx = job_index(
                    apps,
                    graph_bases,
                    spec_offsets,
                    si,
                    graph,
                    instance,
                    succ_node,
                );
                let data_ready = if jobs[succ_idx].pe == pe {
                    end
                } else {
                    let m = src_msgs[cursor];
                    cursor += 1;
                    new_bus.add(m.reservation.occurrence, m.reservation.duration());
                    m.reservation.arrival
                };
                ready[succ_idx] = ready[succ_idx].max(data_ready);
                preds_remaining[succ_idx] -= 1;
                if preds_remaining[succ_idx] == 0 {
                    push_step[succ_idx] = s as u32 + 1;
                }
            }
            debug_assert_eq!(cursor, step.msg_hi as usize, "recorded messages consumed");
        }

        // --- Seed the heap with the ready-but-unpopped set ---------------
        heap.clear();
        let mut seeded = 0u64;
        for i in 0..n {
            if !popped[i] && preds_remaining[i] == 0 {
                heap.push(ReadyEntry::of(jobs, ready, i));
                seeded += 1;
            }
        }
        counters::add(Counter::HeapPushes, seeded);

        // --- Re-place the suffix through the ordinary loop ---------------
        // The scratch vectors receive the source prefix (the suffix is
        // appended by the loop below). Always a copy — the source
        // record survives the run, so the live one can be promoted
        // into the cache by move.
        steps.clear();
        steps.extend_from_slice(&src_steps[..div]);
        rec_msgs.clear();
        rec_msgs.extend_from_slice(&src_msgs[..prefix_msg_count]);
        let before_msgs = rec_msgs.len();
        drop(splice_scope);

        let _replace = phase::scope(Phase::RePlace);
        let run = schedule_loop(
            arch,
            apps,
            jobs,
            ready,
            preds_remaining,
            graph_bases,
            spec_offsets,
            heap,
            pes,
            bus,
            touched,
            new_bus,
            &mut steps,
            &mut rec_msgs,
            &mut push_step,
            &mut pop_step,
        );

        // Every suffix placement (or message) changes its resource
        // (only consulted by the slack derivation, i.e. on success).
        for step in &steps[div..] {
            changed_pe[jobs[step.job as usize].pe.index()] = true;
        }
        if rec_msgs.len() > before_msgs {
            *changed_bus = true;
        }

        let table = run
            .as_ref()
            .ok()
            .map(|()| self.assemble_table(base, &steps, &rec_msgs));
        // The borrowed cache entry goes back untouched (its stamp was
        // already bumped when it was chosen).
        if let Some(entry) = cached {
            self.cache.push(entry);
        }
        // Completed steps of a failed run still satisfy the record
        // invariant — see `run_full` for why that matters.
        self.store_record(base, steps, rec_msgs, pop_step, push_step, Some(spare));
        // Retire the old live record: a promotion moves it into the
        // cache whole; otherwise its allocations seed the next run's
        // scratch. Promotion happens even for a failed run — the
        // record describes the *previous* successful run either way.
        if promote {
            let fp = self
                .live_fp
                .expect("promotion implies a labeled live record");
            self.cache_insert_move(fp, live);
        } else {
            self.spare = Some(live);
        }
        run?;
        Ok(table.expect("run succeeded"))
    }

    /// Assembles the output table: the current run's jobs and messages
    /// brought into canonical order (a small sort) and merged with the
    /// frozen base's pre-sorted sequences in `O(n)` — no full-table
    /// re-sort per evaluation.
    fn assemble_table(
        &mut self,
        base: &FrozenBase,
        steps: &[StepRec],
        rec_msgs: &[ScheduledMessage],
    ) -> ScheduleTable {
        let Scheduler {
            jobs,
            cur_jobs,
            cur_msgs,
            ..
        } = self;
        cur_jobs.clear();
        cur_jobs.extend(steps.iter().map(|s| {
            let j = &jobs[s.job as usize];
            ScheduledJob {
                job: j.id,
                pe: j.pe,
                start: s.start,
                end: s.end,
                release: j.release,
                deadline: j.deadline,
            }
        }));
        cur_jobs.sort_by_key(crate::table::job_sort_key);
        cur_msgs.clear();
        cur_msgs.extend_from_slice(rec_msgs);
        cur_msgs.sort_by_key(crate::table::message_sort_key);
        ScheduleTable::from_sorted_merge(base.horizon, &base.jobs, cur_jobs, &base.msgs, cur_msgs)
    }

    /// The first recorded step the current expansion could possibly
    /// perturb (see the module docs for the rule).
    fn divergence(&self, apps: &[AppSpec<'_>], rec: &RunRecord) -> usize {
        let jobs = &self.jobs;
        let mut div = rec.steps.len() as u32;
        // Per-job field diffs first — a tight scan over parallel arrays
        // with no graph walks. A moved job also re-routes the messages
        // its predecessors send, so each predecessor of a pe-changed
        // job is dirty too; that walk runs only for the handful of
        // jobs a patch actually moved.
        for idx in 0..jobs.len() {
            let j = &jobs[idx];
            let s = &rec.snap[idx];
            if j.pe != s.pe {
                div = div.min(rec.pop_step[idx]);
                let g = &apps[j.spec].app.graphs[j.id.graph];
                for &e in g.dag().in_edges(j.id.node) {
                    let pred_idx = job_index(
                        apps,
                        &self.graph_bases,
                        &self.spec_offsets,
                        j.spec,
                        j.id.graph,
                        j.id.instance,
                        g.dag().source(e),
                    );
                    div = div.min(rec.pop_step[pred_idx]);
                }
            } else if j.gap_hint != s.gap_hint || j.wcet != s.wcet {
                div = div.min(rec.pop_step[idx]);
            }
            if j.priority != s.priority {
                div = div.min(rec.push_step[idx]);
            }
        }
        // Changed edge-slot hints dirty the sending job of every
        // instance; whole-vector equality is the common fast path.
        for (si, sp) in apps.iter().enumerate() {
            for (graph, g) in sp.app.graphs.iter().enumerate() {
                let flat = self.spec_offsets[si] + graph;
                if self.edge_hints[flat] == rec.edge_hints[flat] {
                    continue;
                }
                let nodes = g.process_count();
                let instances = (self.arena_horizon.ticks() / g.period.ticks()) as usize;
                for n in g.dag().node_ids() {
                    for &e in g.dag().out_edges(n) {
                        if self.edge_hints[flat][e.index()] == rec.edge_hints[flat][e.index()] {
                            continue;
                        }
                        for k in 0..instances {
                            let idx = self.graph_bases[flat] + k * nodes + n.index();
                            div = div.min(rec.pop_step[idx]);
                        }
                    }
                }
            }
        }
        div as usize
    }

    /// Snapshots the finished run into `self.live` (the delta-splice
    /// source for the next evaluation), recycling the previous record's
    /// allocations: a steady-state evaluation snapshots with zero fresh
    /// allocations. Oversized arenas are never recorded — `u32` step
    /// indices cover every realistic horizon.
    fn store_record(
        &mut self,
        base: &FrozenBase,
        steps: Vec<StepRec>,
        msgs: Vec<ScheduledMessage>,
        pop_step: Vec<u32>,
        push_step: Vec<u32>,
        carcass: Option<RunRecord>,
    ) {
        if self.jobs.len() >= u32::MAX as usize || msgs.len() >= u32::MAX as usize {
            self.live = None;
            return;
        }
        let mut rec = carcass.unwrap_or_else(|| RunRecord::empty(&self.arena_tag));
        rec.base_id = base.id;
        rec.steps = steps;
        rec.msgs = msgs;
        rec.pop_step = pop_step;
        rec.push_step = push_step;
        rec.snap.clear();
        rec.snap.extend(self.jobs.iter().map(|j| JobSnap {
            pe: j.pe,
            gap_hint: j.gap_hint,
            wcet: j.wcet,
            priority: j.priority,
        }));
        rec.edge_hints.clone_from(&self.edge_hints);
        rec.arena = Arc::clone(&self.arena_tag);
        rec.gap_arcs = None;
        rec.bus_arc = None;
        self.live = Some(rec);
    }

    /// The incremental slack of the most recent successful run: gap
    /// lists of untouched PEs alias the base, unchanged-by-delta PEs
    /// alias the previous run's profile, and only changed resources are
    /// re-derived from the live timelines.
    fn slack_profile(&mut self, base: &FrozenBase) -> SlackProfile {
        let _slack = phase::scope(Phase::Slack);
        let prev_gaps = self.prev_gap_arcs.take();
        let prev_bus = self.prev_bus_arc.take();
        let mut fresh = 0usize;
        let mut pe_gaps: Vec<GapList> = Vec::with_capacity(self.pes.len());
        for i in 0..self.pes.len() {
            let arc = if !self.touched[i] {
                counters::bump(Counter::SlackGapsAliased);
                Arc::clone(&base.pe_gaps[i])
            } else if self.last_run_delta && !self.changed_pe[i] {
                match prev_gaps.as_ref() {
                    // The PE kept every reservation of the previous run,
                    // so the previous profile's list is bit-identical.
                    Some(prev) => {
                        counters::bump(Counter::SlackGapsAliased);
                        Arc::clone(&prev[i])
                    }
                    None => {
                        fresh += 1;
                        counters::bump(Counter::SlackGapsMaterialized);
                        self.pes[i].gap_iter().collect()
                    }
                }
            } else {
                fresh += 1;
                counters::bump(Counter::SlackGapsMaterialized);
                self.pes[i].gap_iter().collect()
            };
            pe_gaps.push(arc);
        }
        // One shared slab for the whole per-PE table: the profile, the
        // live record's alias source and every memo clone downstream
        // share it by reference-count bump instead of re-cloning
        // `pe_count` inner `Arc`s each.
        let pe_gaps: Arc<[GapList]> = pe_gaps.into();

        let bus_arc = if self.new_bus.is_empty() {
            counters::bump(Counter::BusWindowsAliased);
            Arc::clone(&base.bus_windows)
        } else if self.last_run_delta && !self.changed_bus && prev_bus.is_some() {
            counters::bump(Counter::BusWindowsAliased);
            prev_bus.expect("just checked")
        } else {
            // Every occurrence a new message landed in had free room, so
            // it appears in the baked window list; patching is a linear
            // merge.
            counters::bump(Counter::BusWindowsPatched);
            let mut patched = 0usize;
            let mut windows = Vec::with_capacity(base.bus_windows.len());
            for (k, &(ws, we)) in base.bus_windows.iter().enumerate() {
                match self.new_bus.get(base.window_occ[k]) {
                    None => windows.push((ws, we)),
                    Some(added) => {
                        patched += 1;
                        let ns = ws + added;
                        if ns < we {
                            windows.push((ns, we));
                        }
                    }
                }
            }
            debug_assert_eq!(
                patched,
                self.new_bus.len(),
                "every new message lands in a baked window"
            );
            windows.into()
        };

        self.fresh_gap_lists = fresh;
        if let Some(rec) = &mut self.live {
            rec.gap_arcs = Some(Arc::clone(&pe_gaps));
            rec.bus_arc = Some(Arc::clone(&bus_arc));
        }
        SlackProfile::from_shared(base.horizon, pe_gaps, bus_arc)
    }
}

/// Breaks a stale record into reusable bookkeeping vectors for the next
/// run: steps/messages cleared, pop/push step maps refilled for `n`
/// jobs, plus the carcass whose snapshot vectors `store_record` will
/// recycle.
#[allow(clippy::type_complexity)]
fn recycle(
    old: Option<RunRecord>,
    n: usize,
) -> (
    Vec<StepRec>,
    Vec<ScheduledMessage>,
    Vec<u32>,
    Vec<u32>,
    Option<RunRecord>,
) {
    match old {
        Some(mut rec) => {
            let mut steps = std::mem::take(&mut rec.steps);
            let mut msgs = std::mem::take(&mut rec.msgs);
            let mut pop = std::mem::take(&mut rec.pop_step);
            let mut push = std::mem::take(&mut rec.push_step);
            steps.clear();
            msgs.clear();
            pop.clear();
            pop.resize(n, u32::MAX);
            push.clear();
            push.resize(n, u32::MAX);
            (steps, msgs, pop, push, Some(rec))
        }
        None => (
            Vec::new(),
            Vec::new(),
            vec![u32::MAX; n],
            vec![u32::MAX; n],
            None,
        ),
    }
}

/// Flat index of job `(si, gi, instance, node)` in the arena.
fn job_index(
    apps: &[AppSpec<'_>],
    graph_bases: &[usize],
    spec_offsets: &[usize],
    si: usize,
    gi: usize,
    instance: u32,
    node: incdes_graph::NodeId,
) -> usize {
    let g = &apps[si].app.graphs[gi];
    graph_bases[spec_offsets[si] + gi] + instance as usize * g.process_count() + node.index()
}

/// The list-scheduling loop shared by the full and delta paths: pops
/// ready jobs from `heap` until none remain, reserving processor time
/// and bus slots, appending to the output table vectors and the run
/// record being built. The caller has already seeded the heap and (for
/// the delta path) spliced the prefix.
///
/// On failure the partially processed step is **rolled back** — its
/// reservation and any messages it already placed are undone — so the
/// completed steps still satisfy the record invariant (`timelines =
/// base + steps`). Infeasible trials are the bread and butter of the
/// SA/MH neighborhoods; keeping their prefixes splicable means a failed
/// evaluation never knocks the chain back onto the full path.
#[allow(clippy::too_many_arguments)]
fn schedule_loop(
    arch: &Architecture,
    apps: &[AppSpec<'_>],
    jobs: &[JobRec],
    ready: &mut [Time],
    preds_remaining: &mut [u32],
    graph_bases: &[usize],
    spec_offsets: &[usize],
    heap: &mut BinaryHeap<ReadyEntry>,
    pes: &mut [PeTimeline],
    bus: &mut BusTimeline,
    touched: &mut [bool],
    new_bus: &mut BusDelta,
    steps: &mut Vec<StepRec>,
    rec_msgs: &mut Vec<ScheduledMessage>,
    push_step: &mut [u32],
    pop_step: &mut [u32],
) -> Result<(), SchedError> {
    while let Some(entry) = heap.pop() {
        counters::bump(Counter::HeapPops);
        let idx = entry.job_idx;
        let step_idx = steps.len() as u32;
        let j = &jobs[idx];
        let (id, pe, wcet, deadline, gap_hint, si) =
            (j.id, j.pe, j.wcet, j.deadline, j.gap_hint, j.spec);
        let start = pes[pe.index()]
            .reserve_earliest(ready[idx], wcet, gap_hint)
            .map_err(|source| SchedError::NoGap { job: id, source })?;
        touched[pe.index()] = true;
        let end = start + wcet;
        if end > deadline {
            pes[pe.index()].unreserve(start, end);
            return Err(SchedError::DeadlineMiss {
                job: id,
                end,
                deadline,
            });
        }
        pop_step[idx] = step_idx;
        let msg_lo = rec_msgs.len() as u32;

        // Propagate to successors: messages over the bus where needed.
        let spec = &apps[si];
        let g = &spec.app.graphs[id.graph];
        for &e in g.dag().out_edges(id.node) {
            let succ_node = g.dag().target(e);
            let succ_idx = job_index(
                apps,
                graph_bases,
                spec_offsets,
                si,
                id.graph,
                id.instance,
                succ_node,
            );
            let succ_pe = jobs[succ_idx].pe;
            let data_ready = if succ_pe == pe {
                end
            } else {
                let mref = crate::mapping::MsgRef::new(id.graph, e);
                let tx = arch.bus().transmission_time(g.message(e).bytes);
                match bus.schedule_message_nth(pe, end, tx, spec.hints.msg_slot(mref) as usize) {
                    Ok(r) => {
                        new_bus.add(r.occurrence, tx);
                        rec_msgs.push(ScheduledMessage {
                            app: spec.id,
                            msg: mref,
                            instance: id.instance,
                            reservation: r,
                        });
                        r.arrival
                    }
                    Err(source) => {
                        // Roll the partial step back (reverse order, so
                        // frame tails unwind): the completed prefix
                        // stays a valid splice source.
                        for m in rec_msgs[msg_lo as usize..].iter().rev() {
                            bus.unreserve_tail(&m.reservation);
                            new_bus.sub(m.reservation.occurrence, m.reservation.duration());
                        }
                        rec_msgs.truncate(msg_lo as usize);
                        pop_step[idx] = u32::MAX;
                        pes[pe.index()].unreserve(start, end);
                        return Err(SchedError::NoSlot {
                            job: id,
                            msg: mref,
                            source,
                        });
                    }
                }
            };
            ready[succ_idx] = ready[succ_idx].max(data_ready);
            preds_remaining[succ_idx] -= 1;
            if preds_remaining[succ_idx] == 0 {
                push_step[succ_idx] = step_idx + 1;
                heap.push(ReadyEntry::of(jobs, ready, succ_idx));
                counters::bump(Counter::HeapPushes);
            }
        }
        steps.push(StepRec {
            job: idx as u32,
            start,
            end,
            msg_lo,
            msg_hi: rec_msgs.len() as u32,
        });
    }
    debug_assert_eq!(
        steps.len(),
        jobs.len(),
        "acyclic graphs schedule fully (prefix + suffix covers every job)"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Hints, Mapping};
    use incdes_graph::NodeId;
    use incdes_model::{AppId, Application, BusConfig, Message, Process, ProcessGraph};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    fn chain_app() -> (Application, Mapping) {
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let b = g.add_process(Process::new("b").wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let mut m = Mapping::new();
        m.assign(ProcRef::new(0, a), PeId(0));
        m.assign(ProcRef::new(0, b), PeId(1));
        (app, m)
    }

    #[test]
    fn engine_matches_schedule_and_reuses_scratch() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let reference = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();
        for _ in 0..3 {
            let (table, slack) = engine.schedule_with_slack(&arch, &[spec], &base).unwrap();
            assert_eq!(table, reference);
            assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
        }
        assert_eq!(engine.raw_schedule_count(), 3);
        assert!(engine.touched_pes().iter().any(|&t| t));
        assert!(engine.bus_touched());
    }

    #[test]
    fn delta_path_splices_identical_revisit() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let reference = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();
        // First call has no record → full path.
        let (t1, s1) = engine
            .schedule_delta_with_slack(&arch, &[spec], &base)
            .unwrap();
        assert_eq!(engine.delta_schedule_count(), 0);
        // Second call replays the record wholesale (divergence = all).
        let (t2, s2) = engine
            .schedule_delta_with_slack(&arch, &[spec], &base)
            .unwrap();
        assert_eq!(engine.delta_schedule_count(), 1);
        assert_eq!(engine.spliced_step_count(), 2, "both jobs spliced");
        assert_eq!(t1, reference);
        assert_eq!(t2, reference);
        assert_eq!(s1, SlackProfile::from_table(&arch, &reference));
        assert_eq!(s1, s2);
    }

    #[test]
    fn delta_path_tracks_single_moves() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(5)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        let assignments = [
            [PeId(0), PeId(1)],
            [PeId(0), PeId(0)],
            [PeId(1), PeId(0)],
            [PeId(1), PeId(1)],
            [PeId(0), PeId(1)],
        ];
        for assignment in assignments {
            let mut mapping = Mapping::new();
            mapping.assign(ProcRef::new(0, NodeId(0)), assignment[0]);
            mapping.assign(ProcRef::new(0, NodeId(1)), assignment[1]);
            let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
            let (table, slack) = engine
                .schedule_delta_with_slack(&arch, &[spec], &base)
                .unwrap();
            let reference = crate::schedule(&arch, &[spec], None, t(100)).unwrap();
            assert_eq!(table, reference, "assignment {assignment:?}");
            assert_eq!(
                slack,
                SlackProfile::from_table(&arch, &reference),
                "assignment {assignment:?}"
            );
        }
        assert_eq!(engine.raw_schedule_count(), assignments.len());
        assert_eq!(engine.delta_schedule_count(), assignments.len() - 1);
    }

    /// A→B→A with the keyed API: with the record cache enabled, the
    /// revisit splices from A's *own* promoted record (every step kept)
    /// even though B ran in between; with the cache disabled the live
    /// record describes B — the wrong predecessor — and the remapped
    /// root invalidates the whole run.
    #[test]
    fn record_cache_splices_from_true_predecessor() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(5)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();

        let mut map_a = Mapping::new();
        map_a.assign(ProcRef::new(0, a), PeId(0));
        map_a.assign(ProcRef::new(0, b), PeId(1));
        let mut map_b = map_a.clone();
        map_b.assign(ProcRef::new(0, a), PeId(1));
        let spec_a = AppSpec::new(AppId(0), &app, &map_a, &hints);
        let spec_b = AppSpec::new(AppId(0), &app, &map_b, &hints);
        let ref_a = crate::schedule(&arch, &[spec_a], None, t(100)).unwrap();
        let ref_b = crate::schedule(&arch, &[spec_b], None, t(100)).unwrap();

        let (fp_a, fp_b) = (11, 22);
        for cap in [4usize, 0] {
            let mut engine = Scheduler::new();
            engine.set_record_cache_capacity(cap);
            let (t1, _) = engine
                .schedule_keyed_with_slack(&arch, &[spec_a], &base, fp_a)
                .unwrap();
            // B names A as its predecessor: the probe promotes A's live
            // record into the cache (capacity permitting), then splices
            // the live record as usual.
            let (t2, _) = engine
                .schedule_delta_keyed_with_slack(&arch, &[spec_b], &base, None, fp_b, Some(fp_a))
                .unwrap();
            let before = engine.spliced_step_count();
            let (t3, _) = engine
                .schedule_delta_keyed_with_slack(&arch, &[spec_a], &base, None, fp_a, Some(fp_a))
                .unwrap();
            assert_eq!(t1, ref_a, "cap {cap}");
            assert_eq!(t2, ref_b, "cap {cap}");
            assert_eq!(t3, ref_a, "cap {cap}");
            assert_eq!(engine.delta_schedule_count(), 2, "cap {cap}");
            let spliced = engine.spliced_step_count() - before;
            if cap > 0 {
                // Cache hit: the revisit is bit-identical to A's
                // record, so both jobs splice.
                assert_eq!(spliced, 2, "revisit splices A's whole record");
            } else {
                // No cached record: the revisit diffs against the live
                // (B) record, whose remapped root pops at step 0.
                assert_eq!(spliced, 0, "live record is the wrong predecessor");
            }
        }
    }

    #[test]
    fn observability_counters_pin_the_revisit_chain() {
        // The same A→B→A chain as
        // `record_cache_splices_from_true_predecessor`, asserted through
        // the deterministic `obs` counter registry: the registry must
        // agree exactly with the engine's own diagnostics, on the exact
        // event counts the chain is known to produce.
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(5)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(6)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();

        let mut map_a = Mapping::new();
        map_a.assign(ProcRef::new(0, a), PeId(0));
        map_a.assign(ProcRef::new(0, b), PeId(1));
        let mut map_b = map_a.clone();
        map_b.assign(ProcRef::new(0, a), PeId(1));
        let spec_a = AppSpec::new(AppId(0), &app, &map_a, &hints);
        let spec_b = AppSpec::new(AppId(0), &app, &map_b, &hints);

        let (fp_a, fp_b) = (11, 22);
        let mut engine = Scheduler::new();
        engine.set_record_cache_capacity(4);
        let before = counters::snapshot();
        let spliced_before = engine.spliced_step_count();
        engine
            .schedule_keyed_with_slack(&arch, &[spec_a], &base, fp_a)
            .unwrap();
        engine
            .schedule_delta_keyed_with_slack(&arch, &[spec_b], &base, None, fp_b, Some(fp_a))
            .unwrap();
        engine
            .schedule_delta_keyed_with_slack(&arch, &[spec_a], &base, None, fp_a, Some(fp_a))
            .unwrap();
        let d = counters::snapshot().delta_since(&before);
        // B→A promoted A's live record into the cache exactly once, and
        // the revisit hit it exactly once; nothing fell back to the
        // live record.
        assert_eq!(d.get(Counter::RecordCachePromotions), 1);
        assert_eq!(d.get(Counter::RecordCacheHits), 1);
        assert_eq!(d.get(Counter::RecordCacheFallbacks), 0);
        assert_eq!(d.get(Counter::RecordCacheEvictions), 0);
        // The registry's spliced-step tally is the engine's.
        assert_eq!(
            d.get(Counter::SpliceStepsSpliced),
            (engine.spliced_step_count() - spliced_before) as u64
        );
        // One bake of the empty frozen base... done by FrozenBase::empty
        // *before* the snapshot, so this chain itself bakes nothing.
        assert_eq!(d.get(Counter::BaseBakes), 0);
    }

    #[test]
    fn delta_chain_survives_infeasible_moves() {
        let arch = arch2();
        // Two processes; remapping `a` to PE1 overflows the horizon, so
        // that single-move delta fails mid-loop. The rolled-back partial
        // record must keep the chain on the delta path and stay correct.
        let mut g = ProcessGraph::new("g", t(100), t(100));
        g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(150)));
        g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(6)));
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        let mut good = Mapping::new();
        good.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        good.assign(ProcRef::new(0, NodeId(1)), PeId(1));
        let mut bad = good.clone();
        bad.assign(ProcRef::new(0, NodeId(0)), PeId(1));

        let good_spec = AppSpec::new(AppId(0), &app, &good, &hints);
        engine
            .schedule_delta_with_slack(&arch, &[good_spec], &base)
            .unwrap();
        let bad_spec = AppSpec::new(AppId(0), &app, &bad, &hints);
        let err = engine
            .schedule_delta_with_slack(&arch, &[bad_spec], &base)
            .unwrap_err();
        assert_eq!(
            err,
            crate::schedule(&arch, &[bad_spec], None, t(100)).unwrap_err()
        );
        assert_eq!(
            engine.delta_schedule_count(),
            1,
            "failure took the delta path"
        );
        // The failed run rolled its partial step back, so the next
        // evaluation splices against its completed prefix — and matches
        // the oracle exactly.
        let (table, slack) = engine
            .schedule_delta_with_slack(&arch, &[good_spec], &base)
            .unwrap();
        assert_eq!(
            engine.delta_schedule_count(),
            2,
            "the partial record survives failures"
        );
        let reference = crate::schedule(&arch, &[good_spec], None, t(100)).unwrap();
        assert_eq!(table, reference);
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
    }

    /// An `AppId` change alone (same app, same design variables) must
    /// never splice: spliced messages carry the recorded app id
    /// verbatim, so the record guard has to fall back to the full path.
    #[test]
    fn delta_record_guarded_by_app_id() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        let spec0 = AppSpec::new(AppId(0), &app, &mapping, &hints);
        engine
            .schedule_delta_with_slack(&arch, &[spec0], &base)
            .unwrap();
        let spec1 = AppSpec::new(AppId(1), &app, &mapping, &hints);
        let (table, slack) = engine
            .schedule_delta_with_slack(&arch, &[spec1], &base)
            .unwrap();
        assert_eq!(engine.delta_schedule_count(), 0, "id change never splices");
        let reference = crate::schedule(&arch, &[spec1], None, t(100)).unwrap();
        assert_eq!(table, reference);
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
        assert!(table.messages().iter().all(|m| m.app == AppId(1)));
    }

    /// A *shape* change (same job layout, different deadline) must never
    /// splice — the record guard falls back to the full path.
    #[test]
    fn delta_record_guarded_by_graph_shape() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        g.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let app_a = Application::new("a", vec![g]);
        let mut g2 = ProcessGraph::new("g", t(100), t(50));
        g2.add_process(Process::new("a").wcet(PeId(0), t(8)));
        let app_b = Application::new("b", vec![g2]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, NodeId(0)), PeId(0));
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        let spec_a = AppSpec::new(AppId(0), &app_a, &mapping, &hints);
        let spec_b = AppSpec::new(AppId(0), &app_b, &mapping, &hints);
        engine
            .schedule_delta_with_slack(&arch, &[spec_a], &base)
            .unwrap();
        let (table, _) = engine
            .schedule_delta_with_slack(&arch, &[spec_b], &base)
            .unwrap();
        assert_eq!(
            engine.delta_schedule_count(),
            0,
            "shape change never splices"
        );
        assert_eq!(
            table,
            crate::schedule(&arch, &[spec_b], None, t(100)).unwrap()
        );
    }

    #[test]
    fn delta_record_guarded_by_base_generation() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let frozen = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base_a = FrozenBase::empty(&arch, t(100)).unwrap();
        let base_b = FrozenBase::new(&arch, Some(&frozen), t(100)).unwrap();
        assert_ne!(base_a.generation(), base_b.generation());
        assert_eq!(base_a.generation(), base_a.clone().generation());

        let (app2, mapping2) = chain_app();
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping2, &hints);
        let mut engine = Scheduler::new();
        engine
            .schedule_delta_with_slack(&arch, &[spec2], &base_a)
            .unwrap();
        // Same structure, different base: the record must not splice.
        let (table, slack) = engine
            .schedule_delta_with_slack(&arch, &[spec2], &base_b)
            .unwrap();
        assert_eq!(engine.delta_schedule_count(), 0);
        let reference = crate::schedule(&arch, &[spec2], Some(&frozen), t(100)).unwrap();
        assert_eq!(table, reference);
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
    }

    #[test]
    fn shared_profiles_alias_base_storage() {
        let arch = arch2();
        // Current app occupies only PE0; PE1 carries only frozen load.
        let (fapp, fmap) = chain_app();
        let hints = Hints::empty();
        let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &hints);
        let frozen = crate::schedule(&arch, &[fspec], None, t(100)).unwrap();
        let base = FrozenBase::new(&arch, Some(&frozen), t(100)).unwrap();

        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(5)));
        let app = Application::new("solo", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);

        let mut engine = Scheduler::new();
        let (_, slack) = engine.schedule_with_slack(&arch, &[spec], &base).unwrap();
        // PE1 untouched → its gap list is the base's storage, not a copy.
        assert!(Arc::ptr_eq(
            slack.gaps_shared(PeId(1)),
            base.gaps_shared(PeId(1))
        ));
        assert!(!Arc::ptr_eq(
            slack.gaps_shared(PeId(0)),
            base.gaps_shared(PeId(0))
        ));
        // No new message → the bus windows alias the base too.
        assert!(Arc::ptr_eq(
            slack.bus_windows_shared(),
            base.bus_windows_shared()
        ));
        assert_eq!(engine.fresh_gap_list_count(), 1, "only PE0 materialized");
    }

    #[test]
    fn frozen_base_bakes_replay_once() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = crate::schedule(&arch, &[spec], None, t(100)).unwrap();

        let base = FrozenBase::new(&arch, Some(&first), t(100)).unwrap();
        assert_eq!(base.frozen_job_count(), 2);
        assert_eq!(base.frozen_message_count(), 1);
        assert_eq!(base.horizon(), t(100));
        assert_eq!(base.pe_count(), 2);
        // Frozen-only slack matches the profile of the frozen table.
        let frozen_slack = SlackProfile::from_table(&arch, &first);
        assert_eq!(base.gaps_of(PeId(0)), frozen_slack.gaps_of(PeId(0)));
        assert_eq!(base.bus_windows(), frozen_slack.bus_windows());

        // Scheduling a second app on the base matches the naive path.
        let (app2, mapping2) = chain_app();
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping2, &hints);
        let reference = crate::schedule(&arch, &[spec2], Some(&first), t(100)).unwrap();
        let mut engine = Scheduler::new();
        let (table, slack) = engine.schedule_with_slack(&arch, &[spec2], &base).unwrap();
        assert_eq!(table, reference);
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
    }

    #[test]
    fn frozen_base_rejects_horizon_mismatch() {
        let arch = arch2();
        let (app, mapping) = chain_app();
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let first = crate::schedule(&arch, &[spec], None, t(100)).unwrap();
        assert_eq!(
            FrozenBase::new(&arch, Some(&first), t(200)).unwrap_err(),
            SchedError::FrozenConflict
        );
        assert!(matches!(
            FrozenBase::empty(&arch, Time::ZERO).unwrap_err(),
            SchedError::BadHorizon { .. }
        ));
        assert!(matches!(
            FrozenBase::empty(&arch, t(15)).unwrap_err(),
            SchedError::BadHorizon { .. }
        ));
    }

    #[test]
    fn untouched_pes_reuse_frozen_gap_lists() {
        let arch = arch2();
        // Current app occupies only PE0; PE1 carries only frozen load.
        let (fapp, fmap) = chain_app();
        let hints = Hints::empty();
        let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &hints);
        let frozen = crate::schedule(&arch, &[fspec], None, t(100)).unwrap();
        let base = FrozenBase::new(&arch, Some(&frozen), t(100)).unwrap();

        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(5)));
        let app = Application::new("solo", vec![g]);
        let mut mapping = Mapping::new();
        mapping.assign(ProcRef::new(0, a), PeId(0));
        let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);

        let mut engine = Scheduler::new();
        let (table, slack) = engine.schedule_with_slack(&arch, &[spec], &base).unwrap();
        assert!(engine.touched_pes()[0]);
        assert!(!engine.touched_pes()[1]);
        assert!(!engine.bus_touched());
        assert_eq!(slack.gaps_of(PeId(1)), base.gaps_of(PeId(1)));
        assert_eq!(slack, SlackProfile::from_table(&arch, &table));
        let _ = table.job(JobId::new(AppId(1), 0, 0, NodeId(0))).unwrap();
    }

    /// Reusing one `Scheduler` across *different* applications whose
    /// graphs happen to share a node → PE assignment must not serve
    /// stale priorities: the cache is keyed by the full cost inputs
    /// (WCETs, topology, message sizes), not the assignment alone.
    #[test]
    fn priority_cache_does_not_alias_across_apps() {
        let arch = arch2();
        let base = FrozenBase::empty(&arch, t(200)).unwrap();
        let mut engine = Scheduler::new();
        let hints = Hints::empty();

        // App A: root → long(50) and root → short(5), all on PE0 — the
        // long branch outranks the short one.
        let mut ga = ProcessGraph::new("ga", t(200), t(200));
        let r = ga.add_process(Process::new("r").wcet(PeId(0), t(2)));
        let l = ga.add_process(Process::new("l").wcet(PeId(0), t(50)));
        let s = ga.add_process(Process::new("s").wcet(PeId(0), t(5)));
        ga.add_message(r, l, Message::new("m1", 1)).unwrap();
        ga.add_message(r, s, Message::new("m2", 1)).unwrap();
        let app_a = Application::new("a", vec![ga]);
        // App B: same shape and assignment, but the branch weights are
        // swapped — stale priorities from A would flip its order.
        let mut gb = ProcessGraph::new("gb", t(200), t(200));
        let r2 = gb.add_process(Process::new("r").wcet(PeId(0), t(2)));
        let l2 = gb.add_process(Process::new("l").wcet(PeId(0), t(5)));
        let s2 = gb.add_process(Process::new("s").wcet(PeId(0), t(50)));
        gb.add_message(r2, l2, Message::new("m1", 1)).unwrap();
        gb.add_message(r2, s2, Message::new("m2", 1)).unwrap();
        let app_b = Application::new("b", vec![gb]);

        let mapping: Mapping = [
            (ProcRef::new(0, NodeId(0)), PeId(0)),
            (ProcRef::new(0, NodeId(1)), PeId(0)),
            (ProcRef::new(0, NodeId(2)), PeId(0)),
        ]
        .into_iter()
        .collect();
        for app in [&app_a, &app_b, &app_a] {
            let spec = AppSpec::new(AppId(0), app, &mapping, &hints);
            let engine_table = engine.schedule(&arch, &[spec], &base).unwrap();
            let naive = crate::schedule(&arch, &[spec], None, t(200)).unwrap();
            assert_eq!(engine_table, naive, "stale priorities served");
        }
    }

    #[test]
    fn priority_cache_invalidates_on_remap() {
        let arch = arch2();
        let mut g = ProcessGraph::new("g", t(100), t(100));
        let a = g.add_process(Process::new("a").wcet(PeId(0), t(8)).wcet(PeId(1), t(4)));
        let b = g.add_process(Process::new("b").wcet(PeId(0), t(6)).wcet(PeId(1), t(3)));
        g.add_message(a, b, Message::new("m", 4)).unwrap();
        let app = Application::new("app", vec![g]);
        let hints = Hints::empty();
        let base = FrozenBase::empty(&arch, t(100)).unwrap();
        let mut engine = Scheduler::new();

        for assignment in [
            [PeId(0), PeId(0)],
            [PeId(1), PeId(1)],
            [PeId(0), PeId(1)],
            [PeId(0), PeId(0)],
        ] {
            let mut mapping = Mapping::new();
            mapping.assign(ProcRef::new(0, NodeId(0)), assignment[0]);
            mapping.assign(ProcRef::new(0, NodeId(1)), assignment[1]);
            let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
            let engine_table = engine.schedule(&arch, &[spec], &base).unwrap();
            let naive = crate::schedule(&arch, &[spec], None, t(100)).unwrap();
            assert_eq!(engine_table, naive, "assignment {assignment:?}");
        }
    }
}
