//! Schedule analysis: response times, laxity and utilization reports.
//!
//! The scheduler guarantees feasibility; this module answers the
//! follow-up questions a designer asks of a finished schedule table —
//! how close to its deadline does each graph instance finish, how loaded
//! is each resource, and where is the system's bottleneck.

use crate::table::ScheduleTable;
use incdes_model::{AppId, Architecture, PeId, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Completion statistics of one process-graph instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceResponse {
    /// Owning application.
    pub app: AppId,
    /// Graph index within the application.
    pub graph: usize,
    /// Instance (release) number.
    pub instance: u32,
    /// Absolute release.
    pub release: Time,
    /// Absolute deadline.
    pub deadline: Time,
    /// Completion time (latest job end of the instance).
    pub finish: Time,
}

impl InstanceResponse {
    /// Response time: completion relative to release.
    pub fn response_time(&self) -> Time {
        self.finish - self.release
    }

    /// Laxity: time to spare before the deadline (zero if missed).
    pub fn laxity(&self) -> Time {
        self.deadline.saturating_sub(self.finish)
    }

    /// True if the instance met its deadline.
    pub fn met_deadline(&self) -> bool {
        self.finish <= self.deadline
    }
}

/// Per-PE load numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeLoad {
    /// The PE.
    pub pe: PeId,
    /// Busy time over the horizon.
    pub busy: Time,
    /// Fraction of the horizon busy, in `[0, 1]`.
    pub utilization: f64,
    /// Number of jobs.
    pub jobs: usize,
}

/// A complete analysis of one schedule table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// The analyzed horizon.
    pub horizon: Time,
    /// Response statistics per graph instance, in `(app, graph, instance)`
    /// order.
    pub instances: Vec<InstanceResponse>,
    /// Load per PE, in PE order.
    pub pe_loads: Vec<PeLoad>,
    /// Bus slot time in use over the horizon.
    pub bus_busy: Time,
    /// Bus utilization (used slot time / total slot time), in `[0, 1]`.
    pub bus_utilization: f64,
    /// Number of scheduled messages.
    pub messages: usize,
}

impl ScheduleReport {
    /// Analyzes `table` on `arch`.
    pub fn new(arch: &Architecture, table: &ScheduleTable) -> Self {
        // Instance completion times.
        let mut finish: BTreeMap<(AppId, usize, u32), InstanceResponse> = BTreeMap::new();
        for j in table.jobs() {
            let key = (j.job.app, j.job.graph, j.job.instance);
            let e = finish.entry(key).or_insert(InstanceResponse {
                app: j.job.app,
                graph: j.job.graph,
                instance: j.job.instance,
                release: j.release,
                deadline: j.deadline,
                finish: Time::ZERO,
            });
            e.finish = e.finish.max(j.end);
        }

        let horizon = table.horizon();
        let pe_loads = arch
            .pe_ids()
            .map(|pe| {
                let busy = table.busy_time_on(pe);
                PeLoad {
                    pe,
                    busy,
                    utilization: if horizon.is_zero() {
                        0.0
                    } else {
                        busy.as_f64() / horizon.as_f64()
                    },
                    jobs: table.jobs_on(pe).count(),
                }
            })
            .collect();

        let bus = table.bus_timeline(arch);
        ScheduleReport {
            horizon,
            instances: finish.into_values().collect(),
            pe_loads,
            bus_busy: bus.total_used(),
            bus_utilization: bus.utilization(),
            messages: table.messages().len(),
        }
    }

    /// The worst (smallest-laxity) instance, if any jobs exist.
    pub fn tightest_instance(&self) -> Option<&InstanceResponse> {
        self.instances
            .iter()
            .min_by_key(|i| (i.laxity(), i.app, i.graph, i.instance))
    }

    /// The most loaded PE, if the architecture has any.
    pub fn bottleneck_pe(&self) -> Option<&PeLoad> {
        self.pe_loads.iter().max_by(|a, b| {
            a.utilization
                .total_cmp(&b.utilization)
                .then(b.pe.cmp(&a.pe))
        })
    }

    /// Average processor utilization across PEs.
    pub fn average_utilization(&self) -> f64 {
        if self.pe_loads.is_empty() {
            0.0
        } else {
            self.pe_loads.iter().map(|l| l.utilization).sum::<f64>() / self.pe_loads.len() as f64
        }
    }

    /// True if every instance met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.instances.iter().all(InstanceResponse::met_deadline)
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule report over {}:", self.horizon)?;
        for l in &self.pe_loads {
            writeln!(
                f,
                "  {}: {:>5.1}% busy ({} jobs, {})",
                l.pe,
                l.utilization * 100.0,
                l.jobs,
                l.busy
            )?;
        }
        writeln!(
            f,
            "  bus: {:>5.1}% of slot time ({} messages, {})",
            self.bus_utilization * 100.0,
            self.messages,
            self.bus_busy
        )?;
        if let Some(t) = self.tightest_instance() {
            writeln!(
                f,
                "  tightest instance: {}/g{}#{} finishes {} before its deadline",
                t.app,
                t.graph,
                t.instance,
                t.laxity()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::table::{ScheduleTable, ScheduledJob};
    use incdes_graph::NodeId;
    use incdes_model::BusConfig;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    fn job(
        app: u32,
        inst: u32,
        node: u32,
        pe: u32,
        s: u64,
        e: u64,
        rel: u64,
        dl: u64,
    ) -> ScheduledJob {
        ScheduledJob {
            job: JobId::new(AppId(app), 0, inst, NodeId(node)),
            pe: PeId(pe),
            start: t(s),
            end: t(e),
            release: t(rel),
            deadline: t(dl),
        }
    }

    #[test]
    fn report_on_empty_table() {
        let arch = arch2();
        let r = ScheduleReport::new(&arch, &ScheduleTable::empty(t(100)));
        assert!(r.instances.is_empty());
        assert_eq!(r.average_utilization(), 0.0);
        assert_eq!(r.bus_utilization, 0.0);
        assert!(r.all_deadlines_met());
        assert!(r.tightest_instance().is_none());
        assert_eq!(r.bottleneck_pe().unwrap().pe, PeId(0));
    }

    #[test]
    fn instance_completion_takes_latest_job() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(100),
            vec![
                job(0, 0, 0, 0, 0, 10, 0, 80),
                job(0, 0, 1, 1, 20, 45, 0, 80),
            ],
            vec![],
        );
        let r = ScheduleReport::new(&arch, &table);
        assert_eq!(r.instances.len(), 1);
        let i = &r.instances[0];
        assert_eq!(i.finish, t(45));
        assert_eq!(i.response_time(), t(45));
        assert_eq!(i.laxity(), t(35));
        assert!(i.met_deadline());
    }

    #[test]
    fn separate_instances_tracked() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(100),
            vec![
                job(0, 0, 0, 0, 0, 10, 0, 50),
                job(0, 1, 0, 0, 50, 70, 50, 100),
            ],
            vec![],
        );
        let r = ScheduleReport::new(&arch, &table);
        assert_eq!(r.instances.len(), 2);
        assert_eq!(r.instances[0].response_time(), t(10));
        assert_eq!(r.instances[1].response_time(), t(20));
    }

    #[test]
    fn loads_and_bottleneck() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(100),
            vec![
                job(0, 0, 0, 0, 0, 30, 0, 100),
                job(0, 0, 1, 1, 0, 80, 0, 100),
            ],
            vec![],
        );
        let r = ScheduleReport::new(&arch, &table);
        assert_eq!(r.pe_loads[0].busy, t(30));
        assert!((r.pe_loads[0].utilization - 0.3).abs() < 1e-12);
        assert_eq!(r.bottleneck_pe().unwrap().pe, PeId(1));
        assert!((r.average_utilization() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn tightest_instance_has_min_laxity() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(200),
            vec![
                job(0, 0, 0, 0, 0, 10, 0, 100), // laxity 90
                job(1, 0, 0, 1, 0, 95, 0, 100), // laxity 5
            ],
            vec![],
        );
        let r = ScheduleReport::new(&arch, &table);
        let tightest = r.tightest_instance().unwrap();
        assert_eq!(tightest.app, AppId(1));
        assert_eq!(tightest.laxity(), t(5));
    }

    #[test]
    fn missed_deadline_reported() {
        let arch = arch2();
        let table = ScheduleTable::new(t(200), vec![job(0, 0, 0, 0, 0, 120, 0, 100)], vec![]);
        let r = ScheduleReport::new(&arch, &table);
        assert!(!r.all_deadlines_met());
        assert_eq!(r.instances[0].laxity(), Time::ZERO);
    }

    #[test]
    fn display_is_informative() {
        let arch = arch2();
        let table = ScheduleTable::new(t(100), vec![job(0, 0, 0, 0, 0, 50, 0, 100)], vec![]);
        let s = ScheduleReport::new(&arch, &table).to_string();
        assert!(s.contains("pe0"));
        assert!(s.contains("bus"));
        assert!(s.contains("tightest instance"));
    }
}
