//! Schedule tables: the output of the static cyclic scheduler.
//!
//! A [`ScheduleTable`] records the absolute start/end of every job and the
//! bus reservation of every inter-PE message over one hyperperiod. Tables
//! of *existing* applications are frozen: when a new application is added
//! and the hyperperiod grows, the old table is replicated verbatim
//! ([`ScheduleTable::replicate_to`]) — requirement (a) of the paper, "no
//! modifications are performed to the existing applications".
//!
//! [`ScheduleTable::validate`] re-checks every scheduling invariant from
//! scratch (durations, overlap, precedence, TDMA framing, deadlines); the
//! test-suite and property tests run it on everything the scheduler
//! produces.

use crate::job::JobId;
use crate::mapping::{Mapping, MsgRef};
use crate::pe_timeline::PeTimeline;
use incdes_model::{AppId, Application, Architecture, PeId, Time};
use incdes_tdma::{BusReservation, BusTimeline};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// One scheduled job (process instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// Which job this is.
    pub job: JobId,
    /// The PE it runs on.
    pub pe: PeId,
    /// Absolute start time.
    pub start: Time,
    /// Absolute end time (`start + WCET`).
    pub end: Time,
    /// Absolute release of the instance (`k · period`).
    pub release: Time,
    /// Absolute deadline of the instance (`k · period + deadline`).
    pub deadline: Time,
}

/// One scheduled message (edge instance) on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledMessage {
    /// Owning application.
    pub app: AppId,
    /// Which message (graph + edge).
    pub msg: MsgRef,
    /// Instance (release) number.
    pub instance: u32,
    /// The bus reservation carrying it.
    pub reservation: BusReservation,
}

/// Canonical within-table ordering of jobs: `(pe, start, id)`.
///
/// The single source of truth shared by [`ScheduleTable::new`]'s sort,
/// the engine's per-run sort and the sorted-merge fast path
/// ([`ScheduleTable::from_sorted_merge`]) — the merge reproduces a
/// stable sort only because all three use exactly this key.
pub fn job_sort_key(j: &ScheduledJob) -> (PeId, Time, JobId) {
    (j.pe, j.start, j.job)
}

/// Canonical within-table ordering of messages: transmission start,
/// then identity. Shared for the same reason as [`job_sort_key`].
pub fn message_sort_key(m: &ScheduledMessage) -> (Time, AppId, MsgRef, u32) {
    (m.reservation.transmit_start, m.app, m.msg, m.instance)
}

/// Invariant violation found by [`ScheduleTable::validate`] (or a
/// replication error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A job lies outside `[0, horizon)`.
    OutOfHorizon(JobId),
    /// A job's duration differs from its WCET on the mapped PE.
    WrongDuration(JobId),
    /// A job runs on a PE that differs from the mapping, or the mapping
    /// lacks the process.
    MappingMismatch(JobId),
    /// Two jobs overlap on one PE.
    PeOverlap(JobId, JobId),
    /// An expected job is missing from the table.
    MissingJob(JobId),
    /// A job appears twice.
    DuplicateJob(JobId),
    /// A job starts before its release.
    EarlyStart(JobId),
    /// A job ends after its deadline.
    DeadlineMiss(JobId),
    /// A dependent job starts before its predecessor's data is available.
    PrecedenceViolation {
        /// Producer job.
        pred: JobId,
        /// Consumer job.
        succ: JobId,
    },
    /// An inter-PE edge instance has no bus reservation.
    MissingMessage {
        /// Owning application.
        app: AppId,
        /// The message.
        msg: MsgRef,
        /// Instance number.
        instance: u32,
    },
    /// A message's slot occurrence starts before the producer finished
    /// (TTP frames are assembled before the slot begins).
    MessageTooEarly {
        /// Owning application.
        app: AppId,
        /// The message.
        msg: MsgRef,
        /// Instance number.
        instance: u32,
    },
    /// A message rides a slot not owned by its sender's PE, or lies
    /// outside its slot, or overlaps another message in the frame.
    BusViolation {
        /// Owning application.
        app: AppId,
        /// The message.
        msg: MsgRef,
        /// Instance number.
        instance: u32,
    },
    /// `replicate_to` called with a horizon that is not a positive
    /// multiple of the table's horizon.
    ReplicateAlign {
        /// Current horizon.
        old: Time,
        /// Requested horizon.
        new: Time,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::OutOfHorizon(j) => write!(f, "job {j} lies outside the horizon"),
            TableError::WrongDuration(j) => write!(f, "job {j} duration differs from its WCET"),
            TableError::MappingMismatch(j) => {
                write!(f, "job {j} placed on a PE not in the mapping")
            }
            TableError::PeOverlap(a, b) => write!(f, "jobs {a} and {b} overlap on one PE"),
            TableError::MissingJob(j) => write!(f, "job {j} is missing from the table"),
            TableError::DuplicateJob(j) => write!(f, "job {j} appears twice"),
            TableError::EarlyStart(j) => write!(f, "job {j} starts before its release"),
            TableError::DeadlineMiss(j) => write!(f, "job {j} misses its deadline"),
            TableError::PrecedenceViolation { pred, succ } => {
                write!(f, "job {succ} starts before data from {pred} is available")
            }
            TableError::MissingMessage { app, msg, instance } => {
                write!(f, "message {app}/{msg}#{instance} has no bus reservation")
            }
            TableError::MessageTooEarly { app, msg, instance } => write!(
                f,
                "message {app}/{msg}#{instance} rides a slot starting before its producer finished"
            ),
            TableError::BusViolation { app, msg, instance } => {
                write!(f, "message {app}/{msg}#{instance} violates TDMA framing")
            }
            TableError::ReplicateAlign { old, new } => write!(
                f,
                "cannot replicate a schedule of horizon {old} to {new} (not a positive multiple)"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// A complete static cyclic schedule over one hyperperiod.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTable {
    horizon: Time,
    /// `Arc`-backed so cloning a table (the evaluation memo does it on
    /// every raw schedule and every hit) is a reference-count bump, not
    /// an `O(frozen + current)` copy. Content-immutable after
    /// construction; [`ScheduleTable::merge`] copies-on-write.
    jobs: Arc<Vec<ScheduledJob>>,
    messages: Arc<Vec<ScheduledMessage>>,
}

impl ScheduleTable {
    /// Creates a table from raw parts, sorting jobs by `(pe, start)` and
    /// messages by transmission start.
    pub fn new(
        horizon: Time,
        mut jobs: Vec<ScheduledJob>,
        mut messages: Vec<ScheduledMessage>,
    ) -> Self {
        jobs.sort_by_key(job_sort_key);
        messages.sort_by_key(message_sort_key);
        ScheduleTable {
            horizon,
            jobs: Arc::new(jobs),
            messages: Arc::new(messages),
        }
    }

    /// Builds a table by merging two sequences that are each already in
    /// canonical order — the frozen base's jobs/messages and the current
    /// run's (sorted by the caller) — in `O(n)` instead of re-sorting
    /// the concatenation. Produces exactly what [`ScheduleTable::new`]
    /// would: the sort is stable and no two entries share a key (jobs on
    /// one PE have distinct starts, bus transmissions have distinct
    /// start times), so merge order equals stable-sort order.
    pub(crate) fn from_sorted_merge(
        horizon: Time,
        frozen_jobs: &[ScheduledJob],
        current_jobs: &[ScheduledJob],
        frozen_msgs: &[ScheduledMessage],
        current_msgs: &[ScheduledMessage],
    ) -> Self {
        fn merge<T: Copy, K: Ord>(a: &[T], b: &[T], key: impl Fn(&T) -> K) -> Vec<T> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if key(&a[i]) <= key(&b[j]) {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            out
        }
        let jobs = merge(frozen_jobs, current_jobs, job_sort_key);
        let messages = merge(frozen_msgs, current_msgs, message_sort_key);
        debug_assert!(
            jobs.windows(2)
                .all(|w| job_sort_key(&w[0]) <= job_sort_key(&w[1])),
            "merge inputs were not sorted"
        );
        debug_assert!(
            messages
                .windows(2)
                .all(|w| message_sort_key(&w[0]) <= message_sort_key(&w[1])),
            "merge inputs were not sorted"
        );
        ScheduleTable {
            horizon,
            jobs: Arc::new(jobs),
            messages: Arc::new(messages),
        }
    }

    /// An empty table (no applications committed yet) over `horizon`.
    pub fn empty(horizon: Time) -> Self {
        ScheduleTable {
            horizon,
            jobs: Arc::new(Vec::new()),
            messages: Arc::new(Vec::new()),
        }
    }

    /// The hyperperiod covered.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// All jobs, sorted by `(pe, start)`.
    pub fn jobs(&self) -> &[ScheduledJob] {
        &self.jobs
    }

    /// All messages, sorted by transmission start.
    pub fn messages(&self) -> &[ScheduledMessage] {
        &self.messages
    }

    /// Jobs running on `pe`, in start order.
    pub fn jobs_on(&self, pe: PeId) -> impl Iterator<Item = &ScheduledJob> {
        self.jobs.iter().filter(move |j| j.pe == pe)
    }

    /// The scheduled record of `job`, if present.
    pub fn job(&self, job: JobId) -> Option<&ScheduledJob> {
        self.jobs.iter().find(|j| j.job == job)
    }

    /// The reservation of a message instance, if present.
    pub fn message(&self, app: AppId, msg: MsgRef, instance: u32) -> Option<&ScheduledMessage> {
        self.messages
            .iter()
            .find(|m| m.app == app && m.msg == msg && m.instance == instance)
    }

    /// True if every job meets its deadline.
    pub fn is_deadline_clean(&self) -> bool {
        self.jobs.iter().all(|j| j.end <= j.deadline)
    }

    /// Latest end time of any job of `app` (its makespan within the
    /// hyperperiod), or zero if the app has no jobs.
    pub fn finish_of_app(&self, app: AppId) -> Time {
        self.jobs
            .iter()
            .filter(|j| j.job.app == app)
            .map(|j| j.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Sum over jobs of `end - start` on `pe`.
    pub fn busy_time_on(&self, pe: PeId) -> Time {
        self.jobs_on(pe).map(|j| j.end - j.start).sum()
    }

    /// Merges another table (over the same horizon) into this one.
    ///
    /// Used when committing a newly scheduled application on top of the
    /// frozen tables of existing ones. No validity checking happens here;
    /// run [`validate`](Self::validate) afterwards in tests.
    ///
    /// # Panics
    ///
    /// Panics if the horizons differ.
    pub fn merge(&mut self, other: &ScheduleTable) {
        assert_eq!(
            self.horizon, other.horizon,
            "cannot merge tables over different horizons"
        );
        let jobs = Arc::make_mut(&mut self.jobs);
        jobs.extend(other.jobs.iter().copied());
        jobs.sort_by_key(|j| (j.pe, j.start, j.job));
        let messages = Arc::make_mut(&mut self.messages);
        messages.extend(other.messages.iter().copied());
        messages.sort_by_key(|m| (m.reservation.transmit_start, m.app, m.msg, m.instance));
    }

    /// Replicates this table onto a longer horizon: every job and message
    /// is copied `new/old` times, shifted by multiples of the old horizon.
    /// Bus occurrence indices are shifted using the bus geometry from
    /// `arch`.
    ///
    /// # Errors
    ///
    /// [`TableError::ReplicateAlign`] if `new_horizon` is not a positive
    /// multiple of the current horizon.
    pub fn replicate_to(
        &self,
        arch: &Architecture,
        new_horizon: Time,
    ) -> Result<ScheduleTable, TableError> {
        if new_horizon.is_zero()
            || self.horizon.is_zero()
            || !(new_horizon % self.horizon).is_zero()
        {
            return Err(TableError::ReplicateAlign {
                old: self.horizon,
                new: new_horizon,
            });
        }
        let reps = new_horizon.ticks() / self.horizon.ticks();
        let cycle = arch.bus().cycle_length();
        let slots_per_cycle: u64 = arch.bus().rounds.iter().map(|r| r.slots.len() as u64).sum();
        // The horizon of a valid table is a multiple of the bus cycle.
        let occ_per_horizon = self.horizon.ticks() / cycle.ticks() * slots_per_cycle;

        let mut jobs = Vec::with_capacity(self.jobs.len() * reps as usize);
        let mut messages = Vec::with_capacity(self.messages.len() * reps as usize);
        for k in 0..reps {
            let shift = Time::new(self.horizon.ticks() * k);
            for j in self.jobs.iter() {
                // Instance numbers continue across replicas so JobIds stay
                // unique: the graph with period T has horizon/T instances
                // per replica.
                let period = if j.job.instance == 0 {
                    // Derive the per-replica instance count from release
                    // spacing; instance 0 carries no spacing info, but the
                    // count is horizon / period and period divides horizon.
                    Time::ZERO
                } else {
                    Time::ZERO
                };
                let _ = period; // instance arithmetic handled below
                jobs.push(ScheduledJob {
                    job: j.job,
                    pe: j.pe,
                    start: j.start + shift,
                    end: j.end + shift,
                    release: j.release + shift,
                    deadline: j.deadline + shift,
                });
            }
            for m in self.messages.iter() {
                let r = m.reservation;
                messages.push(ScheduledMessage {
                    app: m.app,
                    msg: m.msg,
                    instance: m.instance,
                    reservation: BusReservation {
                        occurrence: r.occurrence + k * occ_per_horizon,
                        owner: r.owner,
                        transmit_start: r.transmit_start + shift,
                        arrival: r.arrival + shift,
                    },
                });
            }
        }
        // Re-number instances so JobIds are unique across replicas.
        renumber_instances(&mut jobs, &mut messages, self.horizon);
        Ok(ScheduleTable::new(new_horizon, jobs, messages))
    }

    /// Returns this table with the given applications' jobs and messages
    /// removed (the decommission/eviction primitive).
    ///
    /// Remaining jobs keep their exact start times. Remaining messages
    /// stay in their slot occurrence but **compact to the front of the
    /// frame**: TTP frames are reassembled every cycle, so removing a
    /// message can only move the others *earlier* inside the same slot.
    /// Arrivals never get later, so precedence, framing and deadline
    /// invariants are all preserved — and the freed bus time becomes a
    /// contiguous slack tail that [`crate::SlackProfile`] and later
    /// commits can actually use ([`Self::bus_timeline`] replays frames
    /// contiguously, so holes in a frame are not representable).
    pub fn without_apps(&self, arch: &Architecture, exclude: &[AppId]) -> ScheduleTable {
        let jobs: Vec<ScheduledJob> = self
            .jobs
            .iter()
            .filter(|j| !exclude.contains(&j.job.app))
            .copied()
            .collect();
        let mut messages: Vec<ScheduledMessage> = self
            .messages
            .iter()
            .filter(|m| !exclude.contains(&m.app))
            .copied()
            .collect();
        let mut bus = BusTimeline::new(arch.bus(), self.horizon)
            .expect("table horizon is a multiple of the bus cycle");
        for (occ, indices) in frame_replay_order(&messages) {
            for i in indices {
                let m = &mut messages[i];
                let r = bus
                    .reserve_in_occurrence(m.reservation.owner, occ, m.reservation.duration())
                    .expect("a compacted frame always fits its own slot");
                m.reservation = r;
            }
        }
        ScheduleTable::new(self.horizon, jobs, messages)
    }

    /// Rebuilds the per-PE busy timelines implied by this table.
    pub fn pe_timelines(&self, arch: &Architecture) -> Vec<PeTimeline> {
        let mut tls: Vec<PeTimeline> = (0..arch.pe_count())
            .map(|_| PeTimeline::new(self.horizon))
            .collect();
        for j in self.jobs.iter() {
            tls[j.pe.index()]
                .reserve(j.start, j.end)
                .expect("table jobs are disjoint per PE");
        }
        tls
    }

    /// Rebuilds the bus timeline implied by this table by replaying all
    /// reservations in frame order.
    ///
    /// # Panics
    ///
    /// Panics if the table's messages violate TDMA framing (validated
    /// tables never do).
    pub fn bus_timeline(&self, arch: &Architecture) -> BusTimeline {
        let mut bus = BusTimeline::new(arch.bus(), self.horizon)
            .expect("table horizon is a multiple of the bus cycle");
        for (occ, indices) in frame_replay_order(&self.messages) {
            for i in indices {
                let m = &self.messages[i];
                let r = bus
                    .reserve_in_occurrence(m.reservation.owner, occ, m.reservation.duration())
                    .expect("validated tables replay cleanly");
                debug_assert_eq!(r.transmit_start, m.reservation.transmit_start);
            }
        }
        bus
    }

    /// Exhaustively validates the table against the applications it is
    /// supposed to schedule.
    ///
    /// `apps` lists every application with its id and mapping. Checks:
    /// completeness (every job of every instance present exactly once),
    /// durations = WCET, mapping consistency, release/deadline windows,
    /// per-PE non-overlap, precedence through shared memory and through
    /// the bus, and TDMA framing (owner, containment, non-overlap).
    ///
    /// # Errors
    ///
    /// The first violation found, deterministically.
    pub fn validate(
        &self,
        arch: &Architecture,
        apps: &[(AppId, &Application, &Mapping)],
    ) -> Result<(), TableError> {
        let by_id: HashMap<JobId, &ScheduledJob> = {
            let mut m = HashMap::with_capacity(self.jobs.len());
            for j in self.jobs.iter() {
                if m.insert(j.job, j).is_some() {
                    return Err(TableError::DuplicateJob(j.job));
                }
            }
            m
        };

        // Per-job checks + completeness.
        for &(app_id, app, mapping) in apps {
            for (gi, g) in app.graphs.iter().enumerate() {
                let instances = self.horizon.ticks() / g.period.ticks();
                for k in 0..instances as u32 {
                    for n in g.dag().node_ids() {
                        let id = JobId::new(app_id, gi, k, n);
                        let j = *by_id.get(&id).ok_or(TableError::MissingJob(id))?;
                        if j.end > self.horizon {
                            return Err(TableError::OutOfHorizon(id));
                        }
                        let pe = mapping
                            .pe_of(id.proc_ref())
                            .ok_or(TableError::MappingMismatch(id))?;
                        if pe != j.pe {
                            return Err(TableError::MappingMismatch(id));
                        }
                        let wcet = g
                            .process(n)
                            .wcets
                            .get(pe)
                            .ok_or(TableError::MappingMismatch(id))?;
                        if j.end - j.start != wcet {
                            return Err(TableError::WrongDuration(id));
                        }
                        let release = Time::new(k as u64 * g.period.ticks());
                        if j.release != release || j.start < release {
                            return Err(TableError::EarlyStart(id));
                        }
                        if j.deadline != release + g.deadline {
                            return Err(TableError::DeadlineMiss(id));
                        }
                        if j.end > j.deadline {
                            return Err(TableError::DeadlineMiss(id));
                        }
                    }
                }
            }
        }

        // Per-PE overlap.
        for pe in arch.pe_ids() {
            let mut prev: Option<&ScheduledJob> = None;
            for j in self.jobs.iter().filter(|j| j.pe == pe) {
                if let Some(p) = prev {
                    if p.end > j.start {
                        return Err(TableError::PeOverlap(p.job, j.job));
                    }
                }
                prev = Some(j);
            }
        }

        // Precedence + message existence/timing.
        for &(app_id, app, _) in apps {
            for (gi, g) in app.graphs.iter().enumerate() {
                let instances = self.horizon.ticks() / g.period.ticks();
                for k in 0..instances as u32 {
                    for e in g.dag().edge_ids() {
                        let (s, t) = g.dag().endpoints(e);
                        let pred = by_id[&JobId::new(app_id, gi, k, s)];
                        let succ = by_id[&JobId::new(app_id, gi, k, t)];
                        if pred.pe == succ.pe {
                            if succ.start < pred.end {
                                return Err(TableError::PrecedenceViolation {
                                    pred: pred.job,
                                    succ: succ.job,
                                });
                            }
                        } else {
                            let mref = MsgRef::new(gi, e);
                            let m = self.message(app_id, mref, k).ok_or(
                                TableError::MissingMessage {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                },
                            )?;
                            let r = m.reservation;
                            if r.owner != pred.pe {
                                return Err(TableError::BusViolation {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                });
                            }
                            // Frame assembled before slot start: slot must
                            // begin at or after producer end.
                            let bus = BusTimeline::new(arch.bus(), self.horizon)
                                .expect("table horizon is a multiple of the bus cycle");
                            let occ = bus.occurrence(r.occurrence).map_err(|_| {
                                TableError::BusViolation {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                }
                            })?;
                            if occ.start < pred.end {
                                return Err(TableError::MessageTooEarly {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                });
                            }
                            if r.transmit_start < occ.start || r.arrival > occ.end() {
                                return Err(TableError::BusViolation {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                });
                            }
                            let tx = arch.bus().transmission_time(g.message(e).bytes);
                            if r.duration() != tx {
                                return Err(TableError::BusViolation {
                                    app: app_id,
                                    msg: mref,
                                    instance: k,
                                });
                            }
                            if succ.start < r.arrival {
                                return Err(TableError::PrecedenceViolation {
                                    pred: pred.job,
                                    succ: succ.job,
                                });
                            }
                        }
                    }
                }
            }
        }

        // Frame non-overlap per occurrence, in replay order.
        let bus = BusTimeline::new(arch.bus(), self.horizon)
            .expect("table horizon is a multiple of the bus cycle");
        for (occ_idx, indices) in frame_replay_order(&self.messages) {
            let first = &self.messages[indices[0]];
            let occ = bus
                .occurrence(occ_idx)
                .map_err(|_| TableError::BusViolation {
                    app: first.app,
                    msg: first.msg,
                    instance: first.instance,
                })?;
            let mut cursor = occ.start;
            for i in indices {
                let m = &self.messages[i];
                let r = m.reservation;
                if r.owner != occ.owner || r.transmit_start < cursor || r.arrival > occ.end() {
                    return Err(TableError::BusViolation {
                        app: m.app,
                        msg: m.msg,
                        instance: m.instance,
                    });
                }
                cursor = r.arrival;
            }
        }
        Ok(())
    }

    /// Renders a small fixed-width Gantt chart of the table, one row per
    /// PE plus one for the bus. Intended for examples and debugging.
    pub fn render_text(&self, arch: &Architecture, width: usize) -> String {
        let width = width.max(10);
        let scale = |t: Time| -> usize {
            if self.horizon.is_zero() {
                0
            } else {
                ((t.ticks() as u128 * width as u128) / self.horizon.ticks() as u128) as usize
            }
        };
        let mut out = String::new();
        for pe in arch.pe_ids() {
            let mut row = vec![b'.'; width];
            for j in self.jobs_on(pe) {
                let a = scale(j.start).min(width - 1);
                let b = scale(j.end).clamp(a + 1, width);
                let c = label_char(j.job.app);
                for cell in &mut row[a..b] {
                    *cell = c;
                }
            }
            out.push_str(&format!(
                "{:>4} |{}|\n",
                arch.pe(pe).name,
                String::from_utf8_lossy(&row)
            ));
        }
        let mut row = vec![b'.'; width];
        for m in self.messages.iter() {
            let a = scale(m.reservation.transmit_start).min(width - 1);
            let b = scale(m.reservation.arrival).clamp(a + 1, width);
            let c = label_char(m.app);
            for cell in &mut row[a..b] {
                *cell = c;
            }
        }
        out.push_str(&format!(" bus |{}|\n", String::from_utf8_lossy(&row)));
        out
    }
}

/// Frame replay order: message indices grouped by slot occurrence, each
/// group sorted by transmission start. Every frame walk (rebuilding a
/// bus timeline, compacting after a removal, validating) uses this one
/// ordering so they can never diverge.
fn frame_replay_order(messages: &[ScheduledMessage]) -> BTreeMap<u64, Vec<usize>> {
    let mut by_occurrence: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, m) in messages.iter().enumerate() {
        by_occurrence
            .entry(m.reservation.occurrence)
            .or_default()
            .push(i);
    }
    for indices in by_occurrence.values_mut() {
        indices.sort_by_key(|&i| messages[i].reservation.transmit_start);
    }
    by_occurrence
}

fn label_char(app: AppId) -> u8 {
    const LABELS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    LABELS[app.index() % LABELS.len()]
}

/// After replication, re-number the instances of each (app, graph) so the
/// `k`-th replica of instance `i` becomes instance `i + k · (instances per
/// replica)`. Jobs and messages are renumbered consistently by their
/// release order.
fn renumber_instances(
    jobs: &mut [ScheduledJob],
    messages: &mut [ScheduledMessage],
    old_horizon: Time,
) {
    // Instances-per-replica for each (app, graph): max instance + 1 among
    // replica-0 jobs.
    let mut per: HashMap<(AppId, usize), u32> = HashMap::new();
    for j in jobs.iter() {
        if j.release < old_horizon {
            let e = per.entry((j.job.app, j.job.graph)).or_insert(0);
            *e = (*e).max(j.job.instance + 1);
        }
    }
    for j in jobs.iter_mut() {
        let replica = (j.release.ticks() / old_horizon.ticks().max(1)) as u32;
        if replica > 0 {
            let n = per.get(&(j.job.app, j.job.graph)).copied().unwrap_or(1);
            j.job.instance += replica * n;
        }
    }
    for m in messages.iter_mut() {
        // A message replica is identified by which old-horizon window its
        // slot start falls in. Messages always ride slots within the same
        // replica as their producer (slot start >= producer end >= replica
        // release; and arrival <= deadline <= replica end for deadline-
        // clean tables). For safety we bucket by transmit_start.
        let replica = (m.reservation.transmit_start.ticks() / old_horizon.ticks().max(1)) as u32;
        if replica > 0 {
            let n = per.get(&(m.app, m.msg.graph)).copied().unwrap_or(1);
            m.instance += replica * n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdes_model::BusConfig;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn arch2() -> Architecture {
        Architecture::builder()
            .pe("N1")
            .pe("N2")
            .bus(BusConfig::uniform_round(2, t(10), 1).unwrap())
            .build()
            .unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    fn job(
        app: u32,
        graph: usize,
        inst: u32,
        node: u32,
        pe: u32,
        s: u64,
        e: u64,
        rel: u64,
        dl: u64,
    ) -> ScheduledJob {
        ScheduledJob {
            job: JobId::new(AppId(app), graph, inst, incdes_graph::NodeId(node)),
            pe: PeId(pe),
            start: t(s),
            end: t(e),
            release: t(rel),
            deadline: t(dl),
        }
    }

    #[test]
    fn table_sorts_and_queries() {
        let table = ScheduleTable::new(
            t(100),
            vec![
                job(0, 0, 0, 1, 0, 30, 40, 0, 100),
                job(0, 0, 0, 0, 0, 0, 10, 0, 100),
                job(0, 0, 0, 2, 1, 5, 15, 0, 100),
            ],
            vec![],
        );
        let starts: Vec<_> = table.jobs_on(PeId(0)).map(|j| j.start).collect();
        assert_eq!(starts, vec![t(0), t(30)]);
        assert!(table
            .job(JobId::new(AppId(0), 0, 0, incdes_graph::NodeId(2)))
            .is_some());
        assert!(table
            .job(JobId::new(AppId(9), 0, 0, incdes_graph::NodeId(0)))
            .is_none());
        assert_eq!(table.finish_of_app(AppId(0)), t(40));
        assert_eq!(table.finish_of_app(AppId(5)), Time::ZERO);
        assert_eq!(table.busy_time_on(PeId(0)), t(20));
        assert!(table.is_deadline_clean());
    }

    #[test]
    fn deadline_clean_detects_miss() {
        let table = ScheduleTable::new(t(100), vec![job(0, 0, 0, 0, 0, 0, 60, 0, 50)], vec![]);
        assert!(!table.is_deadline_clean());
    }

    #[test]
    fn merge_combines_sorted() {
        let mut a = ScheduleTable::new(t(100), vec![job(0, 0, 0, 0, 0, 20, 30, 0, 100)], vec![]);
        let b = ScheduleTable::new(t(100), vec![job(1, 0, 0, 0, 0, 0, 10, 0, 100)], vec![]);
        a.merge(&b);
        assert_eq!(a.jobs().len(), 2);
        assert_eq!(a.jobs()[0].job.app, AppId(1));
    }

    #[test]
    #[should_panic(expected = "different horizons")]
    fn merge_rejects_horizon_mismatch() {
        let mut a = ScheduleTable::empty(t(100));
        let b = ScheduleTable::empty(t(200));
        a.merge(&b);
    }

    #[test]
    fn replicate_shifts_everything() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(20),
            vec![job(0, 0, 0, 0, 0, 2, 8, 0, 20)],
            vec![ScheduledMessage {
                app: AppId(0),
                msg: MsgRef::new(0, incdes_graph::EdgeId(0)),
                instance: 0,
                reservation: BusReservation {
                    occurrence: 1,
                    owner: PeId(1),
                    transmit_start: t(10),
                    arrival: t(14),
                },
            }],
        );
        let big = table.replicate_to(&arch, t(60)).unwrap();
        assert_eq!(big.horizon(), t(60));
        assert_eq!(big.jobs().len(), 3);
        assert_eq!(big.messages().len(), 3);
        let starts: Vec<_> = big.jobs().iter().map(|j| j.start).collect();
        assert_eq!(starts, vec![t(2), t(22), t(42)]);
        // Instances renumbered 0,1,2.
        let insts: Vec<_> = {
            let mut v: Vec<_> = big.jobs().iter().map(|j| j.job.instance).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(insts, vec![0, 1, 2]);
        // Bus occurrences shifted by 2 per replica (cycle 20 = 2 slots).
        let occs: Vec<_> = big
            .messages()
            .iter()
            .map(|m| m.reservation.occurrence)
            .collect();
        assert_eq!(occs, vec![1, 3, 5]);
        let m_insts: Vec<_> = big.messages().iter().map(|m| m.instance).collect();
        assert_eq!(m_insts, vec![0, 1, 2]);
    }

    #[test]
    fn replicate_alignment_enforced() {
        let arch = arch2();
        let table = ScheduleTable::empty(t(40));
        assert!(matches!(
            table.replicate_to(&arch, t(50)),
            Err(TableError::ReplicateAlign { .. })
        ));
        assert!(table.replicate_to(&arch, t(40)).is_ok());
    }

    #[test]
    fn without_apps_filters_and_compacts_frames() {
        let arch = arch2();
        let msg = |app: u32, edge: u32, start: u64, end: u64| ScheduledMessage {
            app: AppId(app),
            msg: MsgRef::new(0, incdes_graph::EdgeId(edge)),
            instance: 0,
            reservation: BusReservation {
                occurrence: 0,
                owner: PeId(0),
                transmit_start: t(start),
                arrival: t(end),
            },
        };
        let table = ScheduleTable::new(
            t(40),
            vec![
                job(0, 0, 0, 0, 0, 0, 4, 0, 40),
                job(1, 0, 0, 0, 1, 0, 4, 0, 40),
            ],
            vec![msg(0, 0, 0, 4), msg(1, 0, 4, 6), msg(1, 1, 6, 9)],
        );
        let without = table.without_apps(&arch, &[AppId(0)]);
        assert!(without.jobs().iter().all(|j| j.job.app != AppId(0)));
        assert_eq!(without.jobs().len(), 1);
        // App 1's frames compacted to the front of occurrence 0; the
        // durations and the occurrence are unchanged.
        let m: Vec<_> = without
            .messages()
            .iter()
            .map(|m| {
                (
                    m.reservation.occurrence,
                    m.reservation.transmit_start,
                    m.reservation.arrival,
                )
            })
            .collect();
        assert_eq!(m, vec![(0, t(0), t(2)), (0, t(2), t(5))]);
        // The compacted table replays cleanly into a bus timeline (a
        // frame with a hole would panic here).
        let bus = without.bus_timeline(&arch);
        assert_eq!(bus.used(0), t(5));
    }

    #[test]
    fn pe_timelines_reflect_jobs() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(100),
            vec![
                job(0, 0, 0, 0, 0, 10, 30, 0, 100),
                job(0, 0, 0, 1, 1, 0, 5, 0, 100),
            ],
            vec![],
        );
        let tls = table.pe_timelines(&arch);
        assert_eq!(tls[0].busy_time(), t(20));
        assert_eq!(tls[1].busy_time(), t(5));
        assert_eq!(tls[0].gaps(), vec![(t(0), t(10)), (t(30), t(100))]);
    }

    #[test]
    fn bus_timeline_replay() {
        let arch = arch2();
        let table = ScheduleTable::new(
            t(40),
            vec![],
            vec![
                ScheduledMessage {
                    app: AppId(0),
                    msg: MsgRef::new(0, incdes_graph::EdgeId(0)),
                    instance: 0,
                    reservation: BusReservation {
                        occurrence: 0,
                        owner: PeId(0),
                        transmit_start: t(0),
                        arrival: t(4),
                    },
                },
                ScheduledMessage {
                    app: AppId(0),
                    msg: MsgRef::new(0, incdes_graph::EdgeId(1)),
                    instance: 0,
                    reservation: BusReservation {
                        occurrence: 0,
                        owner: PeId(0),
                        transmit_start: t(4),
                        arrival: t(6),
                    },
                },
            ],
        );
        let bus = table.bus_timeline(&arch);
        assert_eq!(bus.used(0), t(6));
        assert_eq!(bus.message_count(0), 2);
    }

    #[test]
    fn render_text_shape() {
        let arch = arch2();
        let table = ScheduleTable::new(t(100), vec![job(0, 0, 0, 0, 0, 0, 50, 0, 100)], vec![]);
        let s = table.render_text(&arch, 20);
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3); // 2 PEs + bus
        assert!(lines[0].contains("AAAAAAAAAA"));
        assert!(lines[2].contains("bus"));
    }
}
