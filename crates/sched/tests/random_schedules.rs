//! Randomized scheduler torture tests.
//!
//! Random layered process graphs with random (valid) mappings and random
//! placement hints are scheduled and the result is exhaustively
//! validated. Any discrepancy between what the list scheduler *does* and
//! what `ScheduleTable::validate` *re-derives* fails here.

use incdes_graph::NodeId;
use incdes_model::{
    AppId, Application, Architecture, BusConfig, Message, PeId, Process, ProcessGraph, Time,
};
use incdes_sched::{schedule, AppSpec, Hints, Mapping, MsgRef, SchedError, SlackProfile};
use proptest::prelude::*;

/// 3 PEs, 10-tick slots, cycle 30.
fn arch3() -> Architecture {
    Architecture::builder()
        .pe("N0")
        .pe("N1")
        .pe("N2")
        .bus(BusConfig::uniform_round(3, Time::new(10), 1).unwrap())
        .build()
        .unwrap()
}

/// Deterministically builds a layered graph from proptest-driven choices.
fn build_graph(
    layers: &[usize],
    wcets: &[u64],
    parents: &[usize],
    msg_bytes: &[u32],
    period: Time,
) -> ProcessGraph {
    let mut g = ProcessGraph::new("rg", period, period);
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut layer_of: Vec<usize> = Vec::new();
    let mut idx = 0usize;
    for (li, &count) in layers.iter().enumerate() {
        for _ in 0..count.max(1) {
            let w = 1 + wcets[idx % wcets.len()] % 8;
            let mut p = Process::new(format!("p{idx}"));
            // Allowed on all three PEs with mildly heterogeneous WCETs.
            for pe in 0..3u32 {
                p = p.wcet(PeId(pe), Time::new(w + (pe as u64 + idx as u64) % 3));
            }
            nodes.push(g.add_process(p));
            layer_of.push(li);
            idx += 1;
        }
    }
    // One parent from any earlier layer per non-root node.
    let mut e = 0usize;
    for i in 0..nodes.len() {
        if layer_of[i] == 0 {
            continue;
        }
        let earlier: Vec<usize> = (0..nodes.len())
            .filter(|&j| layer_of[j] < layer_of[i])
            .collect();
        let parent = earlier[parents[i % parents.len()] % earlier.len()];
        let bytes = 1 + msg_bytes[e % msg_bytes.len()] % 8;
        g.add_message(
            nodes[parent],
            nodes[i],
            Message::new(format!("m{e}"), bytes),
        )
        .unwrap();
        e += 1;
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random mapping/hints combination either schedules to a fully
    /// valid table or fails with an infeasibility error — never a bogus
    /// table, never a panic.
    #[test]
    fn random_mapping_schedules_or_fails_cleanly(
        layers in proptest::collection::vec(1usize..4, 1..4),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        pe_choice in proptest::collection::vec(0u32..3, 16),
        gap_hints in proptest::collection::vec(0u32..3, 16),
        slot_hints in proptest::collection::vec(0u32..3, 8),
        period_sel in 0usize..2,
    ) {
        let arch = arch3();
        let period = [Time::new(240), Time::new(480)][period_sel];
        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, period);
        let app = Application::new("a", vec![g]);

        let mut mapping = Mapping::new();
        let mut hints = Hints::empty();
        for (i, (pr, _)) in app.processes().enumerate() {
            mapping.assign(pr, PeId(pe_choice[i % pe_choice.len()]));
            hints.set_proc_gap(pr, gap_hints[i % gap_hints.len()]);
        }
        for (gi, gr) in app.graphs.iter().enumerate() {
            for (ei, e) in gr.dag().edge_ids().enumerate() {
                hints.set_msg_slot(MsgRef::new(gi, e), slot_hints[ei % slot_hints.len()]);
            }
        }

        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let horizon = Time::new(480);
        match schedule(&arch, &[spec], None, horizon) {
            Ok(table) => {
                table.validate(&arch, &[(AppId(0), &app, &mapping)]).unwrap();
                prop_assert!(table.is_deadline_clean());
                // Slack accounting closes.
                let slack = SlackProfile::from_table(&arch, &table);
                for pe in arch.pe_ids() {
                    prop_assert_eq!(
                        table.busy_time_on(pe) + slack.total_slack_of(pe),
                        horizon
                    );
                }
            }
            Err(e) => prop_assert!(e.is_infeasible(), "unexpected input error: {e}"),
        }
    }

    /// Replicating a valid schedule to a longer horizon keeps it valid.
    #[test]
    fn replication_preserves_validity(
        layers in proptest::collection::vec(1usize..3, 1..3),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        reps in 2u64..4,
    ) {
        let arch = arch3();
        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, Time::new(240));
        let app = Application::new("a", vec![g]);
        let mut mapping = Mapping::new();
        for (i, (pr, _)) in app.processes().enumerate() {
            mapping.assign(pr, PeId((i % 3) as u32));
        }
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let Ok(table) = schedule(&arch, &[spec], None, Time::new(240)) else {
            return Ok(());
        };
        let big = table.replicate_to(&arch, Time::new(240 * reps)).unwrap();
        big.validate(&arch, &[(AppId(0), &app, &mapping)]).unwrap();
        prop_assert_eq!(big.jobs().len() as u64, table.jobs().len() as u64 * reps);
        // And the replicated table can serve as a frozen base.
        let app2 = Application::new("b", app.graphs.clone());
        let spec2 = AppSpec::new(AppId(1), &app2, &mapping, &hints);
        match schedule(&arch, &[spec2], Some(&big), Time::new(240 * reps)) {
            Ok(merged) => {
                merged
                    .validate(
                        &arch,
                        &[(AppId(0), &app, &mapping), (AppId(1), &app2, &mapping)],
                    )
                    .unwrap();
            }
            Err(e) => prop_assert!(e.is_infeasible(), "unexpected input error: {e}"),
        }
    }

    /// Scheduling is a pure function of its inputs.
    #[test]
    fn scheduling_is_deterministic(
        layers in proptest::collection::vec(1usize..4, 1..4),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
    ) {
        let arch = arch3();
        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, Time::new(240));
        let app = Application::new("a", vec![g]);
        let mut mapping = Mapping::new();
        for (i, (pr, _)) in app.processes().enumerate() {
            mapping.assign(pr, PeId((i % 3) as u32));
        }
        let hints = Hints::empty();
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let a = schedule(&arch, &[spec], None, Time::new(240));
        let b = schedule(&arch, &[spec], None, Time::new(240));
        match (a, b) {
            (Ok(ta), Ok(tb)) => prop_assert_eq!(ta, tb),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            _ => prop_assert!(false, "determinism violated"),
        }
    }
}

/// Non-property regression: a frozen table from a *different* bus layout
/// is rejected rather than silently misinterpreted.
#[test]
fn frozen_from_other_architecture_rejected() {
    let arch = arch3();
    let other = Architecture::builder()
        .pe("X")
        .bus(BusConfig::uniform_round(1, Time::new(12), 1).unwrap())
        .build()
        .unwrap();
    let mut g = ProcessGraph::new("g", Time::new(240), Time::new(240));
    g.add_process(Process::new("p").wcet(PeId(0), Time::new(5)));
    let app = Application::new("a", vec![g]);
    let mut mapping = Mapping::new();
    mapping.assign(incdes_model::ProcRef::new(0, NodeId(0)), PeId(0));
    let hints = Hints::empty();
    let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
    // Horizon 240 is valid for arch3 (cycle 30) but the frozen table was
    // built for a 12-tick cycle → replay must fail, not corrupt.
    let frozen = incdes_sched::ScheduleTable::empty(Time::new(240));
    let ok = schedule(&arch, &[spec], Some(&frozen), Time::new(240));
    assert!(ok.is_ok(), "empty frozen tables are layout-agnostic");
    let _ = other;
    // A frozen table with an out-of-range PE is rejected.
    let bad = incdes_sched::ScheduleTable::new(
        Time::new(240),
        vec![incdes_sched::ScheduledJob {
            job: incdes_sched::JobId::new(AppId(9), 0, 0, NodeId(0)),
            pe: PeId(7),
            start: Time::ZERO,
            end: Time::new(5),
            release: Time::ZERO,
            deadline: Time::new(240),
        }],
        vec![],
    );
    assert_eq!(
        schedule(&arch, &[spec], Some(&bad), Time::new(240)).unwrap_err(),
        SchedError::FrozenConflict
    );
}
