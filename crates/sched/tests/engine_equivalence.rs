//! Engine ↔ naive equivalence property tests.
//!
//! `schedule()` itself delegates to the engine (a fresh `FrozenBase` +
//! `Scheduler` per call), so what these properties actually pin is the
//! *reuse* machinery: one long-lived `Scheduler` whose scratch arenas,
//! priority cache and touched-resource bookkeeping are recycled across
//! many evaluations — with varying mappings, hints and frozen tables —
//! must keep producing exactly the table and slack profile a cold
//! one-shot run produces. (The `DesignCost` leg of the equivalence lives
//! in the facade-level `tests/eval_engine.rs`, since `incdes-metrics`
//! sits above this crate.)

use incdes_graph::NodeId;
use incdes_model::{
    AppId, Application, Architecture, BusConfig, Message, PeId, Process, ProcessGraph, Time,
};
use incdes_sched::engine::{FrozenBase, Scheduler};
use incdes_sched::{schedule, AppSpec, Hints, Mapping, MsgRef, SlackProfile};
use proptest::prelude::*;

/// 3 PEs, 10-tick slots, cycle 30.
fn arch3() -> Architecture {
    Architecture::builder()
        .pe("N0")
        .pe("N1")
        .pe("N2")
        .bus(BusConfig::uniform_round(3, Time::new(10), 1).unwrap())
        .build()
        .unwrap()
}

/// Deterministically builds a layered graph from proptest-driven choices.
fn build_graph(
    layers: &[usize],
    wcets: &[u64],
    parents: &[usize],
    msg_bytes: &[u32],
    period: Time,
) -> ProcessGraph {
    let mut g = ProcessGraph::new("rg", period, period);
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut layer_of: Vec<usize> = Vec::new();
    let mut idx = 0usize;
    for (li, &count) in layers.iter().enumerate() {
        for _ in 0..count.max(1) {
            let w = 1 + wcets[idx % wcets.len()] % 8;
            let mut p = Process::new(format!("p{idx}"));
            for pe in 0..3u32 {
                p = p.wcet(PeId(pe), Time::new(w + (pe as u64 + idx as u64) % 3));
            }
            nodes.push(g.add_process(p));
            layer_of.push(li);
            idx += 1;
        }
    }
    let mut e = 0usize;
    for i in 0..nodes.len() {
        if layer_of[i] == 0 {
            continue;
        }
        let earlier: Vec<usize> = (0..nodes.len())
            .filter(|&j| layer_of[j] < layer_of[i])
            .collect();
        let parent = earlier[parents[i % parents.len()] % earlier.len()];
        let bytes = 1 + msg_bytes[e % msg_bytes.len()] % 8;
        g.add_message(
            nodes[parent],
            nodes[i],
            Message::new(format!("m{e}"), bytes),
        )
        .unwrap();
        e += 1;
    }
    g
}

/// Builds the mapping/hints of one design alternative from choice vecs.
fn solution_of(
    app: &Application,
    pe_choice: &[u32],
    gap_hints: &[u32],
    slot_hints: &[u32],
    salt: usize,
) -> (Mapping, Hints) {
    let mut mapping = Mapping::new();
    let mut hints = Hints::empty();
    for (i, (pr, _)) in app.processes().enumerate() {
        mapping.assign(pr, PeId(pe_choice[(i + salt) % pe_choice.len()]));
        hints.set_proc_gap(pr, gap_hints[(i + salt) % gap_hints.len()]);
    }
    for (gi, gr) in app.graphs.iter().enumerate() {
        for (ei, e) in gr.dag().edge_ids().enumerate() {
            hints.set_msg_slot(
                MsgRef::new(gi, e),
                slot_hints[(ei + salt) % slot_hints.len()],
            );
        }
    }
    (mapping, hints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A persistent `Scheduler` evaluating a stream of random design
    /// alternatives over a random frozen table agrees with the one-shot
    /// `schedule()` + `SlackProfile::from_table` path on every single
    /// alternative: same `ScheduleTable`, same `SlackProfile`, same
    /// error.
    #[test]
    fn persistent_engine_matches_one_shot_path(
        layers in proptest::collection::vec(1usize..4, 1..4),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        frozen_layers in proptest::collection::vec(1usize..3, 0..3),
        pe_choice in proptest::collection::vec(0u32..3, 16),
        gap_hints in proptest::collection::vec(0u32..3, 16),
        slot_hints in proptest::collection::vec(0u32..3, 8),
        rounds in 2usize..6,
    ) {
        let arch = arch3();
        let horizon = Time::new(480);

        // Random frozen table (possibly none): an app scheduled the
        // ordinary way and taken as the immutable base.
        let frozen = if frozen_layers.is_empty() {
            None
        } else {
            let fg = build_graph(&frozen_layers, &wcets, &parents, &msg_bytes, Time::new(480));
            let fapp = Application::new("frozen", vec![fg]);
            let (fmap, fhints) = solution_of(&fapp, &pe_choice, &gap_hints, &slot_hints, 0);
            let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &fhints);
            match schedule(&arch, &[fspec], None, horizon) {
                Ok(t) => Some(t),
                Err(_) => None, // infeasible frozen candidate: run base-less
            }
        };

        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, Time::new(240));
        let app = Application::new("current", vec![g]);

        let base = FrozenBase::new(&arch, frozen.as_ref(), horizon).unwrap();
        let mut engine = Scheduler::new();

        for salt in 0..rounds {
            let (mapping, hints) = solution_of(&app, &pe_choice, &gap_hints, &slot_hints, salt);
            let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);
            let one_shot = schedule(&arch, &[spec], frozen.as_ref(), horizon);
            let engine_run = engine.schedule_with_slack(&arch, &[spec], &base);
            match (one_shot, engine_run) {
                (Ok(reference), Ok((table, slack))) => {
                    prop_assert_eq!(&table, &reference, "tables diverged (salt {})", salt);
                    let reference_slack = SlackProfile::from_table(&arch, &reference);
                    prop_assert_eq!(&slack, &reference_slack, "slack diverged (salt {})", salt);
                    // The touched-PE bookkeeping is sound: untouched PEs
                    // must show exactly the frozen-only gaps.
                    for (i, touched) in engine.touched_pes().iter().enumerate() {
                        if !touched {
                            prop_assert_eq!(
                                slack.gaps_of(PeId(i as u32)),
                                base.gaps_of(PeId(i as u32))
                            );
                        }
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged (salt {})", salt),
                (a, b) => prop_assert!(
                    false,
                    "feasibility diverged (salt {}): one-shot {:?} vs engine {:?}",
                    salt,
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    /// `FrozenBase` construction agrees with `schedule()` on which frozen
    /// tables are replayable, and bakes the same slack the naive path
    /// derives for an empty current application set.
    #[test]
    fn frozen_base_bakes_naive_slack(
        frozen_layers in proptest::collection::vec(1usize..4, 1..3),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        pe_choice in proptest::collection::vec(0u32..3, 16),
        gap_hints in proptest::collection::vec(0u32..3, 16),
        slot_hints in proptest::collection::vec(0u32..3, 8),
    ) {
        let arch = arch3();
        let horizon = Time::new(480);
        let fg = build_graph(&frozen_layers, &wcets, &parents, &msg_bytes, Time::new(480));
        let fapp = Application::new("frozen", vec![fg]);
        let (fmap, fhints) = solution_of(&fapp, &pe_choice, &gap_hints, &slot_hints, 0);
        let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &fhints);
        let Ok(frozen) = schedule(&arch, &[fspec], None, horizon) else {
            return Ok(());
        };
        let base = FrozenBase::new(&arch, Some(&frozen), horizon).unwrap();
        let naive_slack = SlackProfile::from_table(&arch, &frozen);
        prop_assert_eq!(base.frozen_job_count(), frozen.jobs().len());
        prop_assert_eq!(base.frozen_message_count(), frozen.messages().len());
        for pe in arch.pe_ids() {
            prop_assert_eq!(base.gaps_of(pe), naive_slack.gaps_of(pe));
        }
        prop_assert_eq!(base.bus_windows(), naive_slack.bus_windows());
        // Scheduling *nothing* on the base reproduces the frozen table.
        let mut engine = Scheduler::new();
        let (table, slack) = engine.schedule_with_slack(&arch, &[], &base).unwrap();
        prop_assert_eq!(table, frozen);
        prop_assert_eq!(slack, naive_slack);
    }
}
