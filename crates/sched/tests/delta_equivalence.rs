//! Differential fuzz suite for delta scheduling.
//!
//! The delta path (`Scheduler::schedule_delta_with_slack`) splices
//! recorded placement prefixes and undoes/redoes only the suffix — an
//! aggressive reuse scheme whose correctness rests entirely on the
//! divergence analysis. These properties drive thousands of random
//! single-move chains (the exact workload the MH/SA strategies produce)
//! over random architectures, applications and frozen tables, asserting
//! the delta scheduler's output — tables *and* slack profiles — is
//! bit-equal to the one-shot [`incdes_sched::schedule`] oracle and to
//! the full-engine path at **every** step. Failures shrink to a minimal
//! failing move chain via the proptest harness.
//!
//! The `Arc`-sharing properties pin the other half of the contract:
//! profiles alias the frozen base's (and each other's) storage, and
//! mutating a returned profile is copy-on-write — never observable
//! through the base or a sibling profile.

use incdes_graph::NodeId;
use incdes_model::{
    AppId, Application, Architecture, BusConfig, Message, PeId, Process, ProcessGraph, Time,
};
use incdes_sched::engine::{ChangedVar, FrozenBase, Scheduler};
use incdes_sched::slack::GapList;
use incdes_sched::{schedule, AppSpec, Hints, Mapping, MsgRef, SlackProfile};
use proptest::prelude::*;
use std::sync::Arc;

/// 3 PEs, 10-tick slots, cycle 30.
fn arch3() -> Architecture {
    Architecture::builder()
        .pe("N0")
        .pe("N1")
        .pe("N2")
        .bus(BusConfig::uniform_round(3, Time::new(10), 1).unwrap())
        .build()
        .unwrap()
}

/// Deterministically builds a layered graph from proptest-driven choices
/// (every process is allowed on all three PEs, so remap moves are always
/// structurally valid).
fn build_graph(
    layers: &[usize],
    wcets: &[u64],
    parents: &[usize],
    msg_bytes: &[u32],
    period: Time,
) -> ProcessGraph {
    let mut g = ProcessGraph::new("rg", period, period);
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut layer_of: Vec<usize> = Vec::new();
    let mut idx = 0usize;
    for (li, &count) in layers.iter().enumerate() {
        for _ in 0..count.max(1) {
            let w = 1 + wcets[idx % wcets.len()] % 8;
            let mut p = Process::new(format!("p{idx}"));
            for pe in 0..3u32 {
                p = p.wcet(PeId(pe), Time::new(w + (pe as u64 + idx as u64) % 3));
            }
            nodes.push(g.add_process(p));
            layer_of.push(li);
            idx += 1;
        }
    }
    let mut e = 0usize;
    for i in 0..nodes.len() {
        if layer_of[i] == 0 {
            continue;
        }
        let earlier: Vec<usize> = (0..nodes.len())
            .filter(|&j| layer_of[j] < layer_of[i])
            .collect();
        let parent = earlier[parents[i % parents.len()] % earlier.len()];
        let bytes = 1 + msg_bytes[e % msg_bytes.len()] % 8;
        g.add_message(
            nodes[parent],
            nodes[i],
            Message::new(format!("m{e}"), bytes),
        )
        .unwrap();
        e += 1;
    }
    g
}

/// One single-variable design move of a fuzzed chain, decoded from raw
/// proptest choices against the application's actual shape.
#[derive(Debug, Clone, Copy)]
enum ChainMove {
    /// Remap process `node` of graph 0 to PE `to` (hint reset to 0, as
    /// `incdes_mapping::Solution::apply` does for remaps).
    Remap { node: usize, to: u32 },
    /// Set the gap hint of process `node`.
    GapHint { node: usize, hint: u32 },
    /// Set the slot hint of message `edge`.
    SlotHint { edge: usize, hint: u32 },
}

fn apply_move(
    app: &Application,
    mapping: &mut Mapping,
    hints: &mut Hints,
    mv: (u8, usize, u32),
) -> ChainMove {
    let g = &app.graphs[0];
    let nodes = g.process_count();
    let edges = g.dag().edge_ids().count();
    let (kind, raw_target, raw_value) = mv;
    match kind % 3 {
        0 => {
            let node = raw_target % nodes;
            let to = raw_value % 3;
            mapping.assign(ProcRef::new(0, NodeId(node as u32)), PeId(to));
            hints.set_proc_gap(ProcRef::new(0, NodeId(node as u32)), 0);
            ChainMove::Remap { node, to }
        }
        1 => {
            let node = raw_target % nodes;
            let hint = raw_value % 3;
            hints.set_proc_gap(ProcRef::new(0, NodeId(node as u32)), hint);
            ChainMove::GapHint { node, hint }
        }
        _ if edges > 0 => {
            let edge = raw_target % edges;
            let hint = raw_value % 3;
            hints.set_msg_slot(MsgRef::new(0, incdes_graph::EdgeId(edge as u32)), hint);
            ChainMove::SlotHint { edge, hint }
        }
        _ => {
            let node = raw_target % nodes;
            let hint = raw_value % 3;
            hints.set_proc_gap(ProcRef::new(0, NodeId(node as u32)), hint);
            ChainMove::GapHint { node, hint }
        }
    }
}

use incdes_model::ProcRef;

/// Case count of the differential properties: 48 in an ordinary test
/// run, overridable through `PROPTEST_CASES` — CI runs a dedicated
/// high-case job on this suite.
fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// CI hook mirroring the mapping layer's `INCDES_RECORD_CACHE_CAP`:
/// overrides a scheduler's record-cache capacity so the differential
/// fuzz can run with forced eviction churn (cap 1) or cached-record
/// splicing disabled (cap 0) in a dedicated job, on top of the caps
/// the generators pick themselves.
fn apply_cap_env(s: &mut Scheduler) {
    if let Some(cap) = std::env::var("INCDES_RECORD_CACHE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        s.set_record_cache_capacity(cap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// The heart of the suite: a persistent delta scheduler walking a
    /// random single-move chain over a random frozen base agrees with
    /// the one-shot `schedule()` oracle *and* the full-engine path on
    /// every step — tables, slack profiles and errors alike.
    #[test]
    fn delta_chain_matches_oracle_at_every_step(
        layers in proptest::collection::vec(1usize..4, 1..4),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        frozen_layers in proptest::collection::vec(1usize..3, 0..3),
        initial_pes in proptest::collection::vec(0u32..3, 16),
        moves in proptest::collection::vec((0u8..3, 0usize..64, 0u32..8), 1..24),
    ) {
        let arch = arch3();
        let horizon = Time::new(480);

        // Random frozen table (possibly none).
        let frozen = if frozen_layers.is_empty() {
            None
        } else {
            let fg = build_graph(&frozen_layers, &wcets, &parents, &msg_bytes, Time::new(480));
            let fapp = Application::new("frozen", vec![fg]);
            let mut fmap = Mapping::new();
            for (i, (pr, _)) in fapp.processes().enumerate() {
                fmap.assign(pr, PeId(initial_pes[i % initial_pes.len()]));
            }
            let fhints = Hints::empty();
            let fspec = AppSpec::new(AppId(0), &fapp, &fmap, &fhints);
            schedule(&arch, &[fspec], None, horizon).ok()
        };

        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, Time::new(240));
        let app = Application::new("current", vec![g]);
        let mut mapping = Mapping::new();
        for (i, (pr, _)) in app.processes().enumerate() {
            mapping.assign(pr, PeId(initial_pes[(i + 3) % initial_pes.len()]));
        }
        let mut hints = Hints::empty();

        let base = FrozenBase::new(&arch, frozen.as_ref(), horizon).unwrap();
        let mut delta = Scheduler::new();
        let mut hinted = Scheduler::new();
        let mut full = Scheduler::new();
        apply_cap_env(&mut delta);
        apply_cap_env(&mut hinted);

        // Step 0: the initial solution, then one single move per step.
        for step in 0..=moves.len() {
            let decoded = if step == 0 {
                None
            } else {
                Some(apply_move(&app, &mut mapping, &mut hints, moves[step - 1]))
            };
            // The hinted path gets the changed-variable list of the move
            // (a remap's hint reset names the same process — one entry).
            let changed: Vec<ChangedVar> = match decoded {
                None => Vec::new(),
                Some(ChainMove::Remap { node, .. }) | Some(ChainMove::GapHint { node, .. }) => {
                    vec![ChangedVar::Proc {
                        spec: 0,
                        graph: 0,
                        node: NodeId(node as u32),
                    }]
                }
                Some(ChainMove::SlotHint { edge, .. }) => vec![ChangedVar::Msg {
                    spec: 0,
                    graph: 0,
                    edge: incdes_graph::EdgeId(edge as u32),
                }],
            };
            let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);
            let oracle = schedule(&arch, &[spec], frozen.as_ref(), horizon);
            let full_run = full.schedule_with_slack(&arch, &[spec], &base);
            let delta_run = delta.schedule_delta_with_slack(&arch, &[spec], &base);
            let hinted_run = if step == 0 {
                hinted.schedule_delta_with_slack(&arch, &[spec], &base)
            } else {
                hinted.schedule_delta_hinted_with_slack(&arch, &[spec], &base, &changed)
            };
            match (oracle, full_run, delta_run, hinted_run) {
                (Ok(reference), Ok((ft, fs)), Ok((dt, ds)), Ok((ht, hs))) => {
                    prop_assert_eq!(&dt, &reference,
                        "delta table diverged at step {} ({:?})", step, decoded);
                    prop_assert_eq!(&ft, &reference,
                        "full-engine table diverged at step {} ({:?})", step, decoded);
                    prop_assert_eq!(&ht, &reference,
                        "hinted table diverged at step {} ({:?})", step, decoded);
                    let reference_slack = SlackProfile::from_table(&arch, &reference);
                    prop_assert_eq!(&ds, &reference_slack,
                        "delta slack diverged at step {} ({:?})", step, decoded);
                    prop_assert_eq!(&fs, &reference_slack,
                        "full-engine slack diverged at step {} ({:?})", step, decoded);
                    prop_assert_eq!(&hs, &reference_slack,
                        "hinted slack diverged at step {} ({:?})", step, decoded);
                }
                (Err(a), Err(b), Err(c), Err(d)) => {
                    prop_assert_eq!(&a, &b, "full-engine error diverged at step {}", step);
                    prop_assert_eq!(&a, &c, "delta error diverged at step {}", step);
                    prop_assert_eq!(&a, &d, "hinted error diverged at step {}", step);
                }
                (a, b, c, d) => prop_assert!(
                    false,
                    "feasibility diverged at step {} ({:?}): oracle {:?} full {:?} delta {:?} hinted {:?}",
                    step, decoded, a.is_ok(), b.is_ok(), c.is_ok(), d.is_ok()
                ),
            }
        }
        // The chain must actually exercise the splice machinery: the
        // base, app structure and record survive every step (failed
        // runs roll back and keep a partial record), so every raw
        // schedule after the first must take the delta path.
        prop_assert_eq!(
            delta.delta_schedule_count(),
            delta.raw_schedule_count() - 1,
            "delta path disengaged over {} raw schedules",
            delta.raw_schedule_count()
        );
    }

    /// Keyed record-cache fuzz: a chain revisiting a small palette of
    /// solutions in random order, under a random (possibly tiny)
    /// record-cache capacity, stays bit-equal to the one-shot oracle
    /// and the full-engine path at every step. The preferred
    /// predecessor is the min-diff previously visited solution — the
    /// same rule the mapping layer applies — so small caps force
    /// probe misses and eviction churn on every revisit pattern the
    /// generator produces.
    #[test]
    fn keyed_revisit_chain_matches_oracle(
        pes in proptest::collection::vec(0u32..3, 24),
        visits in proptest::collection::vec(0usize..4, 2..16),
        cap in 0usize..4,
    ) {
        let arch = arch3();
        let horizon = Time::new(240);
        let mut g = ProcessGraph::new("wide", horizon, horizon);
        for i in 0..6 {
            let mut p = Process::new(format!("p{i}"));
            for pe in 0..3u32 {
                p = p.wcet(PeId(pe), Time::new(5 + (i % 4) as u64));
            }
            g.add_process(p);
        }
        let app = Application::new("palette", vec![g]);
        // Palette of four candidate solutions over the same six nodes.
        let palette: Vec<Mapping> = (0..4)
            .map(|s| {
                let mut m = Mapping::new();
                for (i, (pr, _)) in app.processes().enumerate() {
                    m.assign(pr, PeId(pes[s * 6 + i]));
                }
                m
            })
            .collect();
        let diff = |a: usize, b: usize| -> usize {
            app.processes()
                .enumerate()
                .filter(|(i, _)| pes[a * 6 + i] != pes[b * 6 + i])
                .count()
        };

        let hints = Hints::empty();
        let base = FrozenBase::new(&arch, None, horizon).unwrap();
        let mut engine = Scheduler::new();
        engine.set_record_cache_capacity(cap);
        apply_cap_env(&mut engine);
        let mut full = Scheduler::new();
        let mut seen: Vec<usize> = Vec::new();

        for (step, &sol) in visits.iter().enumerate() {
            let fp = sol as u64 + 1;
            let spec = AppSpec::new(AppId(0), &app, &palette[sol], &hints);
            let reference = schedule(&arch, &[spec], None, horizon).unwrap();
            let keyed = if step == 0 {
                engine.schedule_keyed_with_slack(&arch, &[spec], &base, fp)
            } else {
                // Min-diff previously seen solution, most recent on
                // ties — the mapping layer's ranking rule.
                let prefer = seen
                    .iter()
                    .rev()
                    .min_by_key(|&&p| diff(p, sol))
                    .map(|&p| p as u64 + 1);
                engine.schedule_delta_keyed_with_slack(&arch, &[spec], &base, None, fp, prefer)
            };
            let (kt, ks) = keyed.unwrap();
            let (ft, fs) = full.schedule_with_slack(&arch, &[spec], &base).unwrap();
            prop_assert_eq!(&kt, &reference, "keyed table diverged at step {}", step);
            prop_assert_eq!(&ft, &reference, "full table diverged at step {}", step);
            let reference_slack = SlackProfile::from_table(&arch, &reference);
            prop_assert_eq!(&ks, &reference_slack, "keyed slack diverged at step {}", step);
            prop_assert_eq!(&fs, &reference_slack, "full slack diverged at step {}", step);
            if !seen.contains(&sol) {
                seen.push(sol);
            }
        }
        prop_assert_eq!(
            engine.delta_schedule_count(),
            engine.raw_schedule_count() - 1,
            "keyed chain disengaged the delta path"
        );
    }

    /// Shared-storage aliasing property: however a chain of evaluations
    /// shares gap-list storage, deriving a *modified* profile from one
    /// of them (copying the storage out, editing it, rebuilding via
    /// `from_shared` — the only way to "mutate" the immutable
    /// `Arc<[..]>` lists) is never observable through the frozen base
    /// or a sibling profile.
    #[test]
    fn mutating_a_profile_never_leaks_into_base_or_siblings(
        layers in proptest::collection::vec(1usize..3, 1..3),
        wcets in proptest::collection::vec(0u64..8, 4),
        parents in proptest::collection::vec(0usize..7, 4),
        msg_bytes in proptest::collection::vec(0u32..8, 4),
        initial_pes in proptest::collection::vec(0u32..3, 8),
        moves in proptest::collection::vec((0u8..3, 0usize..64, 0u32..8), 1..6),
        poison_pe in 0u32..3,
    ) {
        let arch = arch3();
        let horizon = Time::new(240);
        let g = build_graph(&layers, &wcets, &parents, &msg_bytes, Time::new(240));
        let app = Application::new("current", vec![g]);
        let mut mapping = Mapping::new();
        for (i, (pr, _)) in app.processes().enumerate() {
            mapping.assign(pr, PeId(initial_pes[i % initial_pes.len()]));
        }
        let mut hints = Hints::empty();
        let base = FrozenBase::empty(&arch, horizon).unwrap();
        let mut engine = Scheduler::new();

        let mut profiles: Vec<SlackProfile> = Vec::new();
        for step in 0..=moves.len() {
            if step > 0 {
                apply_move(&app, &mut mapping, &mut hints, moves[step - 1]);
            }
            let spec = AppSpec::new(AppId(1), &app, &mapping, &hints);
            if let Ok((_, slack)) = engine.schedule_delta_with_slack(&arch, &[spec], &base) {
                profiles.push(slack);
            }
        }
        prop_assert!(!profiles.is_empty(), "some step should be feasible");

        // Snapshot everything, then poison the *last* profile in place.
        let base_snapshot: Vec<Vec<(Time, Time)>> =
            (0..3).map(|i| base.gaps_of(PeId(i)).to_vec()).collect();
        let base_bus_snapshot = base.bus_windows().to_vec();
        let sibling_snapshots: Vec<SlackProfile> = profiles.clone();

        let last = profiles.last().unwrap();
        let mut poisoned_gaps: Vec<GapList> = (0..3)
            .map(|i| Arc::clone(last.gaps_shared(PeId(i))))
            .collect();
        let mut edited = poisoned_gaps[poison_pe as usize].to_vec();
        edited.push((Time::new(7), Time::new(9)));
        poisoned_gaps[poison_pe as usize] = edited.into();
        let poisoned = SlackProfile::from_shared(last.horizon(), poisoned_gaps.into(), Vec::new().into());
        *profiles.last_mut().unwrap() = poisoned;

        for i in 0..3u32 {
            prop_assert_eq!(
                base.gaps_of(PeId(i)),
                &base_snapshot[i as usize][..],
                "base gap list of PE{} changed through a profile mutation", i
            );
        }
        prop_assert_eq!(base.bus_windows(), &base_bus_snapshot[..]);
        for (k, (sib, snap)) in profiles[..profiles.len() - 1]
            .iter()
            .zip(&sibling_snapshots)
            .enumerate()
        {
            prop_assert_eq!(sib, snap, "sibling profile {} changed", k);
        }
        // And the poisoned profile itself really changed (CoW happened,
        // not a silent no-op).
        prop_assert!(profiles.last().unwrap().bus_windows().is_empty());
    }
}

/// Deterministic wrong-predecessor regression: the cyclic chain
/// A→B→C→A→B→C→A→B→C revisits each solution with its own record still
/// cached. With the record cache on, every revisit of A names A's
/// fingerprint, hits A's promoted record, and splices *all* ten steps
/// (an exact revisit diverges nowhere) even though B and C ran in
/// between. With capacity 0 the engine can only diff against the live
/// record — the wrong predecessor, whose remapped node truncates the
/// splice at its pop step. Results stay bit-equal to the oracle either
/// way; only the spliced-step counts reveal the predecessor choice.
#[test]
fn cyclic_chain_splices_from_own_record() {
    if std::env::var_os("INCDES_RECORD_CACHE_CAP").is_some() {
        // The capacity matrix below *is* the test; an external
        // override (the CI churn job) would scramble its expected
        // spliced-step counts.
        return;
    }
    let arch = arch3();
    let horizon = Time::new(240);
    let mut g = ProcessGraph::new("wide", horizon, horizon);
    for i in 0..10 {
        let mut p = Process::new(format!("p{i}"));
        for pe in 0..3u32 {
            p = p.wcet(PeId(pe), Time::new(5 + (i % 4) as u64));
        }
        g.add_process(p);
    }
    let app = Application::new("wide", vec![g]);
    let hints = Hints::empty();

    // A is the base assignment; B remaps node 0, C remaps node 1.
    let mut map_a = Mapping::new();
    for (pr, _) in app.processes() {
        mapping_assign_mod3(&mut map_a, pr);
    }
    let mut map_b = map_a.clone();
    map_b.assign(ProcRef::new(0, NodeId(0)), PeId(1));
    let mut map_c = map_a.clone();
    map_c.assign(ProcRef::new(0, NodeId(1)), PeId(2));
    let solutions = [&map_a, &map_b, &map_c];

    for cap in [4usize, 1, 0] {
        let base = FrozenBase::new(&arch, None, horizon).unwrap();
        let mut engine = Scheduler::new();
        engine.set_record_cache_capacity(cap);
        let mut spliced_on_revisit_a = Vec::new();
        for step in 0..9 {
            let sol = step % 3;
            let fp = sol as u64 + 1;
            let spec = AppSpec::new(AppId(0), &app, solutions[sol], &hints);
            let reference = schedule(&arch, &[spec], None, horizon).unwrap();
            let before = engine.spliced_step_count();
            let (table, slack) = if step == 0 {
                engine
                    .schedule_keyed_with_slack(&arch, &[spec], &base, fp)
                    .unwrap()
            } else {
                // The min-diff previously seen solution: itself on a
                // revisit (distance 0), A on a first visit of B or C
                // (one move away, vs. two between B and C).
                let prefer = Some(if step < 3 { 1 } else { fp });
                engine
                    .schedule_delta_keyed_with_slack(&arch, &[spec], &base, None, fp, prefer)
                    .unwrap()
            };
            assert_eq!(table, reference, "cap {cap} step {step}");
            assert_eq!(
                slack,
                SlackProfile::from_table(&arch, &reference),
                "cap {cap} step {step}"
            );
            if sol == 0 && step > 0 {
                spliced_on_revisit_a.push(engine.spliced_step_count() - before);
            }
        }
        assert_eq!(engine.delta_schedule_count(), 8, "cap {cap}");
        if cap > 0 {
            // A was promoted when B first claimed it; both revisits of
            // A hit that record and splice every step.
            assert_eq!(
                spliced_on_revisit_a,
                vec![10, 10],
                "cap {cap}: revisits of A must splice A's whole record"
            );
        } else {
            // Without the cache the live record (C) is the only
            // predecessor; everything from its remapped node's pop
            // step on must be re-placed.
            assert!(
                spliced_on_revisit_a.iter().all(|&s| s < 10),
                "cap {cap}: wrong-predecessor diff spliced a full record \
                 ({spliced_on_revisit_a:?})"
            );
        }
    }
}

/// `node.index() % 3` assignment shared by the cyclic-chain test.
fn mapping_assign_mod3(m: &mut Mapping, pr: ProcRef) {
    m.assign(pr, PeId(pr.node.index() as u32 % 3));
}

/// Deterministic splice regression: a long chain of hint toggles on one
/// node of a wide graph must splice most steps (the untouched siblings'
/// placements are reused), and still match the oracle bit-for-bit.
#[test]
fn hint_toggle_chain_splices_most_steps() {
    use incdes_sched::{JobId, ScheduleTable, ScheduledJob};
    let arch = arch3();
    let horizon = Time::new(240);
    let mut g = ProcessGraph::new("wide", Time::new(240), Time::new(240));
    for i in 0..10 {
        let mut p = Process::new(format!("p{i}"));
        for pe in 0..3u32 {
            p = p.wcet(PeId(pe), Time::new(5 + (i % 4) as u64));
        }
        g.add_process(p);
    }
    let app = Application::new("wide", vec![g]);
    let mut mapping = Mapping::new();
    for (pr, _) in app.processes() {
        mapping.assign(pr, PeId(pr.node.index() as u32 % 3));
    }
    let mut hints = Hints::empty();
    // A frozen blocker mid-horizon on every PE keeps two feasible gaps
    // around, so both hint values (0 and 1) stay schedulable.
    let frozen = ScheduleTable::new(
        horizon,
        (0..3u32)
            .map(|pe| ScheduledJob {
                job: JobId::new(AppId(9), 0, 0, NodeId(pe)),
                pe: PeId(pe),
                start: Time::new(100),
                end: Time::new(120),
                release: Time::ZERO,
                deadline: horizon,
            })
            .collect(),
        vec![],
    );
    let base = FrozenBase::new(&arch, Some(&frozen), horizon).unwrap();
    let mut engine = Scheduler::new();

    for round in 0..20u32 {
        // Toggle the hint of p8 only — the job the list scheduler pops
        // dead last (smallest wcet → largest urgency, highest index
        // among its tie group), so the spliced prefix covers everything
        // else and the suffix touches a single PE.
        hints.set_proc_gap(ProcRef::new(0, NodeId(8)), round % 2);
        let spec = AppSpec::new(AppId(0), &app, &mapping, &hints);
        let (table, slack) = engine
            .schedule_delta_with_slack(&arch, &[spec], &base)
            .unwrap();
        let reference = schedule(&arch, &[spec], Some(&frozen), horizon).unwrap();
        assert_eq!(table, reference, "round {round}");
        assert_eq!(slack, SlackProfile::from_table(&arch, &reference));
    }
    assert_eq!(engine.delta_schedule_count(), 19, "every revisit spliced");
    assert!(
        engine.spliced_step_count() > 0,
        "hint-only moves must splice a prefix"
    );
    // Profiles of the final run share the base storage for PEs the
    // current app never touched — none here (all PEs carry jobs), so
    // instead check the previous-run reuse: at least one gap list was
    // *not* rebuilt on the last run.
    assert!(
        engine.fresh_gap_list_count() < 3,
        "unchanged PEs must alias the previous profile ({} fresh)",
        engine.fresh_gap_list_count()
    );
}
